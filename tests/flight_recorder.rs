//! Flight recorder + crash diagnostics end-to-end: a panic injected in
//! the middle of faulted parallel work leaves an `nmt-diag-*.json`
//! bundle that `nmt-cli doctor` turns into a post-mortem naming the
//! fault site, the strip, and the thread; recorded event *content* is
//! identical at 1 and 4 threads; and `nmt-cli diff` on the committed
//! baseline vs a doctored copy flags exactly the doctored
//! matrices/phases — and nothing else.

use rayon::prelude::*;
use spmm_nmt::bench::{DiffReport, Ledger};
use spmm_nmt::fault::FaultPlan;
use spmm_nmt::formats::SparseMatrix;
use spmm_nmt::matgen::{random_dense, SuiteScale, SuiteSpec};
use spmm_nmt::obs::{
    install_diagnostics, uninstall_diagnostics, DiagScope, DiagnosticsBundle, EventSite,
    ObsContext,
};
use spmm_nmt::planner::planner::{PlannerConfig, SpmmPlanner};
use std::path::{Path, PathBuf};
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nmt-cli"))
}

/// Re-point the global pool (the shim allows overriding, unlike real
/// rayon) and run `f` under exactly `n` workers.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("shim pool re-points");
    f()
}

/// Bundle files written under `dir`, oldest first.
fn bundle_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("diag dir readable")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("nmt-diag-") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    files
}

// One test function on purpose for everything that touches process-wide
// state (the global rayon pool, the panic hook): the test harness runs
// sibling tests concurrently.
#[test]
fn panic_bundle_doctor_and_thread_invariant_event_content() {
    // --- 1. Panic during faulted parallel work → doctorable bundle. ---
    // Silence the default hook BEFORE arming diagnostics: the diagnostics
    // hook chains to whatever was installed, and eight workers' panic
    // backtraces would drown the test output.
    std::panic::set_hook(Box::new(|_| {}));
    let dir = std::env::temp_dir().join(format!("nmt-diag-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("diag dir");
    install_diagnostics(&dir, &ObsContext::disabled(), Some(0xFA117), Some(300_000));

    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        with_threads(4, || {
            let strips: Vec<u64> = (0..8).collect();
            strips.par_iter().for_each(|&strip| {
                // Mirrors the farm's per-matrix wiring: scoped context,
                // per-strip events, a fault event right before the blast.
                let obs = ObsContext::disabled();
                let _scope = DiagScope::enter("rmat-crash", &obs);
                obs.flight.record(EventSite::FarmStrip, 0, strip, 0);
                if strip == 5 {
                    obs.flight
                        .record(EventSite::FaultConvertStrip, 2, strip, 0xFA117);
                    panic!("injected crash at strip 5");
                }
            });
        });
    }));
    assert!(crashed.is_err(), "the injected panic must propagate");
    uninstall_diagnostics();

    let files = bundle_files(&dir);
    assert!(!files.is_empty(), "panic hook must write at least one bundle");
    // The worker-thread bundle is the one that saw the fault event.
    let bundle = files
        .iter()
        .map(|p| {
            let json = std::fs::read_to_string(p).expect("bundle readable");
            (p.clone(), DiagnosticsBundle::from_json(&json).expect("parses"))
        })
        .find(|(_, b)| b.last_fault_event().is_some())
        .expect("one bundle carries the fault event");
    let (bundle_path, bundle) = bundle;
    assert_eq!(bundle.matrix, "rmat-crash", "DiagScope names the matrix");
    assert!(
        bundle.reason.contains("injected crash at strip 5"),
        "reason carries the panic message: {}",
        bundle.reason
    );
    assert_eq!(bundle.fault_seed, Some(0xFA117));
    assert_eq!(bundle.fault_rate_ppm, Some(300_000));
    let fault = bundle.last_fault_event().expect("fault event present");
    assert_eq!(fault.site, EventSite::FaultConvertStrip);
    assert_eq!(fault.a, 5, "the faulting strip is named");
    assert!(fault.tid > 0, "the faulting thread is named");
    let post = bundle.render_postmortem();
    assert!(
        post.contains("fault site fault-convert-strip at strip 5"),
        "post-mortem names site + strip: {post}"
    );
    assert!(post.contains(&format!("on thread {}", fault.tid)));

    // The real `nmt-cli doctor` renders the same post-mortem.
    let out = cli()
        .args(["doctor", bundle_path.to_str().expect("utf8 path")])
        .output()
        .expect("spawn doctor");
    assert!(
        out.status.success(),
        "doctor stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rmat-crash"), "{text}");
    assert!(text.contains("fault site fault-convert-strip at strip 5"), "{text}");
    assert!(text.contains("seed=0xfa117"), "{text}");

    // --- 2. Event content is thread-count invariant. ---
    // Sweep a slice of the quick suite through the faulted planner with
    // a shared recorder at 1 and at 4 threads: timestamps and tids move,
    // the content-ordered (site, code, a, b) stream must not.
    let plan = FaultPlan::new(0xFA117, 300_000);
    let sweep_content = |threads: usize| -> Vec<(String, u32, u64, u64)> {
        with_threads(threads, || {
            let obs = ObsContext::disabled();
            let config = PlannerConfig::test_small().with_fault(Some(plan));
            let suite: Vec<_> = SuiteSpec::quick(31).build().into_iter().take(4).collect();
            suite.par_iter().for_each(|(desc, a)| {
                let b = random_dense(a.shape().ncols, 8, desc.seed ^ 0x16);
                SpmmPlanner::new(config.clone())
                    .explain(&desc.name, a, &b, &obs)
                    .expect("faulted audit completes");
            });
            assert_eq!(obs.flight.dropped(), 0, "slice must fit the ring");
            obs.flight
                .snapshot()
                .iter()
                .map(|e| (e.site.name().to_string(), e.code, e.a, e.b))
                .collect()
        })
    };
    let serial = sweep_content(1);
    let parallel = sweep_content(4);
    assert!(!serial.is_empty(), "planner and farm must emit events");
    assert_eq!(
        serial, parallel,
        "event content must be identical at 1 vs 4 threads"
    );

    // --- 3. The instrumented sweep (DiagScope + sweep events + error-row
    // harvesting in the closure) stays byte-identical across thread
    // counts, clean and faulted. ---
    let faulted_1 = with_threads(1, || {
        spmm_nmt::bench::sweep_ledger_faulted(SuiteScale::Small, Some(plan)).expect("sweeps")
    });
    let faulted_4 = with_threads(4, || {
        spmm_nmt::bench::sweep_ledger_faulted(SuiteScale::Small, Some(plan)).expect("sweeps")
    });
    assert_eq!(
        faulted_1.to_json(),
        faulted_4.to_json(),
        "faulted ledger bytes must not depend on the schedule"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::panic::take_hook();
}

/// `nmt-cli diff` on the committed baseline vs a doctored copy reports
/// exactly the doctored (matrix, phase) pairs as CI-significant
/// regressions — and nothing else — in both text and `--json` modes.
#[test]
fn diff_flags_exactly_the_doctored_matrices_and_phases() {
    let baseline_path = "results/BENCH_small.json";
    let json = std::fs::read_to_string(baseline_path).expect("committed baseline readable");
    let baseline = Ledger::from_json(&json).expect("baseline parses");
    let perf = baseline.perf.as_ref().expect("committed baseline has perf");
    assert!(perf.matrices.len() >= 2, "need two matrices to doctor");

    // Doctor matrix 0's kernel phase and matrix 1's total, x1000 each.
    let mut doctored = baseline.clone();
    let (m0_name, m1_name);
    {
        let perf = doctored.perf.as_mut().expect("perf present");
        let m0 = &mut perf.matrices[0];
        m0_name = m0.matrix.clone();
        let kernel = m0
            .phases
            .iter_mut()
            .find(|p| p.phase == "kernel")
            .expect("kernel phase present");
        kernel.median_ns *= 1000.0;
        kernel.ci_lo_ns *= 1000.0;
        kernel.ci_hi_ns *= 1000.0;
        let m1 = &mut perf.matrices[1];
        m1_name = m1.matrix.clone();
        m1.total_median_ns *= 1000.0;
        m1.total_ci_lo_ns *= 1000.0;
        m1.total_ci_hi_ns *= 1000.0;
    }
    let dir = std::env::temp_dir().join(format!("nmt-diff-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let doctored_path = dir.join("doctored.json");
    std::fs::write(&doctored_path, doctored.to_json()).expect("write doctored");

    // JSON mode: exactly the doctored pairs, machine-checkable.
    let out = cli()
        .args([
            "diff",
            baseline_path,
            doctored_path.to_str().expect("utf8 path"),
            "--json",
        ])
        .output()
        .expect("spawn diff");
    assert!(
        out.status.success(),
        "diff stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: DiffReport =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("diff JSON parses");
    let mut flagged: Vec<(String, String)> = report
        .perf_regressions
        .iter()
        .map(|f| (f.matrix.clone(), f.phase.clone()))
        .collect();
    flagged.sort();
    let mut expected = vec![
        (m0_name.clone(), "kernel".to_string()),
        (m1_name.clone(), "total".to_string()),
    ];
    expected.sort();
    assert_eq!(flagged, expected, "exactly the doctored pairs flag");
    assert!(
        report.perf_improvements.is_empty(),
        "nothing got faster: {:?}",
        report.perf_improvements
    );
    assert!(report.identity_notes.is_empty(), "same suite identity");
    // Functional rows were untouched, so the geomean did not move.
    assert!((report.geomean.ratio - 1.0).abs() < 1e-12);

    // Text mode names the same pairs, and only them.
    let out = cli()
        .args([
            "diff",
            baseline_path,
            doctored_path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("spawn diff");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        text.matches("REGRESSED").count(),
        2,
        "two regression lines: {text}"
    );
    assert!(text.contains(&m0_name), "{text}");
    assert!(text.contains(&m1_name), "{text}");

    // Control: a self-diff flags nothing — a median always sits inside
    // its own bootstrap CI.
    let out = cli()
        .args(["diff", baseline_path, baseline_path, "--json"])
        .output()
        .expect("spawn diff");
    assert!(out.status.success());
    let clean: DiffReport =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("parses");
    assert!(clean.perf_regressions.is_empty());
    assert!(clean.perf_improvements.is_empty());

    let _ = std::fs::remove_dir_all(&dir);
}
