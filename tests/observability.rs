//! End-to-end observability acceptance: a planner run with an enabled
//! [`ObsContext`] must yield (a) a Chrome trace with nested
//! plan → convert → kernel spans and (b) a metrics snapshot carrying the
//! engine prefetch hit rate, comparator occupancy, per-traffic-class
//! bytes, and per-phase wall clock — both in-process and through the CLI
//! `--trace-out` / `--metrics-json` flags.

use spmm_nmt::fault::FaultPlan;
use spmm_nmt::formats::SparseMatrix;
use spmm_nmt::matgen::{generators, random_dense, GenKind, MatrixDesc};
use spmm_nmt::model::ssf::SsfThreshold;
use spmm_nmt::obs::{chrome_trace_json, flamegraph_folded, render_prometheus, ObsContext, Profiler};
use spmm_nmt::planner::planner::{Algorithm, PlannerConfig, SpmmPlanner};
use std::collections::BTreeSet;
use std::process::Command;

fn bstationary_planner() -> SpmmPlanner {
    let mut cfg = PlannerConfig::test_small();
    // Force the online path: it exercises the engine, the prefetch
    // pipeline, and the kernel launch in one run.
    cfg.threshold = SsfThreshold {
        threshold: -1.0,
        accuracy: 1.0,
    };
    SpmmPlanner::new(cfg)
}

fn demo_inputs() -> (spmm_nmt::formats::Csr, spmm_nmt::formats::DenseMatrix) {
    let a = generators::generate(&MatrixDesc::new(
        "obs",
        192,
        GenKind::ZipfRows {
            density: 0.02,
            exponent: 1.1,
        },
        41,
    ));
    let b = random_dense(192, 16, 42);
    (a, b)
}

#[test]
fn planner_run_produces_nested_trace_and_acceptance_metrics() {
    let (a, b) = demo_inputs();
    let obs = ObsContext::enabled();
    let report = bstationary_planner()
        .execute_with_obs(&a, &b, &obs)
        .expect("planner runs");
    assert_eq!(report.algorithm, Algorithm::BStationaryOnline);

    // --- Span hierarchy: plan/convert/kernel nested under the root. ---
    let spans = obs.recorder.snapshot();
    let find = |n: &str| {
        spans
            .iter()
            .find(|s| s.name == n)
            .unwrap_or_else(|| panic!("missing span {n}"))
    };
    let root = find("planner.execute");
    let plan = find("planner.plan");
    let chosen = find("planner.chosen");
    let convert = find("engine.convert");
    let launch = find("kernels.launch");
    assert_eq!(root.parent, None);
    assert_eq!(plan.parent, Some(root.id));
    assert_eq!(chosen.parent, Some(root.id));
    assert_eq!(convert.parent, Some(chosen.id));
    assert_eq!(launch.parent, Some(chosen.id));
    for s in [plan, chosen, convert, launch] {
        assert!(s.start_ns >= root.start_ns && s.end_ns <= root.end_ns);
    }

    // --- Chrome trace: valid JSON, every B has a matching E. ---
    let trace: serde_json::Value =
        serde_json::from_str(&chrome_trace_json(&spans)).expect("trace is valid JSON");
    let events = trace["traceEvents"].as_array().expect("traceEvents array");
    let mut stack: Vec<&str> = Vec::new();
    let mut seen = Vec::new();
    for ev in events {
        let name = ev["name"].as_str().expect("name");
        match ev["ph"].as_str().expect("ph") {
            "B" => {
                stack.push(name);
                seen.push(name);
            }
            "E" => assert_eq!(stack.pop(), Some(name), "unbalanced E for {name}"),
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(stack.is_empty(), "unmatched B events: {stack:?}");
    assert!(seen.contains(&"planner.plan"));
    assert!(seen.contains(&"engine.convert"));
    assert!(seen.contains(&"kernels.launch"));

    // --- Metrics: the acceptance keys, with sane values. ---
    let m = &obs.metrics;
    let hit_rate = m
        .gauge("engine.pipeline.prefetch_hit_rate")
        .expect("prefetch hit rate");
    assert!((0.0..=1.0).contains(&hit_rate));
    let occupancy = m
        .gauge("engine.comparator.occupancy")
        .expect("comparator occupancy");
    assert!(occupancy > 0.0 && occupancy <= 1.0);
    for class in ["mat_a", "mat_b", "mat_c", "engine", "other"] {
        let key = format!("kernels.chosen.dram_bytes.{class}");
        // Key must exist (zero is fine for classes the kernel never touches).
        let _ = m.counter(&key);
    }
    assert!(m.counter("kernels.chosen.dram_bytes.mat_a") > 0);
    assert!(m.counter("kernels.baseline.dram_bytes.mat_a") > 0);
    for phase in ["plan", "baseline", "chosen"] {
        let g = m
            .gauge(&format!("planner.phase.{phase}_ns"))
            .unwrap_or_else(|| panic!("missing planner.phase.{phase}_ns"));
        assert!(g >= 0.0);
    }
    assert_eq!(
        m.counter("engine.convert.elements"),
        a.nnz() as u64,
        "engine converted every nonzero exactly once"
    );
}

/// Split one folded-flamegraph line into (stack, self_ns).
fn parse_folded(line: &str) -> (&str, u64) {
    let (stack, ns) = line.rsplit_once(' ').expect("folded line has a count");
    (stack, ns.parse().expect("count is integral ns"))
}

#[test]
fn trace_round_trips_nesting_lanes_and_flamegraph_totals() {
    let (a, b) = demo_inputs();
    let obs = ObsContext::enabled();
    bstationary_planner()
        .execute_with_obs(&a, &b, &obs)
        .expect("planner runs");
    let spans = obs.recorder.snapshot();

    // --- Chrome export re-parses and preserves the span forest. ---
    let trace: serde_json::Value =
        serde_json::from_str(&chrome_trace_json(&spans)).expect("trace is valid JSON");
    let events = trace["traceEvents"].as_array().expect("traceEvents array");
    // Per-lane begin/end balance: nesting must hold within each thread.
    let mut stacks: std::collections::BTreeMap<u64, Vec<&str>> = std::collections::BTreeMap::new();
    let mut event_tids = BTreeSet::new();
    for ev in events {
        let tid = ev["tid"].as_u64().expect("tid");
        event_tids.insert(tid);
        let name = ev["name"].as_str().expect("name");
        let lane = stacks.entry(tid).or_default();
        match ev["ph"].as_str().expect("ph") {
            "B" => lane.push(name),
            "E" => assert_eq!(lane.pop(), Some(name), "unbalanced E on lane {tid}"),
            other => panic!("unexpected phase {other}"),
        }
    }
    for (tid, lane) in &stacks {
        assert!(lane.is_empty(), "unmatched B events on lane {tid}: {lane:?}");
    }
    // Thread lanes survive the export: exactly the recorded tids appear.
    let span_tids: BTreeSet<u64> = spans.iter().map(|s| s.tid).collect();
    assert_eq!(event_tids, span_tids, "trace lanes must mirror span tids");

    // --- Folded stacks partition the recorded time exactly. ---
    let folded = flamegraph_folded(&spans);
    let mut by_lane_folded: std::collections::BTreeMap<&str, u64> =
        std::collections::BTreeMap::new();
    for line in folded.lines() {
        let (stack, ns) = parse_folded(line);
        let lane = stack.split(';').next().expect("lane frame");
        *by_lane_folded.entry(lane).or_default() += ns;
    }
    // Every lane's folded total equals that lane's root wall time: self
    // times are a partition of each root span.
    for &tid in stacks.keys() {
        let root_ns: u64 = spans
            .iter()
            .filter(|s| s.tid == tid && s.parent.is_none())
            .map(|s| s.end_ns - s.start_ns)
            .sum();
        let lane = format!("tid{tid}");
        assert_eq!(
            by_lane_folded.get(lane.as_str()).copied().unwrap_or(0),
            root_ns,
            "folded lines on {lane} must sum to its root wall time"
        );
    }
    assert!(
        folded.lines().any(|l| l.contains("planner.execute;")),
        "nested frames keep their path"
    );
}

#[test]
fn prometheus_page_exports_fault_counters_and_perf_gauges() {
    let (a, b) = demo_inputs();
    let obs = ObsContext::enabled();
    let mut cfg = PlannerConfig::test_small();
    cfg.threshold = SsfThreshold {
        threshold: -1.0,
        accuracy: 1.0,
    };
    // Seeded faults at a rate high enough that the conversion farm
    // records injections (deterministic: same seed, same faults).
    cfg.fault = Some(FaultPlan::from_rate(0xFA, 0.25));
    SpmmPlanner::new(cfg)
        .execute_with_obs(&a, &b, &obs)
        .expect("faults are absorbed by retry/fallback");
    assert!(
        obs.metrics.counter("fault.injected") > 0,
        "the seeded plan must actually fire"
    );

    // Fold the span tree into per-phase gauges alongside the counters.
    Profiler::analyze(&obs.recorder.snapshot()).publish(&obs.metrics);

    let page = render_prometheus(&obs.metrics.snapshot());
    assert!(
        page.contains("# TYPE fault_injected counter"),
        "missing TYPE line for fault_injected in:\n{page}"
    );
    assert!(page.lines().any(|l| l.starts_with("fault_injected ")));
    for gauge in ["perf_window_ns", "perf_phase_kernel_self_ns", "perf_workers"] {
        assert!(
            page.contains(&format!("# TYPE {gauge} gauge")),
            "missing TYPE line for {gauge} in:\n{page}"
        );
        assert!(page.lines().any(|l| l.starts_with(&format!("{gauge} "))));
    }
}

#[test]
fn cli_writes_trace_and_metrics_artifacts() {
    let dir = std::env::temp_dir().join("nmt_obs_artifacts");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mtx = dir.join("obs_demo.mtx");
    let (a, _) = demo_inputs();
    spmm_nmt::formats::market::write_market_file(&mtx, &a.to_coo()).expect("write mtx");
    let trace_path = dir.join("trace.json");
    let flame_path = dir.join("flame.folded");
    let metrics_path = dir.join("metrics.json");

    let out = Command::new(env!("CARGO_BIN_EXE_nmt-cli"))
        .args([
            "spmm",
            mtx.to_str().expect("utf8"),
            "--k",
            "16",
            "--tile",
            "16",
            "--json",
            "--trace-out",
            trace_path.to_str().expect("utf8"),
            "--flame-out",
            flame_path.to_str().expect("utf8"),
            "--metrics-json",
            metrics_path.to_str().expect("utf8"),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The trace artifact loads as Chrome trace JSON with our spans.
    let trace: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).expect("trace file"))
            .expect("trace parses");
    let names: Vec<&str> = trace["traceEvents"]
        .as_array()
        .expect("traceEvents")
        .iter()
        .filter(|e| e["ph"].as_str() == Some("B"))
        .map(|e| e["name"].as_str().expect("name"))
        .collect();
    assert!(names.contains(&"planner.execute"));
    assert!(names.contains(&"planner.plan"));
    assert!(names.iter().any(|n| n.starts_with("engine.convert")));
    assert!(names.contains(&"kernels.launch"));

    // The folded-stack artifact from the same run: every line is
    // `lane;frames… <ns>`, and the grand total matches the root spans'
    // wall time as reported by the Chrome trace's B/E timestamps.
    let folded = std::fs::read_to_string(&flame_path).expect("flame file");
    let mut folded_total = 0u64;
    for line in folded.lines() {
        let (stack, ns) = parse_folded(line);
        assert!(stack.starts_with("tid"), "lane-prefixed stack: {line}");
        folded_total += ns;
    }
    let mut root_total = 0u64;
    let mut depth_by_tid: std::collections::BTreeMap<u64, (i64, u64)> =
        std::collections::BTreeMap::new();
    for ev in trace["traceEvents"].as_array().expect("traceEvents") {
        let tid = ev["tid"].as_u64().expect("tid");
        let ts = ev["ts"].as_f64().expect("ts");
        let entry = depth_by_tid.entry(tid).or_insert((0, 0));
        match ev["ph"].as_str().expect("ph") {
            "B" => {
                if entry.0 == 0 {
                    entry.1 = (ts * 1e3).round() as u64;
                }
                entry.0 += 1;
            }
            "E" => {
                entry.0 -= 1;
                if entry.0 == 0 {
                    root_total += (ts * 1e3).round() as u64 - entry.1;
                }
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    assert_eq!(
        folded_total, root_total,
        "folded stacks must partition the traced wall time"
    );

    // The metrics artifact carries counters/gauges/histograms. The
    // engine-specific gauges only exist when the planner routed the matrix
    // to the online path, so gate those on the reported algorithm.
    let record: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("record parses");
    let metrics: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics_path).expect("metrics file"))
            .expect("metrics parse");
    assert!(metrics["counters"]
        .get("kernels.chosen.dram_bytes.mat_a")
        .and_then(serde_json::Value::as_u64)
        .is_some());
    assert!(metrics["gauges"].get("planner.phase.chosen_ns").is_some());
    if record["algorithm"].as_str() == Some("bstat-online") {
        assert!(metrics["gauges"]
            .get("engine.pipeline.prefetch_hit_rate")
            .is_some());
        assert!(metrics["gauges"]
            .get("engine.comparator.occupancy")
            .is_some());
    }

    // --json embedded the flattened metrics in the run record.
    let embedded = record["metrics"]
        .as_object()
        .expect("metrics embedded in --json record");
    assert!(embedded.iter().any(|(k, _)| k == "planner.phase.plan_ns"));
}
