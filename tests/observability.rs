//! End-to-end observability acceptance: a planner run with an enabled
//! [`ObsContext`] must yield (a) a Chrome trace with nested
//! plan → convert → kernel spans and (b) a metrics snapshot carrying the
//! engine prefetch hit rate, comparator occupancy, per-traffic-class
//! bytes, and per-phase wall clock — both in-process and through the CLI
//! `--trace-out` / `--metrics-json` flags.

use spmm_nmt::formats::SparseMatrix;
use spmm_nmt::matgen::{generators, random_dense, GenKind, MatrixDesc};
use spmm_nmt::model::ssf::SsfThreshold;
use spmm_nmt::obs::{chrome_trace_json, ObsContext};
use spmm_nmt::planner::planner::{Algorithm, PlannerConfig, SpmmPlanner};
use std::process::Command;

fn bstationary_planner() -> SpmmPlanner {
    let mut cfg = PlannerConfig::test_small();
    // Force the online path: it exercises the engine, the prefetch
    // pipeline, and the kernel launch in one run.
    cfg.threshold = SsfThreshold {
        threshold: -1.0,
        accuracy: 1.0,
    };
    SpmmPlanner::new(cfg)
}

fn demo_inputs() -> (spmm_nmt::formats::Csr, spmm_nmt::formats::DenseMatrix) {
    let a = generators::generate(&MatrixDesc::new(
        "obs",
        192,
        GenKind::ZipfRows {
            density: 0.02,
            exponent: 1.1,
        },
        41,
    ));
    let b = random_dense(192, 16, 42);
    (a, b)
}

#[test]
fn planner_run_produces_nested_trace_and_acceptance_metrics() {
    let (a, b) = demo_inputs();
    let obs = ObsContext::enabled();
    let report = bstationary_planner()
        .execute_with_obs(&a, &b, &obs)
        .expect("planner runs");
    assert_eq!(report.algorithm, Algorithm::BStationaryOnline);

    // --- Span hierarchy: plan/convert/kernel nested under the root. ---
    let spans = obs.recorder.snapshot();
    let find = |n: &str| {
        spans
            .iter()
            .find(|s| s.name == n)
            .unwrap_or_else(|| panic!("missing span {n}"))
    };
    let root = find("planner.execute");
    let plan = find("planner.plan");
    let chosen = find("planner.chosen");
    let convert = find("engine.convert");
    let launch = find("kernels.launch");
    assert_eq!(root.parent, None);
    assert_eq!(plan.parent, Some(root.id));
    assert_eq!(chosen.parent, Some(root.id));
    assert_eq!(convert.parent, Some(chosen.id));
    assert_eq!(launch.parent, Some(chosen.id));
    for s in [plan, chosen, convert, launch] {
        assert!(s.start_ns >= root.start_ns && s.end_ns <= root.end_ns);
    }

    // --- Chrome trace: valid JSON, every B has a matching E. ---
    let trace: serde_json::Value =
        serde_json::from_str(&chrome_trace_json(&spans)).expect("trace is valid JSON");
    let events = trace["traceEvents"].as_array().expect("traceEvents array");
    let mut stack: Vec<&str> = Vec::new();
    let mut seen = Vec::new();
    for ev in events {
        let name = ev["name"].as_str().expect("name");
        match ev["ph"].as_str().expect("ph") {
            "B" => {
                stack.push(name);
                seen.push(name);
            }
            "E" => assert_eq!(stack.pop(), Some(name), "unbalanced E for {name}"),
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(stack.is_empty(), "unmatched B events: {stack:?}");
    assert!(seen.contains(&"planner.plan"));
    assert!(seen.contains(&"engine.convert"));
    assert!(seen.contains(&"kernels.launch"));

    // --- Metrics: the acceptance keys, with sane values. ---
    let m = &obs.metrics;
    let hit_rate = m
        .gauge("engine.pipeline.prefetch_hit_rate")
        .expect("prefetch hit rate");
    assert!((0.0..=1.0).contains(&hit_rate));
    let occupancy = m
        .gauge("engine.comparator.occupancy")
        .expect("comparator occupancy");
    assert!(occupancy > 0.0 && occupancy <= 1.0);
    for class in ["mat_a", "mat_b", "mat_c", "engine", "other"] {
        let key = format!("kernels.chosen.dram_bytes.{class}");
        // Key must exist (zero is fine for classes the kernel never touches).
        let _ = m.counter(&key);
    }
    assert!(m.counter("kernels.chosen.dram_bytes.mat_a") > 0);
    assert!(m.counter("kernels.baseline.dram_bytes.mat_a") > 0);
    for phase in ["plan", "baseline", "chosen"] {
        let g = m
            .gauge(&format!("planner.phase.{phase}_ns"))
            .unwrap_or_else(|| panic!("missing planner.phase.{phase}_ns"));
        assert!(g >= 0.0);
    }
    assert_eq!(
        m.counter("engine.convert.elements"),
        a.nnz() as u64,
        "engine converted every nonzero exactly once"
    );
}

#[test]
fn cli_writes_trace_and_metrics_artifacts() {
    let dir = std::env::temp_dir().join("nmt_obs_artifacts");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mtx = dir.join("obs_demo.mtx");
    let (a, _) = demo_inputs();
    spmm_nmt::formats::market::write_market_file(&mtx, &a.to_coo()).expect("write mtx");
    let trace_path = dir.join("trace.json");
    let metrics_path = dir.join("metrics.json");

    let out = Command::new(env!("CARGO_BIN_EXE_nmt-cli"))
        .args([
            "spmm",
            mtx.to_str().expect("utf8"),
            "--k",
            "16",
            "--tile",
            "16",
            "--json",
            "--trace-out",
            trace_path.to_str().expect("utf8"),
            "--metrics-json",
            metrics_path.to_str().expect("utf8"),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The trace artifact loads as Chrome trace JSON with our spans.
    let trace: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).expect("trace file"))
            .expect("trace parses");
    let names: Vec<&str> = trace["traceEvents"]
        .as_array()
        .expect("traceEvents")
        .iter()
        .filter(|e| e["ph"].as_str() == Some("B"))
        .map(|e| e["name"].as_str().expect("name"))
        .collect();
    assert!(names.contains(&"planner.execute"));
    assert!(names.contains(&"planner.plan"));
    assert!(names.iter().any(|n| n.starts_with("engine.convert")));
    assert!(names.contains(&"kernels.launch"));

    // The metrics artifact carries counters/gauges/histograms. The
    // engine-specific gauges only exist when the planner routed the matrix
    // to the online path, so gate those on the reported algorithm.
    let record: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("record parses");
    let metrics: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics_path).expect("metrics file"))
            .expect("metrics parse");
    assert!(metrics["counters"]
        .get("kernels.chosen.dram_bytes.mat_a")
        .and_then(serde_json::Value::as_u64)
        .is_some());
    assert!(metrics["gauges"].get("planner.phase.chosen_ns").is_some());
    if record["algorithm"].as_str() == Some("bstat-online") {
        assert!(metrics["gauges"]
            .get("engine.pipeline.prefetch_hit_rate")
            .is_some());
        assert!(metrics["gauges"]
            .get("engine.comparator.occupancy")
            .is_some());
    }

    // --json embedded the flattened metrics in the run record.
    let embedded = record["metrics"]
        .as_object()
        .expect("metrics embedded in --json record");
    assert!(embedded.iter().any(|(k, _)| k == "planner.phase.plan_ns"));
}
