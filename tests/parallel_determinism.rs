//! Serial-vs-parallel determinism: everything the engine farm and the
//! sweep produce must be identical under a 1-thread and a multi-thread
//! pool — same kernel outputs, same `DecisionAudit`s, byte-identical
//! ledger JSON. This is the in-process counterpart of the CI leg that
//! runs the whole suite under `RAYON_NUM_THREADS=1` and `=4` and diffs
//! the `BENCH_small.json` artifacts.

use spmm_nmt::bench::Ledger;
use spmm_nmt::engine::{convert_matrix_farm, FarmConfig};
use spmm_nmt::formats::SparseMatrix;
use spmm_nmt::matgen::{generators, random_dense, GenKind, MatrixDesc, SuiteScale, SuiteSpec};
use spmm_nmt::obs::ObsContext;
use spmm_nmt::planner::planner::{PlannerConfig, SpmmPlanner};
use spmm_nmt::planner::DecisionAudit;

/// Re-point the global pool (the shim allows overriding, unlike real
/// rayon) and run `f` under exactly `n` workers.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("shim pool re-points");
    let out = f();
    assert_eq!(rayon::current_num_threads(), n);
    out
}

fn audit_suite() -> Vec<DecisionAudit> {
    let config = PlannerConfig::test_small();
    SuiteSpec::quick(29)
        .build()
        .iter()
        .map(|(desc, a)| {
            let b = random_dense(a.shape().ncols, 8, desc.seed ^ 0x16);
            SpmmPlanner::new(config.clone())
                .explain(&desc.name, a, &b, &ObsContext::disabled())
                .expect("audit runs")
        })
        .collect()
}

fn quick_ledger() -> Ledger {
    let audits = audit_suite();
    Ledger::from_audits(SuiteScale::Small, 29, 8, PlannerConfig::test_small().tile_w, &audits)
}

// One test function on purpose: `build_global` is process-wide state, and
// the test harness runs sibling tests concurrently.
#[test]
fn serial_and_parallel_runs_are_byte_identical() {
    // 1. Engine farm: tiles, stats, and partition attribution.
    let desc = MatrixDesc::new(
        "det-rmat",
        160,
        GenKind::Rmat {
            a: 0.55,
            b: 0.15,
            c: 0.15,
            edge_factor: 6,
        },
        41,
    );
    let csc = generators::generate(&desc).to_csc();
    let farm_serial = with_threads(1, || {
        convert_matrix_farm(&csc, 16, 16, FarmConfig::for_partitions(4)).expect("farm runs")
    });
    let farm_parallel = with_threads(4, || {
        convert_matrix_farm(&csc, 16, 16, FarmConfig::for_partitions(4)).expect("farm runs")
    });
    assert_eq!(farm_serial.strips, farm_parallel.strips);
    assert_eq!(farm_serial.stats, farm_parallel.stats);
    assert_eq!(farm_serial.per_partition, farm_parallel.per_partition);
    assert_eq!(farm_serial.switches, farm_parallel.switches);

    // 2. Planner decisions: identical audits, including simulated kernel
    // times and measured traffic, via their canonical JSON.
    let audits_serial = with_threads(1, audit_suite);
    let audits_parallel = with_threads(4, audit_suite);
    assert_eq!(audits_serial.len(), audits_parallel.len());
    for (s, p) in audits_serial.iter().zip(&audits_parallel) {
        assert_eq!(s.to_json(), p.to_json(), "audit for {} diverged", s.matrix);
    }

    // 3. The ledger artifact: byte-identical JSON at any thread count.
    let ledger_serial = with_threads(1, quick_ledger);
    let ledger_parallel = with_threads(4, quick_ledger);
    assert_eq!(ledger_serial.to_json(), ledger_parallel.to_json());
}
