//! Regression tests for the paper's qualitative claims — miniature
//! versions of the experiment binaries, asserting the *shape* results that
//! EXPERIMENTS.md records, so a model change that silently breaks a
//! reproduced figure fails CI instead of shipping.

use spmm_nmt::formats::{size_ratio, Dcsr, SparseMatrix, StorageSize, TiledCsr, TiledDcsr};
use spmm_nmt::kernels::{
    bstat_tiled_csr, bstat_tiled_dcsr_offline, bstat_tiled_dcsr_online, csrmm_cusparse,
    dcsrmm_row_per_warp,
};
use spmm_nmt::matgen::{generators, random_dense, GenKind, MatrixDesc};
use spmm_nmt::model::learn_threshold;
use spmm_nmt::model::ssf::SsfProfile;
use spmm_nmt::sim::{Gpu, GpuConfig};

const TILE: usize = 16;
const K: usize = 64;

fn experiment_gpu() -> GpuConfig {
    let mut gpu = GpuConfig::gv100();
    gpu.l2_bytes = 128 * 1024;
    gpu.kernel_overhead_ns = 200.0;
    gpu
}

fn gen(kind: GenKind, n: usize, seed: u64) -> spmm_nmt::formats::Csr {
    generators::generate(&MatrixDesc::new("claim", n, kind, seed))
}

/// Figure 2's claim: the baseline is dominated by memory stalls.
#[test]
fn claim_fig2_baseline_is_memory_bound() {
    let a = gen(GenKind::Uniform { density: 0.01 }, 1024, 1);
    let b = random_dense(1024, K, 2);
    let mut gpu = Gpu::new(experiment_gpu()).expect("preset");
    let run = csrmm_cusparse(&mut gpu, &a, &b).expect("baseline");
    let s = run.stats.stall_breakdown();
    assert!(s.memory > 0.5, "memory stalls must dominate: {s:?}");
}

/// Figure 7's claim: tiled DCSR removes most inactive thread executions.
#[test]
fn claim_fig7_dcsr_reduces_inactive_slots() {
    let a = gen(
        GenKind::ZipfRows {
            density: 0.003,
            exponent: 1.4,
        },
        1024,
        3,
    );
    let b = random_dense(1024, K, 4);
    let tcsr = TiledCsr::from_csr(&a, TILE).expect("tiling");
    let tdcsr = TiledDcsr::from_csr(&a, TILE, TILE).expect("tiling");
    let csr = bstat_tiled_csr(
        &mut Gpu::new(experiment_gpu()).expect("preset"),
        &tcsr,
        &b,
        TILE,
    )
    .expect("kernel");
    let dcsr =
        bstat_tiled_dcsr_offline(&mut Gpu::new(experiment_gpu()).expect("preset"), &tdcsr, &b)
            .expect("kernel");
    let reduction =
        1.0 - dcsr.stats.warp_exec.inactive as f64 / csr.stats.warp_exec.inactive as f64;
    assert!(
        reduction > 0.5,
        "inactive-slot reduction collapsed to {:.0}%",
        reduction * 100.0
    );
}

/// Figure 9's claim: tiled DCSR costs a bounded constant factor over CSR.
#[test]
fn claim_fig9_tiling_overhead_is_bounded() {
    for (kind, seed) in [
        (GenKind::Uniform { density: 0.01 }, 5u64),
        (
            GenKind::RowBursts {
                density: 0.01,
                burst_len: 8,
            },
            6,
        ),
        (
            GenKind::Banded {
                bandwidth: 8,
                fill: 0.5,
            },
            7,
        ),
    ] {
        let a = gen(kind, 512, seed);
        let tdcsr = TiledDcsr::from_csr(&a, TILE, TILE).expect("tiling");
        let ratio = size_ratio(tdcsr.storage_bytes(), a.storage_bytes());
        assert!(
            ratio > 1.0 && ratio < 4.0,
            "tiled DCSR / CSR ratio out of band: {ratio}"
        );
    }
}

/// Figure 16's claim, minimal form: the online engine path beats the
/// baseline on clustered matrices, the untiled DCSR path beats it on
/// scattered ones, and the SSF ranks the two regimes correctly.
#[test]
fn claim_fig16_regimes_and_crossover() {
    let clustered = gen(
        GenKind::RowBursts {
            density: 0.02,
            burst_len: 16,
        },
        1024,
        8,
    );
    let scattered = gen(GenKind::Uniform { density: 0.01 }, 1024, 9);
    let b = random_dense(1024, K, 10);

    let base_c = csrmm_cusparse(&mut Gpu::new(experiment_gpu()).expect("p"), &clustered, &b)
        .expect("baseline")
        .stats
        .total_ns;
    let online_c = bstat_tiled_dcsr_online(
        &mut Gpu::new(experiment_gpu()).expect("p"),
        &clustered.to_csc(),
        &b,
        TILE,
        TILE,
    )
    .expect("online")
    .run
    .stats
    .total_ns;
    assert!(
        base_c / online_c > 1.2,
        "online path must clearly beat the baseline on clustered input: {:.2}",
        base_c / online_c
    );

    let base_s = csrmm_cusparse(&mut Gpu::new(experiment_gpu()).expect("p"), &scattered, &b)
        .expect("baseline")
        .stats
        .total_ns;
    let dcsr_s = dcsrmm_row_per_warp(
        &mut Gpu::new(experiment_gpu()).expect("p"),
        &Dcsr::from_csr(&scattered),
        &b,
    )
    .expect("dcsr")
    .stats
    .total_ns;
    assert!(
        base_s / dcsr_s > 1.2,
        "untiled DCSR must clearly beat the baseline on scattered input: {:.2}",
        base_s / dcsr_s
    );

    let p_clustered = SsfProfile::compute(&clustered, TILE);
    let p_scattered = SsfProfile::compute(&scattered, TILE);
    assert!(
        p_clustered.ssf > 10.0 * p_scattered.ssf,
        "SSF must separate the regimes: {} vs {}",
        p_clustered.ssf,
        p_scattered.ssf
    );
}

/// Figure 4's claim: a learned threshold classifies a regime-spanning set
/// correctly. (The full-suite accuracy lives in `fig04_ssf_scatter`; this
/// regression set is curated to span both regimes cleanly, like the
/// clearly-separated mass of Figure 4's scatter.)
#[test]
fn claim_fig4_threshold_learnable() {
    let mut set = Vec::new();
    for (i, kind) in [
        GenKind::Uniform { density: 0.01 },
        GenKind::Uniform { density: 0.003 },
        GenKind::ZipfRows {
            density: 0.01,
            exponent: 1.2,
        },
        GenKind::ZipfBoth {
            density: 0.01,
            exponent: 1.1,
        },
        GenKind::RowBursts {
            density: 0.01,
            burst_len: 16,
        },
        GenKind::RowBursts {
            density: 0.03,
            burst_len: 32,
        },
        GenKind::BlockDiag {
            block: 32,
            fill: 0.4,
            background: 1e-4,
        },
        GenKind::RowBursts {
            density: 0.02,
            burst_len: 8,
        },
    ]
    .into_iter()
    .enumerate()
    {
        // A fixed dimension keeps the B-footprint/L2 ratio in the tiling
        // regime for every point, as the scaled experiment harness does.
        for seed_shift in [0u64, 101] {
            set.push((
                String::new(),
                gen(kind.clone(), 1024, 0xF1604 + i as u64 + seed_shift),
            ));
        }
    }
    let suite = set;
    let points: Vec<(f64, f64)> = suite
        .iter()
        .map(|(_, a)| {
            let ssf = SsfProfile::compute(a, TILE).ssf;
            let b = random_dense(a.shape().ncols, K, 11);
            let tc = dcsrmm_row_per_warp(
                &mut Gpu::new(experiment_gpu()).expect("p"),
                &Dcsr::from_csr(a),
                &b,
            )
            .expect("cstat")
            .stats
            .total_ns;
            let tb = bstat_tiled_dcsr_online(
                &mut Gpu::new(experiment_gpu()).expect("p"),
                &a.to_csc(),
                &b,
                TILE,
                TILE,
            )
            .expect("online")
            .run
            .stats
            .total_ns;
            (ssf, tc / tb)
        })
        .collect();
    let th = learn_threshold(&points);
    assert!(
        th.accuracy > 0.8,
        "SSF classification accuracy collapsed: {:.0}%",
        th.accuracy * 100.0
    );
}

/// §5.3's claims are constants of the model — pin the two headline ones.
#[test]
fn claim_sec53_constants() {
    let area = spmm_nmt::engine::AreaEnergyModel::for_gpu(&GpuConfig::gv100());
    assert!((area.total_area_mm2 - 4.93).abs() < 0.05);
    assert!((area.peak_power_fp32_w - 0.68).abs() < 0.02);
}
