//! Deterministic fixture tests for the planner decision audit and the run
//! ledger: oracles known by construction, forced mispicks with measurable
//! cost, and stability of `explain()` and the ledger across runs.

use spmm_nmt::bench::{
    experiment_gpu, experiment_k, experiment_tile, GateTolerance, Ledger, LEDGER_SCHEMA_VERSION,
};
use spmm_nmt::formats::{Csr, SparseMatrix};
use spmm_nmt::matgen::generators::{generate, GenKind, MatrixDesc};
use spmm_nmt::matgen::{random_dense, SuiteScale};
use spmm_nmt::model::ssf::{Choice, SsfThreshold};
use spmm_nmt::obs::ObsContext;
use spmm_nmt::planner::planner::{PlannerConfig, SpmmPlanner};
use spmm_nmt::planner::DecisionAudit;

fn fixture(kind: GenKind, n: usize, seed: u64) -> Csr {
    generate(&MatrixDesc::new("fixture", n, kind, seed))
}

/// The clustered regime §3.1 argues for: long horizontal non-zero runs at
/// scattered positions — B-stationary's home turf. Sized so B and C
/// overflow the scaled L2 of [`experiment_gpu`]; on a cache that holds B
/// entirely, C-stationary wins everywhere and there is no decision left
/// to audit.
fn clustered() -> Csr {
    fixture(
        GenKind::RowBursts {
            density: 0.03,
            burst_len: 32,
        },
        1024,
        3,
    )
}

/// Independent uniform placement — C-stationary's home turf.
fn uniform() -> Csr {
    fixture(GenKind::Uniform { density: 0.003 }, 1024, 3)
}

/// The small-scale experiment configuration (scaled GV100) with the
/// production threshold — the same machine `nmt-cli bench` sweeps.
fn experiment_config() -> PlannerConfig {
    let scale = SuiteScale::Small;
    let mut config = PlannerConfig::paper_default();
    config.gpu = experiment_gpu(scale);
    config.tile_w = experiment_tile(scale);
    config.tile_h = experiment_tile(scale);
    config
}

fn explain(a: &Csr, config: PlannerConfig) -> DecisionAudit {
    let b = random_dense(a.shape().ncols, experiment_k(SuiteScale::Small), 0xB);
    SpmmPlanner::new(config)
        .explain("fixture", a, &b, &ObsContext::disabled())
        .expect("explain runs")
}

/// Force the heuristic's hand: `ssf > threshold` picks B-stationary, so
/// −∞ always picks B and +∞ always picks C, independent of the matrix.
fn forced(choice: Choice) -> PlannerConfig {
    let mut config = experiment_config();
    config.threshold = SsfThreshold {
        threshold: match choice {
            Choice::BStationary => f64::NEG_INFINITY,
            Choice::CStationary => f64::INFINITY,
        },
        accuracy: 1.0,
    };
    config
}

#[test]
fn oracle_matches_structure_by_construction() {
    // The oracle is defined by measured times alone, so it is the same no
    // matter which choice we force — probe it with both.
    for config in [forced(Choice::BStationary), forced(Choice::CStationary)] {
        let audit = explain(&clustered(), config.clone());
        assert_eq!(
            audit.oracle,
            Choice::BStationary,
            "clustered row-bursts fixture must favour B-stationary \
             (bstat {:.0} ns vs cstat {:.0} ns)",
            audit.bstationary.time_ns,
            audit.cstationary.time_ns
        );
        let audit = explain(&uniform(), config);
        assert_eq!(
            audit.oracle,
            Choice::CStationary,
            "uniform fixture must favour C-stationary \
             (cstat {:.0} ns vs bstat {:.0} ns)",
            audit.cstationary.time_ns,
            audit.bstationary.time_ns
        );
    }
}

#[test]
fn forced_wrong_choice_is_flagged_as_mispick_with_cost() {
    // Forcing C-stationary on the clustered fixture is a known mispick.
    let audit = explain(&clustered(), forced(Choice::CStationary));
    assert_eq!(audit.chosen, Choice::CStationary);
    assert_eq!(audit.oracle, Choice::BStationary);
    assert!(audit.mispick);
    assert!(
        audit.mispick_cost > 1.0,
        "a mispick must cost something: {}",
        audit.mispick_cost
    );
    assert!(
        (audit.mispick_cost - audit.cstationary.time_ns / audit.bstationary.time_ns).abs() < 1e-9,
        "cost is the chosen/oracle time ratio"
    );

    // Forcing the right choice is not a mispick and costs nothing.
    let audit = explain(&clustered(), forced(Choice::BStationary));
    assert!(!audit.mispick);
    assert_eq!(audit.mispick_cost, 1.0);
}

#[test]
fn mispicks_are_counted_in_metrics() {
    let obs = ObsContext::enabled();
    let b = random_dense(1024, experiment_k(SuiteScale::Small), 0xB);
    // One forced mispick + one forced correct pick on the same matrix.
    for choice in [Choice::CStationary, Choice::BStationary] {
        SpmmPlanner::new(forced(choice))
            .explain("fixture", &clustered(), &b, &obs)
            .expect("explain runs");
    }
    let snap = obs.metrics.snapshot();
    assert_eq!(snap.counters["audit.decisions"], 2);
    assert_eq!(snap.counters["audit.mispicks"], 1);
    // The last call (correct pick) leaves the point-in-time gauge at 0.
    assert_eq!(snap.gauges["audit.mispick"], 0.0);
}

#[test]
fn explain_is_stable_across_runs() {
    let a = clustered();
    let config = PlannerConfig::test_small();
    let one = explain(&a, config.clone());
    let two = explain(&a, config);
    assert_eq!(one, two, "explain() must be deterministic");
    assert_eq!(one.to_json(), two.to_json(), "down to the serialized bytes");
}

#[test]
fn ledger_from_fixture_audits_is_byte_stable_and_gates_itself() {
    let build = || {
        let audits: Vec<DecisionAudit> = [clustered(), uniform()]
            .iter()
            .map(|a| explain(a, PlannerConfig::test_small()))
            .collect();
        Ledger::from_audits(SuiteScale::Small, 3, 8, 16, &audits)
    };
    let one = build();
    let two = build();
    assert_eq!(one.to_json(), two.to_json(), "ledger must be byte-stable");
    assert_eq!(one.schema_version, LEDGER_SCHEMA_VERSION);
    assert_eq!(one.summary.matrices, 2);
    one.gate(&two, GateTolerance::default())
        .expect("identical ledgers pass the gate");

    let parsed = Ledger::from_json(&one.to_json()).expect("round-trips");
    assert_eq!(parsed, one);
}
