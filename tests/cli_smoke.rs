//! End-to-end smoke test of the `nmt-cli` binary: write a Matrix Market
//! file, then run every subcommand against it as a user would.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nmt-cli"))
}

fn demo_matrix() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("nmt_cli_smoke");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("demo.mtx");
    let m = spmm_nmt::matgen::generators::generate(&spmm_nmt::matgen::MatrixDesc::new(
        "demo",
        256,
        spmm_nmt::matgen::GenKind::RowBursts {
            density: 0.02,
            burst_len: 8,
        },
        3,
    ));
    spmm_nmt::formats::market::write_market_file(&path, &m.to_coo()).expect("write mtx");
    path
}

#[test]
fn profile_subcommand() {
    let path = demo_matrix();
    let out = cli()
        .args(["profile", path.to_str().expect("utf8 path"), "--tile", "16"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SSF"), "missing SSF in: {text}");
    assert!(text.contains("recommendation"));
}

#[test]
fn convert_subcommand() {
    let path = demo_matrix();
    let out = cli()
        .args(["convert", path.to_str().expect("utf8 path"), "--tile", "16"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("comparator passes"));
    assert!(text.contains("energy"));
}

#[test]
fn spmm_subcommand_json() {
    let path = demo_matrix();
    let out = cli()
        .args([
            "spmm",
            path.to_str().expect("utf8 path"),
            "--k",
            "16",
            "--tile",
            "16",
            "--json",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert!(parsed["speedup"].as_f64().expect("speedup field") > 0.0);
    assert_eq!(parsed["nrows"].as_u64(), Some(256));
}

#[test]
fn suite_subcommand_and_errors() {
    let out = cli()
        .args(["suite", "--scale", "small"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("matrices at Small scale"));

    // Unknown command and missing file fail politely.
    let out = cli().args(["frobnicate"]).output().expect("spawn");
    assert!(!out.status.success());
    let out = cli()
        .args(["profile", "/definitely/not/here.mtx"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let out = cli()
        .args([
            "convert",
            demo_matrix().to_str().expect("utf8"),
            "--tile",
            "65",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "tile > 64 must be rejected");
}
