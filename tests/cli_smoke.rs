//! End-to-end smoke test of the `nmt-cli` binary: write a Matrix Market
//! file, then run every subcommand against it as a user would.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_nmt-cli"))
}

fn demo_matrix() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("nmt_cli_smoke");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("demo.mtx");
    let m = spmm_nmt::matgen::generators::generate(&spmm_nmt::matgen::MatrixDesc::new(
        "demo",
        256,
        spmm_nmt::matgen::GenKind::RowBursts {
            density: 0.02,
            burst_len: 8,
        },
        3,
    ));
    spmm_nmt::formats::market::write_market_file(&path, &m.to_coo()).expect("write mtx");
    path
}

#[test]
fn profile_subcommand() {
    let path = demo_matrix();
    let out = cli()
        .args(["profile", path.to_str().expect("utf8 path"), "--tile", "16"])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("SSF"), "missing SSF in: {text}");
    assert!(text.contains("recommendation"));
}

#[test]
fn convert_subcommand() {
    let path = demo_matrix();
    let out = cli()
        .args(["convert", path.to_str().expect("utf8 path"), "--tile", "16"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("comparator passes"));
    assert!(text.contains("energy"));
}

#[test]
fn spmm_subcommand_json() {
    let path = demo_matrix();
    let out = cli()
        .args([
            "spmm",
            path.to_str().expect("utf8 path"),
            "--k",
            "16",
            "--tile",
            "16",
            "--json",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert!(parsed["speedup"].as_f64().expect("speedup field") > 0.0);
    assert_eq!(parsed["nrows"].as_u64(), Some(256));
}

#[test]
fn audit_subcommand_text_json_and_metrics() {
    let path = demo_matrix();
    let metrics_path = std::env::temp_dir().join("nmt_cli_smoke/audit_metrics.json");
    let out = cli()
        .args([
            "audit",
            path.to_str().expect("utf8 path"),
            "--k",
            "16",
            "--tile",
            "16",
            "--metrics-json",
            metrics_path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "SSF",
        "decision",
        "oracle",
        "predicted B",
        "measured B",
        "rel err",
        "<- chosen",
        "c-stationary",
        "b-stationary-online",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in: {text}");
    }
    let metrics = std::fs::read_to_string(&metrics_path).expect("metrics written");
    assert!(metrics.contains("audit.model.c_stationary.rel_err.mat_a"));
    assert!(metrics.contains("audit.decisions"));

    let out = cli()
        .args([
            "audit",
            path.to_str().expect("utf8 path"),
            "--k",
            "16",
            "--tile",
            "16",
            "--json",
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    assert!(parsed["mispick_cost"].as_f64().expect("mispick_cost") >= 1.0);
    assert!(parsed["cstationary"]["validation"].as_array().is_some());
}

#[test]
fn bench_subcommand_writes_ledger_and_gates() {
    let dir = std::env::temp_dir().join("nmt_cli_smoke");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ledger_path = dir.join("BENCH_small.json");
    let out = cli()
        .args([
            "bench",
            "--scale",
            "small",
            "--out",
            ledger_path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("geomean"));
    let json = std::fs::read_to_string(&ledger_path).expect("ledger written");
    let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert_eq!(
        parsed["schema_version"].as_u64(),
        Some(u64::from(spmm_nmt::bench::LEDGER_SCHEMA_VERSION))
    );
    assert!(parsed["summary"]["geomean_speedup"].as_f64().expect("geomean") > 0.0);

    // Gating against the ledger we just wrote passes...
    let out = cli()
        .args([
            "bench",
            "--scale",
            "small",
            "--baseline",
            ledger_path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("gate: PASS"));

    // ...and against a doctored faster baseline the gate fires.
    let doctored_path = dir.join("BENCH_doctored.json");
    let mut doctored = spmm_nmt::bench::Ledger::from_json(&json).expect("parse own ledger");
    doctored.summary.geomean_speedup *= 2.0;
    std::fs::write(&doctored_path, doctored.to_json()).expect("write doctored");
    let out = cli()
        .args([
            "bench",
            "--scale",
            "small",
            "--baseline",
            doctored_path.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "gate must fail on regression");
    assert!(String::from_utf8_lossy(&out.stderr).contains("REGRESSION"));

    // An unknown scale is rejected loudly instead of demoted to small.
    let out = cli().args(["bench", "--scale", "papr"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unrecognized scale"));
}

#[test]
fn suite_subcommand_and_errors() {
    let out = cli()
        .args(["suite", "--scale", "small"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("matrices at Small scale"));

    // Unknown command and missing file fail politely.
    let out = cli().args(["frobnicate"]).output().expect("spawn");
    assert!(!out.status.success());
    let out = cli()
        .args(["profile", "/definitely/not/here.mtx"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let out = cli()
        .args([
            "convert",
            demo_matrix().to_str().expect("utf8"),
            "--tile",
            "65",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success(), "tile > 64 must be rejected");
}
