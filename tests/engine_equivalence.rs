//! The engine's defining property: **online CSC→DCSR conversion is
//! bit-identical to offline tiling**, for any matrix, any tile geometry,
//! and any request order.

use proptest::prelude::*;
use spmm_nmt::engine::comparator::ComparatorTree;
use spmm_nmt::engine::{convert_matrix, ConversionStats, EngineTiming, StripConverter};
use spmm_nmt::formats::{Coo, Csr, SparseMatrix, TiledDcsr};

fn csr_strategy() -> impl Strategy<Value = Csr> {
    (2usize..=48, 2usize..=48).prop_flat_map(|(nrows, ncols)| {
        let entry = (0..nrows as u32, 0..ncols as u32, 1i32..100);
        proptest::collection::vec(entry, 0..150).prop_map(move |entries| {
            let mut coo = Coo::new(nrows, ncols).expect("small dims");
            for (r, c, v) in entries {
                coo.push(r, c, v as f32).expect("in bounds");
            }
            coo.canonicalize();
            Csr::from_coo(&coo)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn online_equals_offline(csr in csr_strategy(), tile_w in 1usize..=32, tile_h in 1usize..=32) {
        let csc = csr.to_csc();
        let offline = TiledDcsr::from_csr(&csr, tile_w, tile_h).expect("tiling");
        let (online, stats) = convert_matrix(&csc, tile_w.min(64), tile_h);
        prop_assert_eq!(online.len(), offline.strips().len());
        for (s, strip) in offline.strips().iter().enumerate() {
            prop_assert_eq!(&online[s], strip);
        }
        prop_assert_eq!(stats.elements as usize, csr.nnz());
        prop_assert_eq!(stats.tiles as usize, offline.num_strips() * offline.tiles_per_strip());
    }

    #[test]
    fn random_access_equals_sequential(csr in csr_strategy(), tile_h in 1usize..=16) {
        let csc = csr.to_csc();
        let tile_w = 8usize;
        if csc.shape().ncols == 0 { return Ok(()); }
        let nstrips = csc.shape().ncols.div_ceil(tile_w);
        let ntiles = csc.shape().nrows.div_ceil(tile_h);
        for s in 0..nstrips {
            // Sequential pass.
            let mut seq = StripConverter::new(&csc, s, tile_w);
            let seq_tiles = seq.convert_strip(tile_h);
            // Reverse-order random access via seek.
            let mut rnd = StripConverter::new(&csc, s, tile_w);
            for t in (0..ntiles).rev() {
                rnd.seek((t * tile_h) as u32);
                let tile = rnd.next_tile((t * tile_h) as u32, tile_h);
                prop_assert_eq!(&tile, &seq_tiles[t], "strip {} tile {}", s, t);
            }
        }
    }

    #[test]
    fn conversion_stats_invariants(csr in csr_strategy()) {
        let csc = csr.to_csc();
        let (tiles, stats) = convert_matrix(&csc, 8, 8);
        // Each emitted row costs one comparator pass; each tile one more
        // concluding pass.
        prop_assert_eq!(stats.comparator_passes, stats.rows_emitted + stats.tiles);
        // 8 bytes per streamed element + 2 pointer words per lane per strip.
        let strip_lanes: u64 = tiles
            .iter()
            .map(|s| s.first().map_or(0, |t| t.width as u64))
            .sum();
        prop_assert_eq!(stats.input_bytes, 8 * stats.elements + 8 * strip_lanes);
        // Output stream is exactly the tiles' storage footprint.
        let tile_bytes: u64 = tiles
            .iter()
            .flatten()
            .map(|t| (t.metadata_bytes() + t.data_bytes()) as u64)
            .sum();
        prop_assert_eq!(stats.output_bytes, tile_bytes);
        // Rows emitted can never exceed elements (a row has >= 1 element).
        prop_assert!(stats.rows_emitted <= stats.elements);
    }

    #[test]
    fn comparator_tree_matches_min_oracle(
        coords in proptest::collection::vec(proptest::option::of(0u32..1000), 1..=64)
    ) {
        let tree = ComparatorTree::new(coords.len()).unwrap();
        let got = tree.find_min(&coords);
        let want = coords.iter().flatten().min().copied();
        match (got, want) {
            (None, None) => {}
            (Some(r), Some(m)) => {
                prop_assert_eq!(r.min, m);
                for (i, c) in coords.iter().enumerate() {
                    prop_assert_eq!(r.mask & (1 << i) != 0, *c == Some(m));
                }
            }
            other => prop_assert!(false, "mismatch: {:?}", other),
        }
    }

    #[test]
    fn engine_throughput_never_below_channel(csr in csr_strategy()) {
        // §5.3's claim: the pipelined engine always keeps up with the
        // channel, even in the worst (single-element-row) case — as long
        // as there is enough work to amortize the pipeline fill.
        let csc = csr.to_csc();
        let (_, stats) = convert_matrix(&csc, 8, 8);
        if stats.elements >= 64 {
            let tree = ComparatorTree::new(8).unwrap().structure();
            let t = EngineTiming::fp32(13.6, &tree);
            // Count only streaming cycles (passes bound the row overhead).
            let gbps = t.conversion_gbps(&ConversionStats {
                comparator_passes: stats.comparator_passes - stats.tiles,
                ..stats
            });
            prop_assert!(gbps > 13.6 * 0.5, "throughput collapsed: {} GB/s", gbps);
        }
    }
}

#[test]
fn engine_width_is_bounded_at_64() {
    // The hardware is a 64-lane unit; wider strips must be rejected loudly.
    let coo = Coo::from_triplets(4, 128, &[0], &[100], &[1.0]).expect("valid");
    let csc = Csr::from_coo(&coo).to_csc();
    let result = std::panic::catch_unwind(|| StripConverter::new(&csc, 0, 128));
    assert!(result.is_err(), "65+-lane converter must panic");
}
