//! Serve-layer determinism: a replayed request trace must produce a
//! byte-identical response ledger under a 1-thread and a 4-thread pool,
//! the schedule-invariant cache counters must agree exactly, and the
//! single-flight cache must collapse N concurrent identical requests
//! into one plan computation. In-process counterpart of the CI `serve`
//! job's 1-vs-4-thread `cmp` leg.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spmm_nmt::obs::ObsContext;
use spmm_nmt::serve::{
    serve_trace, synth_trace, Acquire, BrokerConfig, PlanCache, ServeLedger, SynthSpec,
};

/// Re-point the global pool (the shim allows overriding, unlike real
/// rayon) and run `f` under exactly `n` workers.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("shim pool re-points");
    let out = f();
    assert_eq!(rayon::current_num_threads(), n);
    out
}

fn replay(with_stats: bool) -> ServeLedger {
    let trace = synth_trace(&SynthSpec::quick(0x5E12));
    serve_trace(
        &trace,
        &BrokerConfig::test_small(),
        &ObsContext::disabled(),
        with_stats,
    )
    .expect("replay serves")
}

// One test function on purpose: `build_global` is process-wide state,
// and the test harness runs sibling tests concurrently.
#[test]
fn serve_replay_is_thread_count_invariant() {
    // 1. Byte-identical response ledgers at 1 vs 4 workers — both the
    // canonical form (what CI byte-compares) and, because neither run
    // attaches stats, the full serialized artifact.
    let serial = with_threads(1, || replay(false));
    let parallel = with_threads(4, || replay(false));
    assert_eq!(
        serial.canonical_json(),
        parallel.canonical_json(),
        "canonical serve ledgers must not depend on the worker count"
    );
    assert_eq!(serial.to_json(), parallel.to_json());
    serial
        .gate(&parallel)
        .expect("the ledger gate must agree with byte equality");

    // 2. Schedule-invariant counters: wait episodes depend on the
    // interleaving, but computes == unique fingerprints and hits ==
    // admitted - computes hold at any worker count.
    let s1 = with_threads(1, || replay(true));
    let s4 = with_threads(4, || replay(true));
    let (a, b) = (s1.stats.as_ref().unwrap(), s4.stats.as_ref().unwrap());
    assert_eq!(a.cache_computes, s1.counts.unique_plans);
    assert_eq!(b.cache_computes, s4.counts.unique_plans);
    assert_eq!(a.cache_computes, b.cache_computes);
    assert_eq!(
        a.cache_hits, b.cache_hits,
        "every non-leader resolves to a hit, so hit counts are pinned"
    );
    assert_eq!(a.cache_hits + a.cache_computes, s1.counts.admitted);
    assert_eq!(a.cache_evictions, b.cache_evictions);
    // A single-threaded pool cannot overlap two computations of one key.
    assert_eq!(a.cache_waits, 0, "serial replay never waits on itself");

    // 3. Single-flight under real contention: N concurrent identical
    // requests perform exactly one plan computation.
    let cache: Arc<PlanCache<u64>> = Arc::new(PlanCache::new(1 << 20));
    let computes = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..8)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let computes = Arc::clone(&computes);
            std::thread::spawn(move || {
                let got = cache
                    .get_or_compute("same-matrix", || -> Result<(u64, u64), String> {
                        computes.fetch_add(1, Ordering::Relaxed);
                        // Hold the flight open long enough that every
                        // follower really contends with the leader.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        Ok((0xC0FFEE, 64))
                    })
                    .expect("compute succeeds");
                assert_eq!(*got.value, 0xC0FFEE);
                got.how
            })
        })
        .collect();
    let hows: Vec<Acquire> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    assert_eq!(
        computes.load(Ordering::Relaxed),
        1,
        "N concurrent identical requests must compute the plan exactly once"
    );
    assert_eq!(
        hows.iter().filter(|h| **h == Acquire::Computed).count(),
        1,
        "exactly one caller is the leader"
    );
    let stats = cache.stats();
    assert_eq!(stats.computes, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.hits, 7, "every follower resolves to the single computed plan");
}
