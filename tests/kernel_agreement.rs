//! All seven simulated SpMM dataflows must agree with the host reference
//! (and therefore with each other) on arbitrary inputs, while exhibiting
//! the hardware behaviours the paper attributes to them — including the
//! degraded-mode path: a faulted-then-fallback plan must produce the
//! bitwise-identical `C` of the fault-free C-stationary reference.

use proptest::prelude::*;
use spmm_nmt::fault::FaultPlan;
use spmm_nmt::formats::{Coo, Csr, Dcsr, DenseMatrix, SparseMatrix, TiledCsr, TiledDcsr};
use spmm_nmt::kernels::{
    astat_tiled, bstat_tiled_csr, bstat_tiled_dcsr_offline, bstat_tiled_dcsr_online,
    csrmm_cusparse, csrmm_merge_based, csrmm_row_per_thread, csrmm_row_per_warp,
    dcsrmm_row_per_warp, host,
};
use spmm_nmt::matgen::{generators, random_dense, GenKind, MatrixDesc};
use spmm_nmt::model::ssf::SsfThreshold;
use spmm_nmt::planner::planner::{Algorithm, PlannerConfig, SpmmPlanner};
use spmm_nmt::sim::{Gpu, GpuConfig, TrafficClass};

fn gpu() -> Gpu {
    Gpu::new(GpuConfig::test_small()).expect("test config valid")
}

fn case_strategy() -> impl Strategy<Value = (Csr, DenseMatrix)> {
    (8usize..=48, 1usize..=24).prop_flat_map(|(n, k)| {
        let entry = (0..n as u32, 0..n as u32, 1i32..50);
        let entries = proptest::collection::vec(entry, 0..120);
        let bvals = proptest::collection::vec(-10i32..10, n * k);
        (entries, bvals).prop_map(move |(es, bs)| {
            let mut coo = Coo::new(n, n).expect("valid dims");
            for (r, c, v) in es {
                coo.push(r, c, v as f32 * 0.25).expect("in bounds");
            }
            coo.canonicalize();
            let b =
                DenseMatrix::from_row_major(n, k, bs.into_iter().map(|v| v as f32 * 0.5).collect())
                    .expect("length matches");
            (Csr::from_coo(&coo), b)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_dataflow_matches_the_reference((a, b) in case_strategy()) {
        let reference = host::spmm_csr(&a, &b);
        let tol = 1e-3;

        let r = csrmm_cusparse(&mut gpu(), &a, &b).expect("cusparse");
        prop_assert!(r.c.approx_eq(&reference, tol), "cusparse diverged");

        let r = csrmm_row_per_warp(&mut gpu(), &a, &b).expect("rpw");
        prop_assert!(r.c.approx_eq(&reference, tol), "row-per-warp diverged");

        let r = csrmm_row_per_thread(&mut gpu(), &a, &b).expect("rpt");
        prop_assert!(r.c.approx_eq(&reference, tol), "row-per-thread diverged");

        let dcsr = Dcsr::from_csr(&a);
        let r = dcsrmm_row_per_warp(&mut gpu(), &dcsr, &b).expect("dcsr");
        prop_assert!(r.c.approx_eq(&reference, tol), "dcsr diverged");

        let tcsr = TiledCsr::from_csr(&a, 8).expect("tiling");
        let r = bstat_tiled_csr(&mut gpu(), &tcsr, &b, 8).expect("tiled csr");
        prop_assert!(r.c.approx_eq(&reference, tol), "bstat tiled csr diverged");

        let tdcsr = TiledDcsr::from_csr(&a, 8, 8).expect("tiling");
        let r = bstat_tiled_dcsr_offline(&mut gpu(), &tdcsr, &b).expect("offline");
        prop_assert!(r.c.approx_eq(&reference, tol), "bstat offline diverged");

        let online = bstat_tiled_dcsr_online(&mut gpu(), &a.to_csc(), &b, 8, 8).expect("online");
        prop_assert!(online.run.c.approx_eq(&reference, tol), "bstat online diverged");
        prop_assert_eq!(online.engine.elements as usize, a.nnz());

        let r = astat_tiled(&mut gpu(), &a, &b, 8).expect("astat");
        prop_assert!(r.c.approx_eq(&reference, tol), "astat diverged");

        let r = csrmm_merge_based(&mut gpu(), &a, &b).expect("merge");
        prop_assert!(r.c.approx_eq(&reference, tol), "merge-based diverged");
    }

    /// Differential case on row-skewed matrices: the merge-based kernel
    /// must agree with the C-stationary row-per-warp kernel (and the host
    /// reference) on exactly the Zipf-row inputs where their scheduling
    /// differs most — a few monster rows amid many near-empty ones. The
    /// two kernels partition the same non-zeros differently, so agreement
    /// here is a genuine differential check, not a re-run of one path.
    #[test]
    fn merge_based_matches_cstationary_on_row_skew(
        seed in 0u64..256,
        exponent in 1u32..4,
        k in 1usize..16,
    ) {
        let n = 160;
        let a = generators::generate(&MatrixDesc::new(
            "skew-diff",
            n,
            GenKind::ZipfRows { density: 0.03, exponent: f64::from(exponent) },
            seed,
        ));
        let b = random_dense(n, k, seed ^ 0xB5EED);
        let reference = host::spmm_csr(&a, &b);
        let tol = 1e-3;

        let rpw = csrmm_row_per_warp(&mut gpu(), &a, &b).expect("rpw");
        let merge = csrmm_merge_based(&mut gpu(), &a, &b).expect("merge");
        prop_assert!(rpw.c.approx_eq(&reference, tol), "row-per-warp diverged");
        prop_assert!(merge.c.approx_eq(&reference, tol), "merge-based diverged");
        prop_assert!(merge.c.approx_eq(&rpw.c, tol), "dataflows disagree with each other");

        // Both are C-stationary in output traffic terms and do identical
        // FP work; merge-based pays for balance with carry-out atomics
        // while row-per-warp never issues any.
        prop_assert_eq!(merge.stats.flops, rpw.stats.flops);
        prop_assert_eq!(rpw.stats.atomics, 0);
    }

    #[test]
    fn dataflow_signatures_hold((a, b) in case_strategy()) {
        // C-stationary kernels never issue atomics; B-/A-stationary do
        // (when there is any work).
        let r = csrmm_row_per_warp(&mut gpu(), &a, &b).expect("rpw");
        prop_assert_eq!(r.stats.atomics, 0);
        let r = dcsrmm_row_per_warp(&mut gpu(), &Dcsr::from_csr(&a), &b).expect("dcsr");
        prop_assert_eq!(r.stats.atomics, 0);

        let online = bstat_tiled_dcsr_online(&mut gpu(), &a.to_csc(), &b, 8, 8).expect("online");
        if a.nnz() > 0 {
            prop_assert!(online.run.stats.atomics > 0, "B-stationary must use atomics");
        }

        // Every kernel that touched non-zeros did FP work and read A and B.
        if a.nnz() > 0 {
            prop_assert!(online.run.stats.flops > 0);
            prop_assert!(online.run.stats.requested_traffic.get(TrafficClass::MatA) > 0);
            prop_assert!(online.run.stats.requested_traffic.get(TrafficClass::MatB) > 0);
        }
    }

    #[test]
    fn flop_count_is_exact((a, b) in case_strategy()) {
        // Row-per-warp performs exactly 2·nnz·K FLOPs (one FMA per
        // non-zero per output column).
        let r = csrmm_row_per_warp(&mut gpu(), &a, &b).expect("rpw");
        prop_assert_eq!(r.stats.flops, 2 * a.nnz() as u64 * b.ncols() as u64);
    }

    #[test]
    fn timing_is_positive_and_bounded((a, b) in case_strategy()) {
        let r = csrmm_row_per_warp(&mut gpu(), &a, &b).expect("rpw");
        let s = &r.stats;
        prop_assert!(s.total_ns >= s.t_overhead_ns);
        prop_assert!(s.total_ns >= s.t_compute_ns);
        prop_assert!(s.total_ns >= s.t_memory_ns);
        prop_assert!(s.total_ns >= s.t_latency_ns);
        let b = s.stall_breakdown();
        prop_assert!((b.memory + b.sm + b.other - 1.0).abs() < 1e-6);
        prop_assert!(b.memory >= 0.0 && b.sm >= 0.0 && b.other >= 0.0);
    }

    #[test]
    fn faulted_fallback_matches_fault_free_cstationary((a, b) in case_strategy()) {
        // Force the heuristic onto the engine path and make every
        // conversion strip fault (rate 1.0): the plan must degrade to the
        // untiled C-stationary kernel and produce the bitwise-identical C
        // of a fault-free run that was routed to C-stationary directly.
        // Memory-site faults only perturb timing, never arithmetic, so
        // exact equality — not approx — is the contract.
        let forced_b = SsfThreshold { threshold: f64::NEG_INFINITY, accuracy: 1.0 };
        let forced_c = SsfThreshold { threshold: f64::INFINITY, accuracy: 1.0 };
        let mut faulted_cfg = PlannerConfig::test_small().with_fault(
            Some(FaultPlan::new(0xD1FF, 1_000_000)));
        faulted_cfg.threshold = forced_b;
        let mut clean_cfg = PlannerConfig::test_small();
        clean_cfg.threshold = forced_c;

        let faulted = SpmmPlanner::new(faulted_cfg).execute(&a, &b).expect("degraded run");
        let clean = SpmmPlanner::new(clean_cfg).execute(&a, &b).expect("clean run");

        prop_assert_eq!(faulted.algorithm, Algorithm::CStationaryDcsr);
        prop_assert!(faulted.fault.as_ref().is_some_and(|f| f.fell_back),
            "full-rate plan must record an audited fallback");
        prop_assert_eq!(clean.algorithm, Algorithm::CStationaryDcsr);
        prop_assert!(clean.fault.is_none());
        prop_assert_eq!(faulted.c, clean.c);
    }

    #[test]
    fn dram_traffic_never_exceeds_requested_plus_lines((a, b) in case_strategy()) {
        // DRAM bytes are sector-rounded, so they can exceed requested
        // bytes by at most one sector (32 B) per access; a generous bound
        // is requested + 64 B per miss.
        let r = csrmm_row_per_warp(&mut gpu(), &a, &b).expect("rpw");
        let s = &r.stats;
        let bound = s.requested_traffic.total() + 64 * s.l2_misses;
        prop_assert!(s.dram_traffic.total() <= bound,
            "dram {} > bound {}", s.dram_traffic.total(), bound);
    }
}

#[test]
fn identity_times_identity_block() {
    // I * B == B for every kernel.
    let n = 16;
    let coo = Coo::from_triplets(
        n,
        n,
        &(0..n as u32).collect::<Vec<_>>(),
        &(0..n as u32).collect::<Vec<_>>(),
        &vec![1.0; n],
    )
    .expect("identity");
    let a = Csr::from_coo(&coo);
    let b = DenseMatrix::from_fn(n, 4, |r, c| (r * 4 + c) as f32);
    let online = bstat_tiled_dcsr_online(&mut gpu(), &a.to_csc(), &b, 8, 8).expect("online");
    assert!(online.run.c.approx_eq(&b, 1e-6));
}
