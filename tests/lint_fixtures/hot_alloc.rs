//! Fixture: per-call containers on an allocation hot path (the `hot_`
//! filename prefix marks this file hot-path-scoped).

fn per_strip_scratch(k: usize) -> Vec<f32> {
    vec![0.0f32; k] //~ ERROR hot-alloc
}

fn growing_accumulator() -> Vec<u32> {
    let mut out = Vec::new(); //~ ERROR hot-alloc
    out.push(1);
    out
}

fn pooled_is_fine(pooled: bool, k: usize) -> Vec<f32> {
    // Pool takes and right-sized reservations don't churn.
    let mut acc = mem::take_val(pooled, k);
    acc.reserve(k);
    acc
}

fn reserved_is_fine(n: usize) -> Vec<u32> {
    Vec::with_capacity(n)
}

fn justified_cold_site() -> Vec<u32> {
    // nmt-lint: allow(hot-alloc) — cold path, only reached on fault escalation
    Vec::new()
}

#[cfg(test)]
mod tests {
    fn test_code_is_exempt() -> Vec<u32> {
        vec![1, 2, 3]
    }
}
