//! Fixture: `slice-index` escalates to error in determinism-scoped files.

pub fn pick(v: &[u64], i: usize) -> u64 {
    v[i] //~ ERROR slice-index
}
