//! Fixture: `panic` fires in plain-`pub` fns of library sources.

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap() //~ ERROR panic
}

pub fn checked(flag: bool) -> u8 {
    if !flag {
        panic!("flag must be set"); //~ ERROR panic
    }
    1
}

pub fn described(x: Option<u8>) -> u8 {
    x.expect("callers always pass Some") //~ ERROR panic
}

// Private and restricted functions are allowed to unwrap.
fn private_ok(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub(crate) fn restricted_ok(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
