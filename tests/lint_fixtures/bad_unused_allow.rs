//! Fixture: `unused-allow` flags suppressions that suppress nothing.

// nmt-lint: allow(panic) — nothing below actually panics
//~^ WARN unused-allow
pub fn quiet() -> u8 {
    7
}
