//! Fixture: expected to lint clean — ordered maps, typed fallbacks, and a
//! justified (counted) suppression.

use std::collections::BTreeMap;

/// Sum per-key values in deterministic key order.
pub fn totals(pairs: &[(u32, u64)]) -> BTreeMap<u32, u64> {
    let mut out = BTreeMap::new();
    for &(k, v) in pairs {
        *out.entry(k).or_insert(0) += v;
    }
    out
}

/// Bounds-checked access instead of direct indexing.
pub fn fetch(v: &[u64], i: usize) -> Option<u64> {
    v.get(i).copied()
}

/// A justified suppression: counted in the report, not a violation.
pub fn head(v: &[u64]) -> u64 {
    // nmt-lint: allow(panic) — fixture demonstrating a justified, counted suppression
    v.first().copied().expect("callers guarantee non-empty")
}
