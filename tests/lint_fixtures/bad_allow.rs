//! Fixture: `bad-allow` fires on unknown rules and missing reasons.

// nmt-lint: allow(no-such-rule) — misspelled rule name
//~^ ERROR bad-allow

pub fn unjustified(x: Option<u8>) -> u8 {
    // nmt-lint: allow(panic)
    //~^ ERROR bad-allow
    x.unwrap() //~ ERROR panic
}
