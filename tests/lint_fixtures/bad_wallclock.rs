//! Fixture: `wallclock` fires outside the obs span allowlist.

pub fn elapsed_ns() -> u64 {
    let start = std::time::Instant::now(); //~ ERROR wallclock
    let _ = std::time::SystemTime::now(); //~ ERROR wallclock
    start.elapsed().as_nanos() as u64
}
