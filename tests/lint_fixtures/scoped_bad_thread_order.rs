//! Fixture: `thread-order` fires in determinism-scoped files (the
//! `scoped_` name prefix stands in for the ledger/audit/farm/stats list).

use std::sync::atomic::{AtomicU64, Ordering};

pub fn tally(total: &AtomicU64, delta: u64) {
    // Determinism-scoped files are also concurrency-scoped, so the bare
    // Relaxed op trips `atomic-ordering` (no `// ordering:` comment) on
    // top of `thread-order`.
    total.fetch_add(delta, Ordering::Relaxed); //~ ERROR thread-order
    //~^ ERROR atomic-ordering
}

pub fn drain() {
    let (tx, rx) = std::sync::mpsc::channel::<u64>(); //~ ERROR thread-order
    drop((tx, rx));
}
