//! Fixture: expected to lint clean — an allow directive whose reason
//! continues across indented comment lines still anchors its
//! suppression to the first code line after the continuation.

pub fn timed_section() -> u64 {
    // nmt-lint: allow(wallclock) — observability-only timing whose
    //   justification deliberately spills onto continuation lines (each
    //   indented by two spaces) to prove split reasons keep working.
    let start = std::time::Instant::now();
    start.elapsed().as_nanos() as u64
}
