//! Fixture: `atomic-ordering` requires a `// ordering:` justification on
//! every atomic op in concurrency-scoped files (the `atomic_` name
//! prefix stands in for the audited recorder/alloc/progress list), and
//! reserves `Relaxed` for monotone counters.

use std::sync::atomic::{AtomicU64, Ordering};

static EVENTS: AtomicU64 = AtomicU64::new(0);

pub fn bump_unjustified() -> u64 {
    EVENTS.fetch_add(1, Ordering::Relaxed) //~ ERROR atomic-ordering
}

pub fn relaxed_without_monotone() -> u64 {
    // ordering: cheap and probably fine
    EVENTS.load(Ordering::Relaxed) //~ ERROR atomic-ordering
}

pub fn empty_justification(v: u64) {
    // ordering:
    EVENTS.store(v, Ordering::Release); //~ ERROR atomic-ordering
}

pub fn justified_counter() -> u64 {
    // ordering: monotone event counter; readers only ever diff
    // snapshots across a join, which supplies the happens-before.
    EVENTS.fetch_add(1, Ordering::Relaxed)
}

pub fn justified_acquire() -> u64 {
    // ordering: Acquire — pairs with the Release in `empty_justification`.
    EVENTS.load(Ordering::Acquire)
}

pub fn same_named_method_is_not_atomic(cfg: &Config) -> Profile {
    // A `load` whose arguments carry no `Ordering` variant is somebody
    // else's method, not an atomic op; the rule must stay silent.
    cfg.load("path/to/profile")
}

pub fn cmp_ordering_is_not_atomic(xs: &mut [f32]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}
