//! Fixture: a kernel-style file timing itself with a raw monotonic clock
//! still fires `wallclock` after the allowlist grew the counting
//! allocator and the bench harness — only those named files may read the
//! clock directly; kernels must open an obs span instead.

pub struct KernelRun {
    pub total_ns: u64,
}

pub fn launch_tiled_kernel(rows: usize) -> KernelRun {
    let start = std::time::Instant::now(); //~ ERROR wallclock
    let mut acc = 0u64;
    for r in 0..rows {
        acc = acc.wrapping_add(r as u64);
    }
    let _ = acc;
    KernelRun {
        total_ns: start.elapsed().as_nanos() as u64,
    }
}
