//! Fixture: expected to lint clean — raw strings, byte strings, and
//! nested block comments. Everything below that *looks* like a rule
//! trigger is literal or comment text the lexer must not tokenize.

pub fn literal_soup() -> usize {
    let raw = r#"std::time::Instant::now() and a HashMap full of panic!"#;
    let nested_raw = r##"outer r#"inner"# still one literal"##;
    let bytes: &[u8] = b"x.unwrap() and SystemTime::now()";
    let byte_raw: &[u8] = br#"thread::current().id()"#;
    /* A block comment:
       /* with a nested block comment inside it */
       std::time::Instant::now() stays commented out here, as does
       data.expect("nope") and friends.
    */
    // A directive inside a string is data, not a directive:
    let fake = "// nmt-lint: allow(panic) — not real";
    raw.len() + nested_raw.len() + bytes.len() + byte_raw.len() + fake.len()
}

pub fn raw_identifiers_are_not_raw_strings(r#type: u32) -> u32 {
    // `r#type` must lex as an identifier, not open a raw string that
    // swallows the rest of the file.
    r#type + 1
}
