//! Fixture: `slice-index` is warning-severity in ordinary library sources.

pub fn pick(v: &[u64], i: usize) -> u64 {
    v[i] //~ WARN slice-index
}

// Slice *types* are not index expressions.
pub fn type_position_ok(v: &mut [u64]) -> usize {
    v.len()
}
