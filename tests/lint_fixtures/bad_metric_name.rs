//! Fixture: `metric-name` enforces the lowercase dotted convention for
//! literal names handed to the obs metric registry.

pub fn record(m: &nmt_obs::Metrics) {
    m.counter_add("BadName", 1); //~ ERROR metric-name
    m.gauge_set("single", 2.0); //~ ERROR metric-name
    m.histogram_record("engine.farm.bytes", 3);
}
