//! Fixture: `unordered-map` fires on any HashMap/HashSet mention.

use std::collections::HashMap; //~ ERROR unordered-map
use std::collections::HashSet; //~ ERROR unordered-map

pub fn build() -> HashMap<u32, u32> { //~ ERROR unordered-map
    HashMap::new() //~ ERROR unordered-map
}

pub fn seen() -> HashSet<u32> { //~ ERROR unordered-map
    HashSet::new() //~ ERROR unordered-map
}
