//! End-to-end planner tests: profile → choose → execute across every
//! structural family, plus the conversion-queue API and the multi-GPU
//! streaming model.

use spmm_nmt::engine::Layout;
use spmm_nmt::formats::{SparseMatrix, TiledDcsr};
use spmm_nmt::kernels::host;
use spmm_nmt::matgen::{generators, random_dense, GenKind, MatrixDesc};
use spmm_nmt::model::ssf::Choice;
use spmm_nmt::planner::api::{ConversionQueue, GetDcsrTileRequest};
use spmm_nmt::planner::multi_gpu::{plan_streamed_spmm, LargeSpmmProblem, MultiGpuConfig};
use spmm_nmt::planner::planner::{PlannerConfig, SpmmPlanner};

fn planner() -> SpmmPlanner {
    SpmmPlanner::new(PlannerConfig::test_small())
}

fn families(n: usize) -> Vec<MatrixDesc> {
    vec![
        MatrixDesc::new("uniform", n, GenKind::Uniform { density: 0.01 }, 1),
        MatrixDesc::new(
            "zipf",
            n,
            GenKind::ZipfRows {
                density: 0.01,
                exponent: 1.2,
            },
            2,
        ),
        MatrixDesc::new(
            "banded",
            n,
            GenKind::Banded {
                bandwidth: 6,
                fill: 0.5,
            },
            3,
        ),
        MatrixDesc::new(
            "blockdiag",
            n,
            GenKind::BlockDiag {
                block: 24,
                fill: 0.3,
                background: 1e-4,
            },
            4,
        ),
        MatrixDesc::new(
            "rowburst",
            n,
            GenKind::RowBursts {
                density: 0.01,
                burst_len: 12,
            },
            5,
        ),
        MatrixDesc::new(
            "rmat",
            n,
            GenKind::Rmat {
                a: 0.57,
                b: 0.19,
                c: 0.19,
                edge_factor: 4,
            },
            6,
        ),
    ]
}

#[test]
fn planner_is_correct_on_every_family() {
    let p = planner();
    for desc in families(192) {
        let a = generators::generate(&desc);
        let b = random_dense(a.shape().ncols, 16, desc.seed ^ 99);
        let report = p.execute(&a, &b).unwrap_or_else(|e| {
            panic!("planner failed on {}: {e}", desc.name);
        });
        // The chosen kernel's functional output already passed the
        // debug_assert against the baseline inside execute(); check the
        // report invariants here.
        assert!(report.speedup > 0.0, "{}: non-positive speedup", desc.name);
        assert!(
            report.stats.total_ns > 0.0 && report.baseline_stats.total_ns > 0.0,
            "{}: degenerate timing",
            desc.name
        );
        match report.choice {
            Choice::BStationary => {
                let engine = report
                    .engine
                    .as_ref()
                    .expect("online path reports engine stats");
                assert_eq!(engine.elements as usize, a.nnz(), "{}", desc.name);
                assert!(report.engine_energy_pj > 0.0 || a.nnz() == 0);
            }
            Choice::CStationary => assert!(report.engine.is_none()),
        }
    }
}

#[test]
fn heuristic_separates_clustered_from_scattered() {
    let p = planner();
    let scattered = generators::generate(&MatrixDesc::new(
        "u",
        256,
        GenKind::Uniform { density: 0.01 },
        7,
    ));
    let clustered = generators::generate(&MatrixDesc::new(
        "rb",
        256,
        GenKind::RowBursts {
            density: 0.02,
            burst_len: 16,
        },
        8,
    ));
    let (ps, _) = p.plan(&scattered);
    let (pc, _) = p.plan(&clustered);
    assert!(
        pc.ssf > ps.ssf,
        "clustered SSF {} must exceed scattered SSF {}",
        pc.ssf,
        ps.ssf
    );
    // And entropy orders the other way.
    assert!(pc.h_norm < ps.h_norm);
}

#[test]
fn conversion_queue_serves_a_full_matrix_correctly() {
    let a = generators::generate(&MatrixDesc::new(
        "q",
        96,
        GenKind::ZipfBoth {
            density: 0.03,
            exponent: 1.0,
        },
        11,
    ));
    let csc = a.to_csc();
    let offline = TiledDcsr::from_csc(&csc, 16, 16).expect("tiling");
    let mut queue = ConversionQueue::new(&csc, 16, 16, Layout::TileRotated, 8);
    // SMs request tiles in an interleaved order, as concurrent blocks would.
    let nstrips = queue.num_strips();
    let ntiles = 96usize.div_ceil(16);
    for t in 0..ntiles {
        for s in 0..nstrips {
            queue.submit(GetDcsrTileRequest {
                strip_id: s,
                row_start: (t * 16) as u32,
                sm_id: (s + t) % 4,
            });
        }
    }
    let responses = queue.drain();
    assert_eq!(responses.len(), nstrips * ntiles);
    for resp in responses {
        let expected =
            &offline.strips()[resp.request.strip_id][resp.request.row_start as usize / 16];
        assert_eq!(&resp.tile, expected);
    }
    assert_eq!(queue.stats().elements as usize, a.nnz());
}

#[test]
fn multi_gpu_plan_scales_and_respects_memory() {
    let p = LargeSpmmProblem {
        n: 1_000_000,
        k: 500_000,
        nnz: 20_000_000,
    };
    let one = plan_streamed_spmm(&p, &MultiGpuConfig::gv100_cluster(1)).expect("planable");
    let four = plan_streamed_spmm(&p, &MultiGpuConfig::gv100_cluster(4)).expect("planable");
    assert!(four.overlapped_s < one.overlapped_s);
    assert_eq!(four.cols_per_gpu, 125_000);
    // The dense matrices genuinely do not fit in one GPU.
    assert!(p.dense_bytes() > MultiGpuConfig::gv100_cluster(1).device_mem_bytes);
}

#[test]
fn planner_handles_empty_matrix() {
    let a = spmm_nmt::formats::Csr::new(64, 64, vec![0; 65], vec![], vec![]).expect("empty");
    let b = random_dense(64, 8, 1);
    let report = planner().execute(&a, &b).expect("empty matrix plans");
    assert_eq!(report.stats.flops, 0, "no non-zeros means no FP work");
    let reference = host::spmm_csr(&a, &b);
    assert!(reference.as_slice().iter().all(|&v| v == 0.0));
}

#[test]
fn planner_handles_zero_dimension_matrix() {
    // ncols == 0 exercises the phantom-strip convention end to end:
    // `strip_count` reports one empty strip, the engine converts it to
    // nothing, and the planner still produces a coherent report.
    let a = spmm_nmt::formats::Csr::new(0, 0, vec![0], vec![], vec![]).expect("zero-dim");
    let b = spmm_nmt::formats::DenseMatrix::zeros(0, 8);
    let report = planner().execute(&a, &b).expect("zero-dim matrix plans");
    assert_eq!(report.stats.flops, 0, "no dimensions means no FP work");

    // The engine side of the same convention: one phantom strip holding
    // one phantom (empty) tile, mirroring `strip_count`/`tile_count`.
    let csc = a.to_csc();
    let (strips, stats) = spmm_nmt::engine::convert_matrix(&csc, 16, 16);
    assert_eq!(strips.len(), 1, "zero-width matrix still owns one strip");
    assert_eq!(strips[0].len(), 1, "zero-height strip still owns one tile");
    assert_eq!(strips[0][0].nnz(), 0);
    assert_eq!(stats.elements, 0);
}
