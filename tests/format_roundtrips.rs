//! Property-based round-trip tests across every sparse format.
//!
//! The whole system depends on the formats being faithful encodings: the
//! engine's output is validated against offline tiling, which is validated
//! against CSR, which is validated against COO/dense. These properties pin
//! the bottom of that chain.

use proptest::prelude::*;
use spmm_nmt::formats::arbitrary::{self, Corruption};
use spmm_nmt::formats::{
    market, Coo, Csc, Csr, Dcsr, FormatError, SparseMatrix, StorageSize, TiledCsr, TiledDcsr,
};

/// Strategy: a random COO matrix with dims in [1, 64] and up to 200
/// (possibly duplicate) entries.
fn coo_strategy() -> impl Strategy<Value = Coo> {
    (1usize..=64, 1usize..=64).prop_flat_map(|(nrows, ncols)| {
        let entry = (0..nrows as u32, 0..ncols as u32, -100i32..100);
        proptest::collection::vec(entry, 0..200).prop_map(move |entries| {
            let mut coo = Coo::new(nrows, ncols).expect("small dims");
            for (r, c, v) in entries {
                // Avoid exact duplicate-cancellation flakiness: strictly
                // positive values.
                coo.push(r, c, v.abs() as f32 + 1.0).expect("in bounds");
            }
            coo.canonicalize();
            coo
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coo_csr_roundtrip(coo in coo_strategy()) {
        let csr = Csr::from_coo(&coo);
        prop_assert_eq!(csr.nnz(), coo.nnz());
        prop_assert_eq!(csr.to_coo().to_dense(), coo.to_dense());
    }

    #[test]
    fn csr_csc_roundtrip(coo in coo_strategy()) {
        let csr = Csr::from_coo(&coo);
        let csc = csr.to_csc();
        prop_assert_eq!(csc.to_csr(), csr.clone());
        prop_assert_eq!(Csc::from_coo(&coo), csc);
    }

    #[test]
    fn dcsr_roundtrip_and_no_empty_rows(coo in coo_strategy()) {
        let csr = Csr::from_coo(&coo);
        let dcsr = Dcsr::from_csr(&csr);
        prop_assert_eq!(dcsr.to_csr(), csr.clone());
        // Densified rows are exactly the non-empty rows, in order.
        let nonempty: Vec<u32> = (0..csr.shape().nrows)
            .filter(|&r| csr.row_nnz(r) > 0)
            .map(|r| r as u32)
            .collect();
        prop_assert_eq!(dcsr.rowidx().to_vec(), nonempty);
    }

    #[test]
    fn tiled_roundtrips(coo in coo_strategy(), tile_w in 1usize..=32, tile_h in 1usize..=32) {
        let csr = Csr::from_coo(&coo);
        let tcsr = TiledCsr::from_csr(&csr, tile_w).expect("valid tiling");
        prop_assert_eq!(tcsr.to_csr(), csr.clone());
        let tdcsr = TiledDcsr::from_csr(&csr, tile_w, tile_h).expect("valid tiling");
        prop_assert_eq!(tdcsr.to_csr(), csr.clone());
        for (_, _, tile) in tdcsr.iter_tiles() {
            prop_assert!(tile.validate().is_ok());
        }
    }

    #[test]
    fn nnz_is_conserved_by_every_format(coo in coo_strategy()) {
        let csr = Csr::from_coo(&coo);
        let nnz = csr.nnz();
        prop_assert_eq!(csr.to_csc().nnz(), nnz);
        prop_assert_eq!(Dcsr::from_csr(&csr).nnz(), nnz);
        prop_assert_eq!(TiledCsr::from_csr(&csr, 8).expect("tiling").nnz(), nnz);
        prop_assert_eq!(TiledDcsr::from_csr(&csr, 8, 8).expect("tiling").nnz(), nnz);
    }

    #[test]
    fn storage_accounting_is_consistent(coo in coo_strategy()) {
        let csr = Csr::from_coo(&coo);
        // metadata + data == total for every format.
        let tdcsr = TiledDcsr::from_csr(&csr, 8, 8).expect("tiling");
        prop_assert_eq!(
            tdcsr.storage_bytes(),
            tdcsr.metadata_bytes() + tdcsr.data_bytes()
        );
        // Values always cost 4 bytes each.
        prop_assert_eq!(csr.data_bytes(), csr.nnz() * 4);
        prop_assert_eq!(tdcsr.data_bytes(), csr.nnz() * 4);
        // DCSR never stores more rowptr entries than CSR.
        let dcsr = Dcsr::from_csr(&csr);
        prop_assert!(dcsr.rowptr().len() <= csr.rowptr().len());
    }

    #[test]
    fn market_io_roundtrip(coo in coo_strategy()) {
        let mut buf = Vec::new();
        market::write_market(&mut buf, &coo).expect("write to memory");
        let (back, _) = market::read_market(buf.as_slice()).expect("parse what we wrote");
        prop_assert_eq!(back.to_dense(), coo.to_dense());
    }

    #[test]
    fn transpose_is_involutive(coo in coo_strategy()) {
        let csr = Csr::from_coo(&coo);
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn arbitrary_matrices_validate_and_roundtrip(csr in arbitrary::csr_strategy()) {
        prop_assert!(csr.validate().is_ok());
        prop_assert_eq!(csr.to_csc().to_csr(), csr.clone());
        prop_assert_eq!(Csr::from_coo(&csr.to_coo()), csr);
    }

    #[test]
    fn arbitrary_csc_validates_and_roundtrips(csc in arbitrary::csc_strategy()) {
        prop_assert!(csc.validate().is_ok());
        prop_assert_eq!(csc.to_csr().to_csc(), csc);
    }

    #[test]
    fn arbitrary_tilings_validate_and_roundtrip(tdcsr in arbitrary::tiled_dcsr_strategy()) {
        prop_assert!(tdcsr.validate().is_ok());
        // Untile then re-tile at the same edges: identity.
        let back = TiledDcsr::from_csr(
            &tdcsr.to_csr(),
            tdcsr.tile_width(),
            tdcsr.tile_height(),
        ).expect("retiling a valid matrix succeeds");
        prop_assert_eq!(back, tdcsr);
    }

    #[test]
    fn corrupted_variants_reject_without_panicking(
        csr in arbitrary::csr_strategy(),
        tdcsr in arbitrary::tiled_dcsr_strategy(),
    ) {
        let csc = csr.to_csc();
        for kind in Corruption::ALL {
            if let Some(verdict) = arbitrary::corrupt_csr(&csr, kind) {
                prop_assert!(
                    matches!(verdict, Err(FormatError::NotCanonical { .. })
                        | Err(FormatError::LengthMismatch { .. })
                        | Err(FormatError::MalformedPointerArray { .. })
                        | Err(FormatError::IndexOutOfBounds { .. })),
                    "CSR validator accepted or mis-typed {kind:?}"
                );
            }
            if let Some(verdict) = arbitrary::corrupt_csc(&csc, kind) {
                prop_assert!(verdict.is_err(), "CSC validator accepted {kind:?}");
            }
            for (_, _, tile) in tdcsr.iter_tiles() {
                if let Some(verdict) = arbitrary::corrupt_tile(tile, kind) {
                    prop_assert!(verdict.is_err(), "tile validator accepted {kind:?}");
                }
            }
        }
    }
}

#[test]
fn empty_and_single_cell_edge_cases() {
    for (nrows, ncols) in [(1usize, 1usize), (1, 64), (64, 1)] {
        let coo = Coo::new(nrows, ncols).expect("valid dims");
        let csr = Csr::from_coo(&coo);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.to_csc().to_csr(), csr);
        let tiled = TiledDcsr::from_csr(&csr, 8, 8).expect("tiling");
        assert_eq!(tiled.to_csr(), csr);
    }
}
