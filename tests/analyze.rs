//! Integration tests for the determinism dataflow pass (`cargo xtask
//! analyze`) over the seeded fixtures in `tests/analyze_fixtures/`.
//!
//! The contract mirrored here is exactly what CI enforces:
//!   * the seeded bad fixture must FAIL with `determinism-flow` findings
//!     whose messages spell out the full source→…→sink chain;
//!   * the clean fixture must pass with its sanitize directive counted;
//!   * the live workspace must analyze with zero errors.

use std::path::{Path, PathBuf};

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn fixture(name: &str) -> PathBuf {
    PathBuf::from("tests/analyze_fixtures").join(name)
}

#[test]
fn seeded_bad_fixture_fails_with_full_chains() {
    let report = nmt_lint::analyze_paths(root(), &[fixture("bad_determinism_flow.rs")])
        .expect("fixture analyzes");
    assert!(
        report.failed(false),
        "seeded fixture must fail even without --deny-warnings:\n{}",
        report.render()
    );

    let flows: Vec<_> = report
        .report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "determinism-flow")
        .collect();
    let mut lines: Vec<u32> = flows.iter().map(|d| d.line).collect();
    lines.sort_unstable();
    assert_eq!(
        lines,
        vec![23, 31],
        "expected the write_all and writeln! sinks:\n{}",
        report.render()
    );

    // Flow 1: wall clock -> stamp_ns -> ledger_row -> write_ledger sink.
    let ledger = flows.iter().find(|d| d.line == 23).unwrap();
    assert_eq!(ledger.severity, nmt_lint::Severity::Error);
    for hop in ["write_ledger", "ledger_row", "stamp_ns", "wallclock"] {
        assert!(
            ledger.message.contains(hop),
            "chain should mention {hop}: {}",
            ledger.message
        );
    }

    // Flow 2: HashMap iteration directly inside the sink's function.
    let counts = flows.iter().find(|d| d.line == 31).unwrap();
    for hop in ["dump_counts", "unordered-iter", "HashMap"] {
        assert!(
            counts.message.contains(hop),
            "chain should mention {hop}: {}",
            counts.message
        );
    }

    // Stats see both flows: sources (Instant + elapsed + HashMap),
    // the four tainted fns, and both sink sites.
    let stats = &report.crates[0];
    assert_eq!(stats.name, "analyze_fixtures");
    assert_eq!(stats.taint_sources, 3, "{stats:?}");
    assert_eq!(stats.tainted_functions, 4, "{stats:?}");
    assert_eq!(stats.sink_sites, 2, "{stats:?}");
    assert_eq!(stats.sanitizers, 0, "{stats:?}");
}

#[test]
fn clean_fixture_passes_and_counts_its_sanitizer() {
    let report = nmt_lint::analyze_paths(root(), &[fixture("clean_flow.rs")])
        .expect("fixture analyzes");
    assert!(
        !report.failed(true),
        "clean fixture must pass under --deny-warnings:\n{}",
        report.render()
    );
    assert!(report.report.diagnostics.is_empty(), "{}", report.render());

    // The env read exists as a source, but the sanitize directive cuts
    // the flow before either sink — and is recorded as used.
    let stats = &report.crates[0];
    assert_eq!(stats.sanitizers, 1, "{stats:?}");
    assert!(stats.taint_sources >= 1, "{stats:?}");
    assert_eq!(report.report.suppressions.len(), 1);
    let supp = &report.report.suppressions[0];
    assert_eq!(supp.rule, "determinism-flow (sanitize)");
    assert!(
        supp.reason.contains("configuration input"),
        "sanitize reason should survive into the record: {supp:?}"
    );
}

#[test]
fn fixture_directory_as_a_whole_fails() {
    // The CI analyze leg points the tool at the directory; one bad file
    // must be enough to fail the run.
    let report = nmt_lint::analyze_paths(root(), &[PathBuf::from("tests/analyze_fixtures")])
        .expect("directory analyzes");
    assert!(report.failed(false));
    assert_eq!(report.report.summary.files_scanned, 2);
}

#[test]
fn analyze_report_json_is_versioned() {
    let report = nmt_lint::analyze_paths(root(), &[fixture("clean_flow.rs")])
        .expect("fixture analyzes");
    assert_eq!(report.schema_version, nmt_lint::ANALYZE_SCHEMA_VERSION);
    let json = report.to_json();
    for key in ["schema_version", "crates", "taint_sources", "summary"] {
        assert!(json.contains(key), "JSON artifact missing `{key}`");
    }
}

#[test]
fn workspace_analyzes_clean() {
    let report = nmt_lint::analyze_workspace(root()).expect("workspace analyzes");
    assert_eq!(
        report.report.summary.errors,
        0,
        "workspace has determinism-flow/atomic-ordering errors:\n{}",
        report.render()
    );
    assert_eq!(
        report.report.summary.warnings,
        0,
        "workspace analyze warnings (stale directives?):\n{}",
        report.render()
    );
    // The audit left a small, known set of reasoned suppressions; a
    // sudden jump means someone is papering over findings.
    assert!(
        report.report.suppressions.len() <= 10,
        "suppression creep: {:#?}",
        report.report.suppressions
    );
}

#[test]
fn design_doc_rule_table_matches_rule_info() {
    // Satellite: DESIGN.md §6d is generated from `rule_info()` via
    // `cargo xtask lint --rules-md --write`; this test fails on drift.
    const START: &str = "<!-- nmt-lint:rules-table:start (generated; run `cargo xtask lint --rules-md --write`) -->";
    const END: &str = "<!-- nmt-lint:rules-table:end -->";
    let design = std::fs::read_to_string(root().join("DESIGN.md")).expect("DESIGN.md");
    let start = design
        .find(START)
        .expect("DESIGN.md must carry the rules-table start marker");
    let end = design
        .find(END)
        .expect("DESIGN.md must carry the rules-table end marker");
    let between = &design[start + START.len()..end];
    let expected = nmt_lint::rules_markdown();
    assert_eq!(
        between.trim(),
        expected.trim(),
        "DESIGN.md rule table is stale; run `cargo xtask lint --rules-md --write`"
    );
}
