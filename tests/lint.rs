//! ui-style tests for `nmt-lint`.
//!
//! Each fixture under `tests/lint_fixtures/` declares its expected
//! diagnostics inline with `//~ ERROR <rule>` / `//~ WARN <rule>` markers
//! (`//~^` anchors to the previous line instead of its own). Files named
//! `clean_*` must produce no diagnostics at all. The final test holds the
//! live workspace to the same standard the CI lint job enforces: zero
//! error-severity findings.

use nmt_lint::{Severity, RULES};
use std::path::{Path, PathBuf};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures")
}

fn fixture_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(fixture_dir())
        .expect("tests/lint_fixtures exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no fixtures found");
    files
}

/// Parse `//~ ERROR <rule>` / `//~ WARN <rule>` markers out of a fixture.
/// `//~^` attaches the expectation to the previous line.
fn expected_markers(src: &str) -> Vec<(String, Severity, u32)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let lineno = (i + 1) as u32;
        let Some(pos) = line.find("//~") else {
            continue;
        };
        let mut rest = &line[pos + 3..];
        let mut target = lineno;
        if let Some(stripped) = rest.strip_prefix('^') {
            rest = stripped;
            target = lineno - 1;
        }
        let mut words = rest.split_whitespace();
        let severity = match words.next() {
            Some("ERROR") => Severity::Error,
            Some("WARN") => Severity::Warning,
            other => panic!("bad marker severity {other:?} in line {lineno}: {line}"),
        };
        let rule = words
            .next()
            .unwrap_or_else(|| panic!("marker missing rule name in line {lineno}: {line}"))
            .to_string();
        out.push((rule, severity, target));
    }
    out.sort();
    out
}

#[test]
fn fixtures_produce_exactly_their_declared_diagnostics() {
    for path in fixture_files() {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let rel = format!("tests/lint_fixtures/{name}");
        let src = std::fs::read_to_string(&path).unwrap();
        let (diags, _) = nmt_lint::check_source(&rel, &src, nmt_lint::classify(&rel));
        let mut got: Vec<(String, Severity, u32)> = diags
            .iter()
            .map(|d| (d.rule.clone(), d.severity, d.line))
            .collect();
        got.sort();
        if name.starts_with("clean_") {
            assert!(got.is_empty(), "{rel} should lint clean, got {got:?}");
        } else {
            let expected = expected_markers(&src);
            assert!(!expected.is_empty(), "{rel} declares no //~ markers");
            assert_eq!(got, expected, "diagnostic mismatch in {rel}");
        }
    }
}

#[test]
fn fixtures_cover_every_rule() {
    let mut covered: Vec<String> = fixture_files()
        .iter()
        .flat_map(|p| expected_markers(&std::fs::read_to_string(p).unwrap()))
        .map(|(rule, _, _)| rule)
        .collect();
    covered.sort();
    covered.dedup();
    for rule in RULES {
        // Dataflow-pass rules are exercised by `tests/analyze.rs` over
        // `tests/analyze_fixtures/`; the token-pass harness here cannot
        // trigger them.
        if rule.pass != nmt_lint::RulePass::Token {
            continue;
        }
        assert!(
            covered.contains(&rule.name.to_string()),
            "no fixture exercises rule `{}`",
            rule.name
        );
    }
}

#[test]
fn clean_fixture_suppression_is_counted() {
    let path = fixture_dir().join("clean_library.rs");
    let src = std::fs::read_to_string(&path).unwrap();
    let rel = "tests/lint_fixtures/clean_library.rs";
    let (diags, used) = nmt_lint::check_source(rel, &src, nmt_lint::classify(rel));
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(used.len(), 1, "the justified allow should be counted");
    assert_eq!(used[0].rule, "panic");
    assert!(!used[0].reason.is_empty());
}

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = nmt_lint::lint_workspace(root).expect("workspace lint runs");
    assert_eq!(
        report.summary.errors, 0,
        "workspace has lint errors:\n{}",
        report.render()
    );
}
