//! Fixture: expected to analyze clean. A nondeterministic read exists,
//! but it is declared sanitized (explicit configuration input) before
//! it reaches the sink, and the remaining sink takes only deterministic
//! data — neither may produce a `determinism-flow` finding.

// nmt-lint: sanitize(determinism-flow) — FIXTURE_SCALE is an explicit
//   configuration input; the parsed value is recorded in the artifact
//   header, so identical configurations serialize identically.
fn configured_scale() -> usize {
    match std::env::var("FIXTURE_SCALE") {
        Ok(v) => v.len().max(1),
        Err(_) => 1,
    }
}

pub fn write_report(out: &mut String) {
    use std::fmt::Write as _;
    let scale = configured_scale();
    writeln!(out, "scale={scale}").ok();
}

pub fn write_totals(out: &mut String, totals: &[(u32, u64)]) {
    use std::fmt::Write as _;
    for (key, value) in totals {
        writeln!(out, "{key}={value}").ok();
    }
}
