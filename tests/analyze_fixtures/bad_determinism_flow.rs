//! Seeded fixture: nondeterminism flowing into serialized output.
//! `cargo xtask analyze` over this file must exit nonzero — the CI
//! analyze leg checks exactly that, and `tests/analyze.rs` pins the
//! expected findings (rule, sink line, chain wording).
//!
//! Flow 1: a wall-clock read (`Instant::now`/`elapsed`) escapes through
//! two helpers into a ledger write. Flow 2: `HashMap` iteration order
//! escapes through a `writeln!` sink in the same function.

use std::io::Write;

fn stamp_ns() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_nanos() as u64
}

fn ledger_row(label: &str) -> String {
    format!("{label},{}", stamp_ns())
}

pub fn write_ledger(out: &mut dyn Write) -> std::io::Result<()> {
    let row = ledger_row("strip");
    out.write_all(row.as_bytes()) // sink: tainted via ledger_row -> stamp_ns
}

pub fn dump_counts(out: &mut String) {
    use std::fmt::Write as _;
    let mut counts: std::collections::HashMap<String, u64> = Default::default();
    counts.insert("strips".to_string(), 4);
    for (key, value) in counts.iter() {
        writeln!(out, "{key}={value}").ok(); // sink: unordered iteration
    }
}
