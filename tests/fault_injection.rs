//! Deterministic fault injection end-to-end: a faulted sweep completes
//! with zero panics, every engine-side fault that survives its retry is
//! audited as a B→C degraded-mode fallback, faults fire at identical
//! `(site, key)` points across runs and thread counts, and the faulted
//! ledger artifact is byte-identical under 1-thread and 4-thread pools —
//! the in-process counterpart of the CI `fault` job's
//! `RAYON_NUM_THREADS=1` vs `=4` legs.

use spmm_nmt::bench::Ledger;
use spmm_nmt::engine::{convert_matrix_farm, FarmConfig};
use spmm_nmt::fault::{FaultPlan, FaultSite};
use spmm_nmt::formats::SparseMatrix;
use spmm_nmt::matgen::{generators, random_dense, GenKind, MatrixDesc, SuiteScale, SuiteSpec};
use spmm_nmt::model::ssf::Choice;
use spmm_nmt::obs::ObsContext;
use spmm_nmt::planner::planner::{PlannerConfig, SpmmPlanner};
use spmm_nmt::planner::DecisionAudit;

/// Re-point the global pool (the shim allows overriding, unlike real
/// rayon) and run `f` under exactly `n` workers.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("shim pool re-points");
    let out = f();
    assert_eq!(rayon::current_num_threads(), n);
    out
}

/// The fault plan under test: `NMT_FAULT_SEED` / `NMT_FAULT_RATE` when set
/// (the CI fault job pins them), else a fixed high-rate default so every
/// site actually fires inside the quick suite.
fn plan() -> FaultPlan {
    FaultPlan::from_env().unwrap_or_else(|| FaultPlan::new(0xFA117, 300_000))
}

/// Audit the quick suite with `fault` installed in every planner.
fn faulted_audits(fault: Option<FaultPlan>) -> Vec<DecisionAudit> {
    let config = PlannerConfig::test_small().with_fault(fault);
    SuiteSpec::quick(31)
        .build()
        .iter()
        .map(|(desc, a)| {
            let b = random_dense(a.shape().ncols, 8, desc.seed ^ 0x16);
            SpmmPlanner::new(config.clone())
                .explain(&desc.name, a, &b, &ObsContext::disabled())
                .expect("faulted audit completes without surfacing an error")
        })
        .collect()
}

/// The quick-suite faulted ledger (mirrors the bench sweep at test scale).
fn faulted_ledger(fault: FaultPlan) -> Ledger {
    let audits = faulted_audits(Some(fault));
    Ledger::from_sweep_faulted(
        SuiteScale::Small,
        31,
        8,
        PlannerConfig::test_small().tile_w,
        Some(fault),
        &audits,
        Vec::new(),
    )
}

// One test function on purpose: `build_global` is process-wide state, and
// the test harness runs sibling tests concurrently.
#[test]
fn faulted_sweep_is_deterministic_audited_and_thread_invariant() {
    let plan = plan();

    // 1. Engine farm under faults: identical tiles, stats, and fault
    // events at 1 vs 4 threads — fault keys are (seed, site, strip), so
    // scheduling cannot move them.
    let desc = MatrixDesc::new(
        "fault-rmat",
        160,
        GenKind::Rmat {
            a: 0.55,
            b: 0.15,
            c: 0.15,
            edge_factor: 6,
        },
        43,
    );
    let csc = generators::generate(&desc).to_csc();
    let farm_cfg = FarmConfig::for_partitions(4).with_fault(Some(plan));
    let run_farm = |threads| {
        with_threads(threads, || {
            convert_matrix_farm(&csc, 16, 16, farm_cfg)
        })
    };
    match (run_farm(1), run_farm(4)) {
        (Ok(serial), Ok(parallel)) => {
            assert_eq!(serial.strips, parallel.strips);
            assert_eq!(serial.stats, parallel.stats);
            assert_eq!(serial.faults, parallel.faults);
            assert_eq!(serial.per_partition, parallel.per_partition);
        }
        (Err(serial), Err(parallel)) => {
            // Escalations are errors, but the *same* typed error: the
            // reduction surfaces the lowest-strip fault regardless of
            // which worker hit it first.
            assert_eq!(serial.to_string(), parallel.to_string());
        }
        (serial, parallel) => panic!(
            "thread count changed the outcome: 1-thread {serial:?} vs 4-thread {parallel:?}"
        ),
    }

    // 2. The faulted sweep completes with zero panics, and every audit
    // that records a fault has coherent degraded-mode bookkeeping.
    let audits = with_threads(4, || faulted_audits(Some(plan)));
    let mut escalations = 0usize;
    for audit in &audits {
        if let Some(fault) = &audit.fault {
            escalations += 1;
            // Only the engine path escalates to the planner.
            assert_eq!(fault.site, FaultSite::ConvertStrip);
            assert!(fault.retried, "ConvertStrip faults are retried first");
            // `fell_back` records whether the heuristic would have routed
            // this matrix through the faulted engine path.
            assert_eq!(
                fault.fell_back,
                audit.chosen == Choice::BStationary,
                "fallback flag must mirror the routing decision for {}",
                audit.matrix
            );
            assert_eq!(
                audit.bstationary.dataflow, "b-stationary-fallback",
                "audited dataflow must be labeled as degraded for {}",
                audit.matrix
            );
        }
    }
    assert!(
        escalations > 0,
        "the default high-rate plan must escalate at least once in the quick suite"
    );

    // 3. Same seed, same faults: a second sweep reproduces every fault
    // record (site, key, flags) and every decision exactly.
    let audits_again = with_threads(4, || faulted_audits(Some(plan)));
    assert_eq!(audits.len(), audits_again.len());
    for (a, b) in audits.iter().zip(&audits_again) {
        assert_eq!(a.fault, b.fault, "fault records diverged for {}", a.matrix);
        assert_eq!(a.to_json(), b.to_json(), "audit diverged for {}", a.matrix);
    }

    // 4. The faulted ledger artifact is byte-identical across thread
    // counts and carries the fault identity.
    let ledger_serial = with_threads(1, || faulted_ledger(plan));
    let ledger_parallel = with_threads(4, || faulted_ledger(plan));
    assert_eq!(ledger_serial.to_json(), ledger_parallel.to_json());
    assert_eq!(ledger_serial.fault_seed, Some(plan.seed));
    assert_eq!(ledger_serial.fault_rate_ppm, Some(plan.rate_ppm));

    // 5. A zero-rate plan is indistinguishable from no plan at all (other
    // than the stamped identity): injection is inert, not merely rare.
    let zero = FaultPlan::new(plan.seed, 0);
    let clean = with_threads(4, || faulted_audits(None));
    let zeroed = with_threads(4, || faulted_audits(Some(zero)));
    for (c, z) in clean.iter().zip(&zeroed) {
        assert_eq!(c.to_json(), z.to_json(), "zero-rate diverged for {}", c.matrix);
    }
}
