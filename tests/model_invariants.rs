//! Property tests on the analytical models: entropy bounds, SSF behaviour,
//! Table 1 traffic relations and threshold learning.

use proptest::prelude::*;
use spmm_nmt::formats::{Coo, Csr, SparseMatrix};
use spmm_nmt::model::ssf::SsfProfile;
use spmm_nmt::model::{classify, learn_threshold, normalized_entropy, Dataflow, TrafficModel};

fn csr_strategy() -> impl Strategy<Value = Csr> {
    (4usize..=64).prop_flat_map(|n| {
        let entry = (0..n as u32, 0..n as u32, 1i32..10);
        proptest::collection::vec(entry, 0..200).prop_map(move |entries| {
            let mut coo = Coo::new(n, n).expect("valid dims");
            for (r, c, v) in entries {
                coo.push(r, c, v as f32).expect("in bounds");
            }
            coo.canonicalize();
            Csr::from_coo(&coo)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn entropy_is_bounded_and_scale_free(csr in csr_strategy(), tile_w in 1usize..=32) {
        let h = normalized_entropy(&csr, tile_w);
        prop_assert!((0.0..=1.0).contains(&h), "H_norm = {}", h);
        // Scaling all values changes nothing: entropy is structural.
        let scaled = Csr::new(
            csr.shape().nrows,
            csr.shape().ncols,
            csr.rowptr().to_vec(),
            csr.colidx().to_vec(),
            csr.values().iter().map(|v| v * 3.0).collect(),
        ).expect("same structure");
        prop_assert_eq!(normalized_entropy(&scaled, tile_w), h);
    }

    #[test]
    fn wider_strips_never_increase_entropy(csr in csr_strategy()) {
        // Doubling the strip width can only merge segments, never split
        // them, so entropy (scatteredness) is non-increasing in width.
        let h8 = normalized_entropy(&csr, 8);
        let h16 = normalized_entropy(&csr, 16);
        let h_full = normalized_entropy(&csr, csr.shape().ncols.max(1));
        prop_assert!(h16 <= h8 + 1e-12, "h16 {} > h8 {}", h16, h8);
        prop_assert!(h_full <= h16 + 1e-12);
    }

    #[test]
    fn ssf_profile_terms_are_sane(csr in csr_strategy(), tile_w in 1usize..=32) {
        let p = SsfProfile::compute(&csr, tile_w);
        prop_assert!((0.0..=1.0).contains(&p.nnzrow_frac));
        prop_assert!((0.0..=1.0).contains(&p.mean_strip_frac));
        prop_assert!(p.ssf >= 0.0);
        prop_assert_eq!(p.nnz as usize, csr.nnz());
        // A row touching any strip implies strip fraction <= row fraction
        // summed over strips: mean_strip_frac <= nnzrow_frac always.
        prop_assert!(p.mean_strip_frac <= p.nnzrow_frac + 1e-12);
    }

    #[test]
    fn traffic_estimates_are_positive_and_ordered(
        n in 128usize..4096,
        k in 8usize..128,
        d in 1e-4f64..5e-2,
    ) {
        let m = TrafficModel::uniform(n, k, d);
        for df in Dataflow::ALL {
            let e = m.estimate(df);
            prop_assert!(e.a_bytes > 0.0 && e.b_bytes > 0.0 && e.c_bytes > 0.0);
        }
        // A-stationary fetches A once; the others refetch per strip.
        let a = m.estimate(Dataflow::AStationary);
        let b = m.estimate(Dataflow::BStationary);
        let c = m.estimate(Dataflow::CStationary);
        prop_assert!(a.a_bytes <= b.a_bytes);
        prop_assert!((b.a_bytes - c.a_bytes).abs() < 1e-6);
        // B-stationary fetches B once (n_nnzcol·n); C-stationary refetches
        // per non-zero (nnz·n >= n_nnzcol·n).
        prop_assert!(b.b_bytes <= c.b_bytes + 1e-6);
        // B-stationary pays atomics on C; C-stationary does not.
        prop_assert!(c.c_bytes <= b.c_bytes + 1e-6);
    }

    #[test]
    fn threshold_learning_is_consistent(
        points in proptest::collection::vec((1e-3f64..1e6, 0.1f64..10.0), 1..100)
    ) {
        let th = learn_threshold(&points);
        prop_assert!((0.0..=1.0).contains(&th.accuracy));
        // The learned accuracy matches a recount with the same threshold.
        let correct = points
            .iter()
            .filter(|&&(ssf, ratio)| {
                let predicted_b =
                    classify(ssf, &th) == spmm_nmt::model::ssf::Choice::BStationary;
                predicted_b == (ratio > 1.0)
            })
            .count();
        prop_assert_eq!(th.accuracy, correct as f64 / points.len() as f64);
        // No single-class split can beat the learned threshold.
        let all_b = points.iter().filter(|&&(_, r)| r > 1.0).count();
        let majority = all_b.max(points.len() - all_b) as f64 / points.len() as f64;
        prop_assert!(th.accuracy >= majority - 1e-12);
    }
}

#[test]
fn entropy_extremes() {
    // One dense row segment: 0. Fully scattered: 1.
    let clustered =
        Csr::from_coo(&Coo::from_triplets(8, 8, &[0, 0, 0], &[0, 1, 2], &[1.0; 3]).expect("valid"));
    assert_eq!(normalized_entropy(&clustered, 8), 0.0);
    let scattered =
        Csr::from_coo(&Coo::from_triplets(8, 8, &[0, 2, 4], &[0, 3, 6], &[1.0; 3]).expect("valid"));
    assert!((normalized_entropy(&scattered, 2) - 1.0).abs() < 1e-12);
}
