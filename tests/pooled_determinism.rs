//! The memory pools are a pure performance device: a pooled farm run must
//! be **bitwise identical** to an unpooled one — same tiles, same stats,
//! same partition attribution, same fault records — for any matrix, any
//! tile geometry, and any thread count, and the ledger artifact built on
//! top must stay byte-identical JSON. A pooled buffer that leaked stale
//! contents or perturbed tile boundaries would fail these within a few
//! proptest cases.

use proptest::prelude::*;
use spmm_nmt::bench::Ledger;
use spmm_nmt::engine::{convert_matrix_farm, FarmConfig};
use spmm_nmt::fault::FaultPlan;
use spmm_nmt::formats::{Coo, Csr, SparseMatrix};
use spmm_nmt::matgen::{generators, random_dense, GenKind, MatrixDesc, SuiteScale, SuiteSpec};
use spmm_nmt::obs::ObsContext;
use spmm_nmt::planner::planner::{PlannerConfig, SpmmPlanner};

fn csr_strategy() -> impl Strategy<Value = Csr> {
    (2usize..=48, 2usize..=48).prop_flat_map(|(nrows, ncols)| {
        let entry = (0..nrows as u32, 0..ncols as u32, 1i32..100);
        proptest::collection::vec(entry, 0..150).prop_map(move |entries| {
            let mut coo = Coo::new(nrows, ncols).expect("small dims");
            for (r, c, v) in entries {
                coo.push(r, c, v as f32).expect("in bounds");
            }
            coo.canonicalize();
            Csr::from_coo(&coo)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pooled_farm_equals_unpooled(
        csr in csr_strategy(),
        tile_w in 1usize..=32,
        tile_h in 1usize..=16,
        partitions in 1usize..=4,
    ) {
        let csc = csr.to_csc();
        let cfg = FarmConfig::for_partitions(partitions);
        let pooled = convert_matrix_farm(&csc, tile_w, tile_h, cfg).expect("farm runs");
        // Run pooled twice so the second pass consumes recycled buffers —
        // the case where stale contents would actually surface.
        spmm_nmt::engine::mem::recycle_strips(pooled.strips);
        let pooled = convert_matrix_farm(&csc, tile_w, tile_h, cfg).expect("farm runs");
        let unpooled =
            convert_matrix_farm(&csc, tile_w, tile_h, cfg.without_pool()).expect("farm runs");
        prop_assert_eq!(&pooled.strips, &unpooled.strips);
        prop_assert_eq!(&pooled.stats, &unpooled.stats);
        prop_assert_eq!(&pooled.per_strip, &unpooled.per_strip);
        prop_assert_eq!(&pooled.per_partition, &unpooled.per_partition);
        prop_assert_eq!(pooled.switches, unpooled.switches);
        prop_assert_eq!(pooled.switch_bytes, unpooled.switch_bytes);
        prop_assert_eq!(&pooled.faults, &unpooled.faults);
    }

    #[test]
    fn pooled_farm_equals_unpooled_under_faults(
        csr in csr_strategy(),
        fault_seed in 0u64..1000,
    ) {
        let csc = csr.to_csc();
        // High rate so retries and partition dropouts actually fire.
        let plan = Some(FaultPlan::new(fault_seed, 300_000));
        let cfg = FarmConfig::for_partitions(4).with_fault(plan);
        let pooled = convert_matrix_farm(&csc, 8, 8, cfg);
        let unpooled = convert_matrix_farm(&csc, 8, 8, cfg.without_pool());
        match (pooled, unpooled) {
            (Ok(p), Ok(u)) => {
                prop_assert_eq!(&p.strips, &u.strips);
                prop_assert_eq!(&p.faults, &u.faults, "fault records diverged");
                prop_assert_eq!(&p.per_partition, &u.per_partition);
            }
            // Unrecoverable escalation must escalate identically.
            (Err(p), Err(u)) => prop_assert_eq!(p.to_string(), u.to_string()),
            other => prop_assert!(false, "pooled/unpooled disagreed on success: {:?}", other),
        }
    }
}

/// Re-point the global pool (the shim allows overriding, unlike real
/// rayon) and run `f` under exactly `n` workers.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .expect("shim pool re-points");
    let out = f();
    assert_eq!(rayon::current_num_threads(), n);
    out
}

fn quick_ledger() -> Ledger {
    let config = PlannerConfig::test_small();
    let audits: Vec<_> = SuiteSpec::quick(29)
        .build()
        .iter()
        .map(|(desc, a)| {
            let b = random_dense(a.shape().ncols, 8, desc.seed ^ 0x16);
            SpmmPlanner::new(config.clone())
                .explain(&desc.name, a, &b, &ObsContext::disabled())
                .expect("audit runs")
        })
        .collect();
    Ledger::from_audits(SuiteScale::Small, 29, 8, config.tile_w, &audits)
}

// One test function on purpose: `build_global` and the engine pools are
// process-wide state, and the harness runs sibling tests concurrently.
#[test]
fn pooled_runs_are_thread_count_invariant() {
    let desc = MatrixDesc::new(
        "pooled-rmat",
        160,
        GenKind::Rmat {
            a: 0.55,
            b: 0.15,
            c: 0.15,
            edge_factor: 6,
        },
        41,
    );
    let csc = generators::generate(&desc).to_csc();
    let cfg = FarmConfig::for_partitions(4);
    assert!(cfg.pool, "paper defaults must keep pooling on");

    // Pooled farm output: identical at 1 and 4 threads, with the pools
    // warm from prior runs on both legs.
    let serial = with_threads(1, || {
        let warm = convert_matrix_farm(&csc, 16, 16, cfg).expect("farm runs");
        spmm_nmt::engine::mem::recycle_strips(warm.strips);
        convert_matrix_farm(&csc, 16, 16, cfg).expect("farm runs")
    });
    let parallel = with_threads(4, || {
        let warm = convert_matrix_farm(&csc, 16, 16, cfg).expect("farm runs");
        spmm_nmt::engine::mem::recycle_strips(warm.strips);
        convert_matrix_farm(&csc, 16, 16, cfg).expect("farm runs")
    });
    assert_eq!(serial.strips, parallel.strips);
    assert_eq!(serial.stats, parallel.stats);
    assert_eq!(serial.per_partition, parallel.per_partition);

    // The ledger artifact stays byte-identical with pools enabled.
    let ledger_serial = with_threads(1, quick_ledger);
    let ledger_parallel = with_threads(4, quick_ledger);
    assert_eq!(ledger_serial.to_json(), ledger_parallel.to_json());
}
