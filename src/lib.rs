//! `spmm-nmt` — workspace facade crate.
//!
//! Re-exports the public APIs of every member crate of the near-memory
//! sparse-transform SpMM system so examples and integration tests can use a
//! single dependency. See the individual crates for full documentation:
//!
//! * [`formats`] — sparse matrix formats (COO/CSR/CSC/DCSR, tiled variants).
//! * [`matgen`] — deterministic synthetic matrix suite generators.
//! * [`sim`] — warp-level, cycle-approximate GPU timing simulator.
//! * [`engine`] — the near-memory CSC→tiled-DCSR transform engine.
//! * [`fault`] — deterministic fault-injection plans, sites, and records.
//! * [`kernels`] — SpMM kernels (all dataflows) + host references.
//! * [`model`] — analytical traffic model, entropy, SSF heuristic.
//! * [`obs`] — spans, metric registry, Chrome-trace/JSONL export.
//! * [`planner`] — the auto-tuned SpMM planner (core crate `nmt`).
//! * [`bench`] — experiment harness: suite sweeps, run ledger, gate.
//! * [`serve`] — SpMM-as-a-service broker: single-flight plan cache,
//!   admission control, deterministic replay ledger.

pub use nmt as planner;
pub use nmt_bench as bench;
pub use nmt_engine as engine;
pub use nmt_fault as fault;
pub use nmt_formats as formats;
pub use nmt_kernels as kernels;
pub use nmt_matgen as matgen;
pub use nmt_model as model;
pub use nmt_obs as obs;
pub use nmt_serve as serve;
pub use nmt_sim as sim;
