//! `nmt-cli` — command-line front end for the near-memory-transform SpMM
//! system: profile Matrix Market files, run the conversion engine, and
//! simulate auto-tuned SpMM.
//!
//! ```text
//! nmt-cli profile <file.mtx> [--tile N]
//! nmt-cli convert <file.mtx> [--tile N]
//! nmt-cli spmm    <file.mtx> [--k N] [--tile N] [--threads N] [--json]
//!                 [--trace-out <trace.json>] [--flame-out <folded.txt>]
//!                 [--metrics-json <metrics.json>]
//!                 [--fault-seed N [--fault-rate F]]
//! nmt-cli audit   <file.mtx> [--k N] [--tile N] [--threads N] [--json]
//!                 [--metrics-json <metrics.json>] [--fault-seed N [--fault-rate F]]
//! nmt-cli bench   [--scale small|medium|paper] [--threads N] [--out <BENCH.json>]
//!                 [--baseline <BENCH.json>] [--tol-speedup F] [--tol-accuracy F]
//!                 [--perf] [--perf-iters N] [--perf-warmup N] [--perf-margin F] [--alloc-margin F]
//!                 [--progress] [--fault-seed N [--fault-rate F]]
//!                 [--history <HISTORY.jsonl>] [--diag-dir <dir>]
//! nmt-cli serve   [--requests <trace.jsonl> | --synth N] [--threads N]
//!                 [--matrices N] [--tenants N] [--seed N] [--k N] [--tile N]
//!                 [--queue-depth N] [--quantum N] [--service-rate N]
//!                 [--cache-bytes N] [--stats] [--out <SERVE.json>]
//!                 [--baseline <SERVE.json>] [--trace-out <trace.jsonl>]
//!                 [--history <SERVE_HISTORY.jsonl>] [--diag-dir <dir>]
//! nmt-cli doctor  <nmt-diag-*.json>
//! nmt-cli diff    <ledger-A.json> <ledger-B.json> [--json]
//!                 [--diff-margin F] [--diff-slack-ns NS]
//! nmt-cli history <HISTORY.jsonl>
//! nmt-cli suite   [--scale small|medium|paper]
//! nmt-cli help
//! ```

use spmm_nmt::bench::{
    append_history, diff_ledgers, load_history, parse_scale, render_history,
    sweep_ledger_instrumented, BenchConfig, DiffOptions, GateTolerance, HistoryRecord, Ledger,
    PerfTolerance, ProgressReporter, EXPERIMENT_SEED,
};
use spmm_nmt::fault::FaultPlan;
use spmm_nmt::engine::{conversion_energy_pj, convert_matrix, ComparatorTree, EngineTiming};
use spmm_nmt::formats::{market, Csr, Dcsr, SparseMatrix, StorageSize, TiledDcsr};
use spmm_nmt::matgen::{random_dense, SuiteScale, SuiteSpec};
use spmm_nmt::model::ssf::SsfProfile;
use spmm_nmt::obs::{
    diagnostics_installed, install_diagnostics, write_bundle_now, write_chrome_trace,
    write_flamegraph, DiagnosticsBundle, ObsContext,
};
use spmm_nmt::planner::planner::{PlannerConfig, SpmmPlanner};
use spmm_nmt::planner::DEFAULT_SSF_THRESHOLD;
use std::process::ExitCode;

/// Count allocations per span: the obs layer's [`AllocScope`] reads the
/// thread-local counters this allocator maintains, so `--perf` ledgers
/// and span counters carry real `alloc.count` / `alloc.bytes` numbers.
/// The counters are gated on an atomic and cost two relaxed thread-local
/// adds when enabled, nothing else changes — allocation still goes
/// straight to the system allocator.
///
/// [`AllocScope`]: spmm_nmt::obs::AllocScope
#[global_allocator]
static ALLOC: spmm_nmt::obs::CountingAlloc = spmm_nmt::obs::CountingAlloc;

fn main() -> ExitCode {
    // Die quietly on a closed pipe (`nmt-cli suite | head`), like other
    // Unix CLI tools, instead of panicking in println!.
    #[cfg(unix)]
    unsafe {
        libc::signal(libc::SIGPIPE, libc::SIG_DFL);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let cmd = match it.next() {
        Some(c) => c.as_str(),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let rest: Vec<&String> = it.collect();
    let result = match cmd {
        "profile" => cmd_profile(&rest),
        "convert" => cmd_convert(&rest),
        "spmm" => cmd_spmm(&rest),
        "audit" => cmd_audit(&rest),
        "bench" => cmd_bench(&rest),
        "serve" => cmd_serve(&rest),
        "doctor" => cmd_doctor(&rest),
        "diff" => cmd_diff(&rest),
        "history" => cmd_history(&rest),
        "suite" => cmd_suite(&rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "nmt-cli — near-memory-transform SpMM toolkit

USAGE:
  nmt-cli profile <file.mtx> [--tile N]   SSF profile + algorithm recommendation
  nmt-cli convert <file.mtx> [--tile N]   run the CSC->tiled-DCSR engine model
  nmt-cli spmm    <file.mtx> [--k N] [--tile N] [--threads N] [--json]
                  [--trace-out <trace.json>] [--flame-out <folded.txt>]
                  [--metrics-json <metrics.json>]
                  [--fault-seed N [--fault-rate F]]
                                          simulate auto-tuned SpMM vs baseline;
                                          --trace-out writes a Chrome/Perfetto
                                          trace, --flame-out folded stacks
                                          (feed to inferno/flamegraph.pl),
                                          --metrics-json the metric
                                          registry snapshot
  nmt-cli audit   <file.mtx> [--k N] [--tile N] [--threads N] [--json]
                  [--metrics-json <metrics.json>] [--fault-seed N [--fault-rate F]]
                                          explain the planner's decision:
                                          SSF inputs, chosen vs oracle
                                          dataflow, and Table-1 predicted
                                          vs measured traffic per operand
  nmt-cli bench   [--scale small|medium|paper] [--threads N] [--out <BENCH.json>]
                  [--baseline <BENCH.json>] [--tol-speedup F] [--tol-accuracy F]
                  [--perf] [--perf-iters N] [--perf-warmup N] [--perf-margin F] [--alloc-margin F]
                  [--progress] [--fault-seed N [--fault-rate F]]
                                          sweep the synthetic suite into a
                                          schema-versioned run ledger; with
                                          --baseline, gate against it and
                                          fail on regression
                                          (--threads sizes the worker pool;
                                          default: RAYON_NUM_THREADS or the
                                          core count — results are identical
                                          at any thread count)
                                          --perf appends a measured wall-time
                                          section (per-matrix, per-phase
                                          medians + bootstrap CIs over
                                          --perf-iters runs after
                                          --perf-warmup discards); with
                                          --baseline it also gates timings,
                                          failing only when a median exceeds
                                          the baseline CI by --perf-margin
                                          (fraction, default 0.5); per-phase
                                          alloc.count/alloc.bytes gate the
                                          same way via --alloc-margin
                                          --progress draws a live done/total
                                          + ETA line on stderr (auto-off when
                                          stderr is not a TTY)
                                          --history appends one timeline
                                          record (commit, geomean, per-phase
                                          medians + CIs) to a JSONL file
                                          --diag-dir (or NMT_DIAG_DIR) arms
                                          crash diagnostics: a panic or gate
                                          failure writes an nmt-diag-*.json
                                          bundle there

  --fault-seed N / --fault-rate F (fraction, default 0.05) arm seeded
  deterministic fault injection: conversion-strip faults retry once then
  fall back per-matrix to the untiled C-stationary kernel (audited as
  degraded mode), memory faults perturb timing only. Same seed, same
  faults — at any thread count.
  nmt-cli serve   [--requests <trace.jsonl> | --synth N] [--threads N]
                  [--matrices N] [--tenants N] [--seed N] [--k N] [--tile N]
                  [--queue-depth N] [--quantum N] [--service-rate N]
                  [--cache-bytes N] [--stats] [--out <SERVE.json>]
                  [--baseline <SERVE.json>] [--trace-out <trace.jsonl>]
                  [--history <SERVE_HISTORY.jsonl>] [--diag-dir <dir>]
                                          replay an SpMM request trace
                                          through the service broker:
                                          single-flight plan cache,
                                          bounded admission queue, DRR
                                          tenant fairness. --requests
                                          replays a JSONL trace; --synth N
                                          generates a seeded N-request
                                          schedule over --matrices distinct
                                          matrices (and --trace-out saves
                                          it for exact replay elsewhere).
                                          The response ledger is byte-
                                          identical at any --threads;
                                          --baseline gates against a saved
                                          ledger and fails on any drift.
                                          --stats appends the schedule-
                                          dependent measurement section
                                          (cache hit/wait split, hit-vs-
                                          miss latency + alloc medians) —
                                          excluded from the gate either
                                          way. --history appends one
                                          summary row to a JSONL timeline
  nmt-cli doctor  <nmt-diag-*.json>       render a crash bundle as a
                                          human-readable post-mortem:
                                          failing site, strip/partition,
                                          thread, span stack, and the last
                                          flight-recorder events
  nmt-cli diff    <ledger-A.json> <ledger-B.json> [--json]
                  [--diff-margin F] [--diff-slack-ns NS]
                                          forensic ledger comparison:
                                          attribute geomean movement to
                                          matrices / dataflow classes /
                                          phases and flag wall-time deltas
                                          outside A's bootstrap CIs
  nmt-cli history <HISTORY.jsonl>         render the perf timeline and scan
                                          each series for change points
  nmt-cli suite   [--scale small|medium|paper]
                                          enumerate the synthetic suite
  nmt-cli help                            this message";

fn flag(rest: &[&String], name: &str) -> Option<String> {
    rest.iter()
        .position(|a| a.as_str() == name)
        .and_then(|i| rest.get(i + 1))
        .map(std::string::ToString::to_string)
}

fn parse_flag<T: std::str::FromStr>(rest: &[&String], name: &str, default: T) -> Result<T, String> {
    match flag(rest, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value {v:?} for {name}")),
    }
}

/// Positional (non-flag) arguments, in order: `--name value` pairs for
/// the listed value-taking flags are skipped whole, bare `--switch`es are
/// skipped alone.
fn positionals(rest: &[&String], value_flags: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let tok = rest[i].as_str();
        if tok.starts_with("--") {
            i += if value_flags.contains(&tok) { 2 } else { 1 };
            continue;
        }
        out.push(rest[i].clone());
        i += 1;
    }
    out
}

/// Parse `--fault-seed N` / `--fault-rate F` into an optional
/// [`FaultPlan`]. `--fault-rate` without `--fault-seed` is an error (a
/// wall-clock-seeded plan would break reproducibility); `--fault-seed`
/// alone defaults to a 5 % rate. The rate is a fraction in `[0, 1]`,
/// stored as parts-per-million.
fn parse_fault(rest: &[&String]) -> Result<Option<FaultPlan>, String> {
    let seed = match flag(rest, "--fault-seed") {
        None => {
            if flag(rest, "--fault-rate").is_some() {
                return Err("--fault-rate requires --fault-seed (faults must be seeded)".into());
            }
            return Ok(None);
        }
        Some(v) => v
            .parse::<u64>()
            .map_err(|_| format!("bad value {v:?} for --fault-seed"))?,
    };
    let rate: f64 = parse_flag(rest, "--fault-rate", 0.05)?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(format!("--fault-rate must be in 0.0..=1.0, got {rate}"));
    }
    Ok(Some(FaultPlan::from_rate(seed, rate)))
}

/// Apply `--threads N`: size the global rayon pool before any parallel
/// work runs. `0` (or omitting the flag) keeps the default — the
/// `RAYON_NUM_THREADS` environment variable if set, else the core count.
fn init_threads(rest: &[&String]) -> Result<(), String> {
    let threads: usize = parse_flag(rest, "--threads", 0)?;
    if threads > 0 {
        rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build_global()
            .map_err(|e| format!("cannot configure {threads}-thread pool: {e}"))?;
    }
    Ok(())
}

fn load(rest: &[&String]) -> Result<Csr, String> {
    let path = rest
        .iter()
        .find(|a| !a.starts_with("--") && !a.chars().all(|c| c.is_ascii_digit()))
        .ok_or("missing <file.mtx> argument")?;
    let (coo, header) = market::read_market_file(path).map_err(|e| e.to_string())?;
    eprintln!("loaded {path}: {:?}", header);
    Ok(Csr::from_coo(&coo))
}

fn cmd_profile(rest: &[&String]) -> Result<(), String> {
    let tile: usize = parse_flag(rest, "--tile", 64)?;
    if tile == 0 || tile > 64 {
        return Err("--tile must be in 1..=64 (the engine is 64 lanes wide)".into());
    }
    let a = load(rest)?;
    let p = SsfProfile::compute(&a, tile);
    println!("shape            : {}", a.shape());
    println!(
        "nnz              : {} (density {:.5}%)",
        a.nnz(),
        a.density() * 100.0
    );
    println!("non-empty rows   : {:.1}%", p.nnzrow_frac * 100.0);
    println!("mean strip occ.  : {:.2}%", p.mean_strip_frac * 100.0);
    println!("H_norm           : {:.4}", p.h_norm);
    println!("SSF              : {:.4e}", p.ssf);
    let choice = spmm_nmt::model::classify(p.ssf, &DEFAULT_SSF_THRESHOLD);
    println!(
        "recommendation   : {choice:?} (SSF_th = {:.3e})",
        DEFAULT_SSF_THRESHOLD.threshold
    );
    // Storage comparison the user would care about.
    let dcsr = Dcsr::from_csr(&a);
    let tdcsr = TiledDcsr::from_csr(&a, tile, tile).map_err(|e| e.to_string())?;
    println!(
        "storage          : CSR {} B | DCSR {} B | tiled DCSR {} B ({:.2}x CSR)",
        a.storage_bytes(),
        dcsr.storage_bytes(),
        tdcsr.storage_bytes(),
        tdcsr.storage_bytes() as f64 / a.storage_bytes() as f64
    );
    Ok(())
}

fn cmd_convert(rest: &[&String]) -> Result<(), String> {
    let tile: usize = parse_flag(rest, "--tile", 64)?;
    if tile == 0 || tile > 64 {
        return Err("--tile must be in 1..=64 (the engine is 64 lanes wide)".into());
    }
    let a = load(rest)?;
    let csc = a.to_csc();
    let (tiles, stats) = convert_matrix(&csc, tile, tile);
    let tree = ComparatorTree::new(tile)
        .map_err(|e| e.to_string())?
        .structure();
    let timing = EngineTiming::fp32(13.6, &tree);
    let per_strip_ns = timing.conversion_time_ns(&stats) / tiles.len().max(1) as f64;
    println!("strips           : {}", tiles.len());
    println!("tiles            : {}", stats.tiles);
    println!("elements         : {}", stats.elements);
    println!("DCSR rows        : {}", stats.rows_emitted);
    println!("comparator passes: {}", stats.comparator_passes);
    println!("engine input     : {} B (CSC stream)", stats.input_bytes);
    println!(
        "engine output    : {} B (tiled DCSR over Xbar)",
        stats.output_bytes
    );
    println!(
        "engine time      : {:.1} ns/strip sequential, {:.1} ns across {} parallel units",
        per_strip_ns,
        timing.conversion_time_ns(&stats) / 64.0,
        64
    );
    println!(
        "energy           : {:.1} nJ",
        conversion_energy_pj(&stats, false) / 1e3
    );
    Ok(())
}

fn cmd_spmm(rest: &[&String]) -> Result<(), String> {
    init_threads(rest)?;
    let k: usize = parse_flag(rest, "--k", 64)?;
    let tile: usize = parse_flag(rest, "--tile", 64)?;
    if tile == 0 || tile > 64 {
        return Err("--tile must be in 1..=64 (the engine is 64 lanes wide)".into());
    }
    let trace_out = flag(rest, "--trace-out");
    let flame_out = flag(rest, "--flame-out");
    let metrics_json = flag(rest, "--metrics-json");
    let fault = parse_fault(rest)?;
    let a = load(rest)?;
    let b = random_dense(a.shape().ncols, k, 0xB);
    let mut config = PlannerConfig::paper_default();
    config.tile_w = tile;
    config.tile_h = tile;
    config.fault = fault;
    // Observability is free when nobody asked for an artifact.
    let observing = trace_out.is_some() || flame_out.is_some() || metrics_json.is_some();
    let obs = if observing {
        ObsContext::enabled()
    } else {
        ObsContext::disabled()
    };
    let report = SpmmPlanner::new(config)
        .execute_with_obs(&a, &b, &obs)
        .map_err(|e| e.to_string())?;
    if let Some(path) = &trace_out {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create trace file {path}: {e}"))?;
        write_chrome_trace(std::io::BufWriter::new(file), &obs.recorder.snapshot())
            .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
        eprintln!("wrote Chrome trace to {path} (open in Perfetto or chrome://tracing)");
    }
    if let Some(path) = &flame_out {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create flamegraph file {path}: {e}"))?;
        write_flamegraph(std::io::BufWriter::new(file), &obs.recorder.snapshot())
            .map_err(|e| format!("cannot write flamegraph to {path}: {e}"))?;
        eprintln!("wrote folded stacks to {path} (render with inferno or flamegraph.pl)");
    }
    if let Some(path) = &metrics_json {
        let json = obs.metrics.snapshot().to_json();
        std::fs::write(path, json).map_err(|e| format!("cannot write metrics to {path}: {e}"))?;
        eprintln!("wrote metrics snapshot to {path}");
    }
    if rest.iter().any(|x| x.as_str() == "--json") {
        use spmm_nmt::planner::RunRecord;
        let mut record = RunRecord::from_report("cli", a.shape().nrows, a.nnz(), &report);
        if observing {
            record = record.with_metrics(&obs.metrics.snapshot());
        }
        println!("{}", record.to_json());
        return Ok(());
    }
    println!("SSF              : {:.4e}", report.profile.ssf);
    println!("algorithm        : {:?}", report.algorithm);
    if let Some(fault) = &report.fault {
        println!("degraded mode    : {fault}");
    }
    println!(
        "baseline         : {:.2} us",
        report.baseline_stats.total_ns / 1e3
    );
    println!("chosen           : {:.2} us", report.stats.total_ns / 1e3);
    println!("speedup          : {:.2}x", report.speedup);
    if let Some(e) = &report.engine {
        println!(
            "engine           : {} elements -> {} rows, {:.1} nJ",
            e.elements,
            e.rows_emitted,
            report.engine_energy_pj / 1e3
        );
    }
    let s = report.stats.stall_breakdown();
    println!(
        "stalls           : memory {:.0}% / sm {:.0}% / other {:.0}%",
        s.memory * 100.0,
        s.sm * 100.0,
        s.other * 100.0
    );
    Ok(())
}

fn cmd_audit(rest: &[&String]) -> Result<(), String> {
    init_threads(rest)?;
    let k: usize = parse_flag(rest, "--k", 64)?;
    let tile: usize = parse_flag(rest, "--tile", 64)?;
    if tile == 0 || tile > 64 {
        return Err("--tile must be in 1..=64 (the engine is 64 lanes wide)".into());
    }
    let metrics_json = flag(rest, "--metrics-json");
    let fault = parse_fault(rest)?;
    let a = load(rest)?;
    let b = random_dense(a.shape().ncols, k, 0xB);
    let mut config = PlannerConfig::paper_default();
    config.tile_w = tile;
    config.tile_h = tile;
    config.fault = fault;
    // The audit always observes: its whole point is the metrics.
    let obs = ObsContext::enabled();
    let audit = SpmmPlanner::new(config)
        .explain("cli", &a, &b, &obs)
        .map_err(|e| e.to_string())?;
    if let Some(path) = &metrics_json {
        let json = obs.metrics.snapshot().to_json();
        std::fs::write(path, json).map_err(|e| format!("cannot write metrics to {path}: {e}"))?;
        eprintln!("wrote metrics snapshot to {path}");
    }
    if rest.iter().any(|x| x.as_str() == "--json") {
        println!("{}", audit.to_json());
    } else {
        print!("{}", audit.render_text());
    }
    Ok(())
}

fn cmd_bench(rest: &[&String]) -> Result<(), String> {
    init_threads(rest)?;
    let scale = match flag(rest, "--scale") {
        None => SuiteScale::Small,
        Some(v) => parse_scale(&v)?,
    };
    let tol = GateTolerance {
        speedup_frac: parse_flag(rest, "--tol-speedup", 0.05)?,
        accuracy_abs: parse_flag(rest, "--tol-accuracy", 0.05)?,
    };
    let baseline_path = flag(rest, "--baseline");
    let out = flag(rest, "--out");
    let fault = parse_fault(rest)?;
    let perf_requested = rest.iter().any(|x| x.as_str() == "--perf");
    let perf_tol = PerfTolerance {
        margin_frac: parse_flag(rest, "--perf-margin", PerfTolerance::default().margin_frac)?,
        alloc_margin_frac: parse_flag(
            rest,
            "--alloc-margin",
            PerfTolerance::default().alloc_margin_frac,
        )?,
        ..PerfTolerance::default()
    };
    let perf_cfg = if perf_requested {
        let mut cfg = BenchConfig::default();
        cfg.iters = parse_flag(rest, "--perf-iters", cfg.iters)?;
        cfg.warmup = parse_flag(rest, "--perf-warmup", cfg.warmup)?;
        if cfg.iters == 0 {
            return Err("--perf-iters must be at least 1".into());
        }
        Some(cfg)
    } else {
        for f in ["--perf-iters", "--perf-warmup"] {
            if flag(rest, f).is_some() {
                return Err(format!("{f} requires --perf"));
            }
        }
        None
    };
    // Crash diagnostics: --diag-dir (or NMT_DIAG_DIR) arms the panic
    // hook; a worker panic mid-sweep — or a gate failure below — leaves
    // an nmt-diag-*.json bundle for `nmt-cli doctor`.
    let diag_dir = flag(rest, "--diag-dir").or_else(|| std::env::var("NMT_DIAG_DIR").ok());
    if let Some(dir) = &diag_dir {
        install_diagnostics(
            dir.as_str(),
            &ObsContext::disabled(),
            fault.map(|p| p.seed),
            fault.map(|p| p.rate_ppm),
        );
        eprintln!("crash diagnostics armed: bundles land in {dir}");
    }
    let progress = ProgressReporter::new(
        SuiteSpec::new(scale, EXPERIMENT_SEED).descriptors().len(),
        rest.iter().any(|x| x.as_str() == "--progress"),
    );
    match fault {
        Some(plan) => eprintln!(
            "sweeping {scale:?} suite with fault injection (seed {:#x}, rate {:.4})...",
            plan.seed,
            plan.rate()
        ),
        None => eprintln!("sweeping {scale:?} suite through the audited planner..."),
    }
    let ledger = sweep_ledger_instrumented(scale, fault, perf_cfg.as_ref(), Some(&progress))
        .map_err(|e| e.to_string())?;
    progress.finish();
    println!("{}", ledger.render_summary());
    if let Some(path) = &out {
        std::fs::write(path, ledger.to_json())
            .map_err(|e| format!("cannot write ledger to {path}: {e}"))?;
        eprintln!("wrote run ledger to {path}");
    }
    if let Some(hist) = flag(rest, "--history") {
        // Commit id comes from the environment (CI pins GITHUB_SHA), not
        // from running git — the ledger stack takes no wall-clock or VCS
        // dependencies.
        let commit = std::env::var("NMT_COMMIT")
            .or_else(|_| std::env::var("GITHUB_SHA"))
            .unwrap_or_else(|_| "unknown".to_string());
        let record = HistoryRecord::from_ledger(&ledger, &commit);
        let run = append_history(std::path::Path::new(&hist), record)?;
        eprintln!("history: appended run {run} to {hist}");
    }
    if let Some(path) = &baseline_path {
        let json = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
        let baseline = Ledger::from_json(&json)?;
        match ledger.gate(&baseline, tol) {
            Ok(notes) => {
                for note in notes {
                    println!("gate: {note}");
                }
                println!("gate: PASS vs {path}");
            }
            Err(regressions) => {
                for r in &regressions {
                    eprintln!("gate: REGRESSION: {r}");
                }
                write_failure_bundle(&format!("bench gate failure vs {path}"));
                return Err(format!(
                    "{} regression(s) vs baseline {path}",
                    regressions.len()
                ));
            }
        }
        // The wall-time gate runs alongside the functional one; it
        // self-skips (with a note) when either side has no perf section.
        match ledger.perf_gate(&baseline, perf_tol) {
            Ok(notes) => {
                for note in notes {
                    println!("perf gate: {note}");
                }
                println!("perf gate: PASS vs {path}");
            }
            Err(regressions) => {
                for r in &regressions {
                    eprintln!("perf gate: REGRESSION: {r}");
                }
                write_failure_bundle(&format!("bench perf gate failure vs {path}"));
                return Err(format!(
                    "{} perf regression(s) vs baseline {path}",
                    regressions.len()
                ));
            }
        }
    }
    Ok(())
}

/// `nmt-cli serve`: replay an SpMM request trace through the service
/// broker (single-flight plan cache + admission control) and emit the
/// deterministic response ledger.
fn cmd_serve(rest: &[&String]) -> Result<(), String> {
    use spmm_nmt::bench::{append_serve_history, ServeRunRow};
    use spmm_nmt::serve::{
        parse_jsonl, serve_trace, synth_trace, to_jsonl, BrokerConfig, ServeLedger, SynthSpec,
    };

    init_threads(rest)?;
    let with_stats = rest.iter().any(|x| x.as_str() == "--stats");
    if with_stats {
        // Hit-vs-miss allocation medians need live thread-local counters.
        spmm_nmt::obs::alloc::enable_counting(true);
    }
    // Same contract as `bench`: --diag-dir (or NMT_DIAG_DIR) arms the
    // panic hook so a replay crash or gate failure leaves a bundle.
    if let Some(dir) = flag(rest, "--diag-dir").or_else(|| std::env::var("NMT_DIAG_DIR").ok()) {
        install_diagnostics(dir.as_str(), &ObsContext::disabled(), None, None);
        eprintln!("crash diagnostics armed: bundles land in {dir}");
    }

    let trace = match (flag(rest, "--requests"), flag(rest, "--synth")) {
        (Some(_), Some(_)) => {
            return Err("--requests and --synth are mutually exclusive".into())
        }
        (Some(path), None) => {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("cannot read trace {path}: {e}"))?;
            parse_jsonl(&text)?
        }
        (None, synth) => {
            let mut spec = SynthSpec::quick(parse_flag(rest, "--seed", 0x5E12_u64)?);
            if let Some(n) = synth {
                spec.requests = n
                    .parse()
                    .map_err(|_| format!("bad value {n:?} for --synth"))?;
            }
            spec.unique_matrices = parse_flag(rest, "--matrices", spec.unique_matrices)?;
            spec.tenants = parse_flag(rest, "--tenants", spec.tenants)?;
            spec.n = parse_flag(rest, "--n", spec.n)?;
            spec.k = parse_flag(rest, "--k", spec.k)?;
            if spec.requests == 0 || spec.unique_matrices == 0 || spec.tenants == 0 {
                return Err("--synth, --matrices and --tenants must all be ≥ 1".into());
            }
            synth_trace(&spec)
        }
    };
    if let Some(path) = flag(rest, "--trace-out") {
        std::fs::write(&path, to_jsonl(&trace))
            .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
        eprintln!("wrote {} requests to {path}", trace.len());
    }

    let tile: usize = parse_flag(rest, "--tile", 16)?;
    if tile == 0 || tile > 64 {
        return Err("--tile must be in 1..=64 (the engine is 64 lanes wide)".into());
    }
    let mut config = BrokerConfig::test_small();
    config.planner.tile_w = tile;
    config.planner.tile_h = tile;
    config.queue_depth = parse_flag(rest, "--queue-depth", config.queue_depth)?;
    config.quantum = parse_flag(rest, "--quantum", config.quantum)?;
    config.service_rate = parse_flag(rest, "--service-rate", config.service_rate)?;
    config.cache_budget_bytes = parse_flag(rest, "--cache-bytes", config.cache_budget_bytes)?;

    let obs = ObsContext::enabled();
    let ledger = serve_trace(&trace, &config, &obs, with_stats).map_err(|e| e.to_string())?;
    print!("{}", ledger.render_summary());

    if let Some(path) = flag(rest, "--out") {
        std::fs::write(&path, ledger.to_json())
            .map_err(|e| format!("cannot write serve ledger to {path}: {e}"))?;
        eprintln!("wrote serve ledger to {path}");
    }
    if let Some(hist) = flag(rest, "--history") {
        let commit = std::env::var("NMT_COMMIT")
            .or_else(|_| std::env::var("GITHUB_SHA"))
            .unwrap_or_else(|_| "unknown".to_string());
        let c = &ledger.counts;
        let s = ledger.stats.as_ref();
        let row = ServeRunRow {
            run: 0,
            commit,
            requests: c.requests,
            admitted: c.admitted,
            rejected: c.rejected_queue_full + c.rejected_malformed,
            unique_plans: c.unique_plans,
            cached_responses: c.cached_responses,
            cache_hits: s.map_or(0, |s| s.cache_hits),
            cache_evictions: s.map_or(0, |s| s.cache_evictions),
            hit_p50_ns: s.map_or(0, |s| s.hit_p50_ns),
            miss_p50_ns: s.map_or(0, |s| s.miss_p50_ns),
        };
        let run = append_serve_history(std::path::Path::new(&hist), row)?;
        eprintln!("serve history: appended run {run} to {hist}");
    }
    if let Some(path) = flag(rest, "--baseline") {
        let json = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read baseline {path}: {e}"))?;
        let baseline = ServeLedger::from_json(&json)?;
        match ledger.gate(&baseline) {
            Ok(()) => println!("serve gate: PASS vs {path}"),
            Err(diffs) => {
                for d in &diffs {
                    eprintln!("serve gate: DIVERGENCE: {d}");
                }
                write_failure_bundle(&format!("serve gate failure vs {path}"));
                return Err(format!("{} divergence(s) vs baseline {path}", diffs.len()));
            }
        }
    }
    Ok(())
}

/// When `--diag-dir` armed diagnostics, capture a bundle for a
/// non-panic failure (gate regressions) so CI uploads the same artifact
/// either way. A no-op when diagnostics are not installed.
fn write_failure_bundle(reason: &str) {
    if diagnostics_installed() {
        if let Some(p) = write_bundle_now(reason) {
            eprintln!("wrote diagnostics bundle to {}", p.display());
        }
    }
}

/// `nmt-cli doctor <bundle>`: render a crash diagnostics bundle as a
/// human-readable post-mortem.
fn cmd_doctor(rest: &[&String]) -> Result<(), String> {
    let args = positionals(rest, &[]);
    let path = args.first().ok_or("missing <nmt-diag-*.json> argument")?;
    let json = std::fs::read_to_string(path.as_str())
        .map_err(|e| format!("cannot read bundle {path}: {e}"))?;
    let bundle = DiagnosticsBundle::from_json(&json)?;
    print!("{}", bundle.render_postmortem());
    Ok(())
}

/// `nmt-cli diff <A> <B>`: forensic comparison of two run ledgers.
fn cmd_diff(rest: &[&String]) -> Result<(), String> {
    let args = positionals(rest, &["--diff-margin", "--diff-slack-ns"]);
    let [a_path, b_path] = args.as_slice() else {
        return Err("diff needs exactly two ledger paths: <ledger-A> <ledger-B>".into());
    };
    let read = |path: &String| -> Result<Ledger, String> {
        let json = std::fs::read_to_string(path.as_str())
            .map_err(|e| format!("cannot read ledger {path}: {e}"))?;
        Ledger::from_json(&json).map_err(|e| format!("{path}: {e}"))
    };
    let a = read(a_path)?;
    let b = read(b_path)?;
    let opts = DiffOptions {
        margin_frac: parse_flag(rest, "--diff-margin", 0.0)?,
        abs_slack_ns: parse_flag(rest, "--diff-slack-ns", 0.0)?,
    };
    let report = diff_ledgers(&a, &b, opts)?;
    if rest.iter().any(|x| x.as_str() == "--json") {
        println!("{}", report.to_json());
    } else {
        println!("diff: A = {a_path}, B = {b_path}");
        print!("{}", report.render_text());
    }
    Ok(())
}

/// `nmt-cli history <HISTORY.jsonl>`: render the perf timeline and its
/// change points.
fn cmd_history(rest: &[&String]) -> Result<(), String> {
    use spmm_nmt::bench::{load_serve_history, render_serve_history};
    let args = positionals(rest, &[]);
    let path = args.first().ok_or("missing <HISTORY.jsonl> argument")?;
    let records = load_history(std::path::Path::new(path.as_str()))?;
    if records.is_empty() {
        // Not a perf timeline — it may be a serve replay history
        // (`serve --history`), whose rows the perf loader skips.
        let serve = load_serve_history(std::path::Path::new(path.as_str()))?;
        if !serve.is_empty() {
            print!("{}", render_serve_history(&serve));
            return Ok(());
        }
    }
    print!("{}", render_history(&records));
    Ok(())
}

fn cmd_suite(rest: &[&String]) -> Result<(), String> {
    let scale = match flag(rest, "--scale").as_deref() {
        None | Some("small") => SuiteScale::Small,
        Some("medium") => SuiteScale::Medium,
        Some("paper") => SuiteScale::Paper,
        Some(other) => return Err(format!("unknown scale {other:?}")),
    };
    let spec = SuiteSpec::new(scale, 0x5C19);
    let descs = spec.descriptors();
    println!("{} matrices at {scale:?} scale:", descs.len());
    for d in descs {
        println!("  {} (n = {}, seed = {:#x})", d.name, d.n, d.seed);
    }
    Ok(())
}
