//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` implemented with raw `proc_macro` token
//! parsing (no syn/quote, which are unavailable offline).
//!
//! Supported input shapes — exactly what this workspace uses:
//! * structs with named fields (no generics, no `#[serde(...)]` attrs),
//! * enums whose variants are all unit variants.
//!
//! The generated impls target the shim `serde`'s value-tree model:
//! `Serialize::to_value(&self) -> serde::Value` and
//! `Deserialize::from_value(&serde::Value) -> Result<Self, serde::DeError>`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named struct fields, in declaration order.
    Struct(Vec<String>),
    /// Unit enum variants, in declaration order.
    Enum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    let mut keyword = None;
    while let Some(tt) = iter.next() {
        match tt {
            // `#[attr]` / doc comments: skip the '#' and the bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    keyword = Some(s);
                    break;
                }
                // visibility / `crate` / etc.: skip (a following
                // `(crate)` group is skipped by the Group arm below).
            }
            _ => {}
        }
    }
    let keyword = keyword.expect("derive input must be a struct or enum");
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name after `{keyword}`, got {other:?}"),
    };
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("shim serde derive does not support generic type `{name}`")
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("shim serde derive does not support tuple struct `{name}`")
            }
            Some(_) => continue,
            None => panic!("`{name}` has no braced body (unit structs unsupported)"),
        }
    };
    let shape = if keyword == "struct" {
        Shape::Struct(parse_named_fields(body, &name))
    } else {
        Shape::Enum(parse_unit_variants(body, &name))
    };
    Input { name, shape }
}

fn parse_named_fields(ts: TokenStream, ty: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = ts.into_iter().peekable();
    loop {
        // Skip attributes / doc comments.
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        // Skip visibility (`pub`, `pub(crate)`, ...).
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(
                iter.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                iter.next();
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            None => break,
            other => panic!("unexpected token in fields of `{ty}`: {other:?}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field in `{ty}`, got {other:?}"),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0
        // (nested groups arrive as single trees, so only `<`/`>` nest).
        let mut depth = 0i64;
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => break,
                Some(_) => {}
                None => break,
            }
        }
    }
    fields
}

fn parse_unit_variants(ts: TokenStream, ty: &str) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = ts.into_iter().peekable();
    loop {
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            None => break,
            other => panic!("unexpected token in variants of `{ty}`: {other:?}"),
        }
        // Only unit variants are supported; anything before the comma that
        // isn't a discriminant expression is an error.
        loop {
            match iter.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(TokenTree::Group(g))
                    if g.delimiter() != Delimiter::Bracket =>
                {
                    panic!(
                        "shim serde derive supports only unit variants; \
                         `{ty}::{}` has data",
                        variants.last().unwrap()
                    )
                }
                Some(_) => {}
                None => break,
            }
        }
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Input { name, shape } = parse_input(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{pairs}])")
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!("::serde::Value::Str(match self {{ {arms} }}.to_string())")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Input { name, shape } = parse_input(input);
    let body = match &shape {
        Shape::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(__v.field(\"{f}\"))\
                             .map_err(|e| e.in_field(\"{f}\"))?,"
                    )
                })
                .collect();
            format!("::core::result::Result::Ok({name} {{ {inits} }})")
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("::core::option::Option::Some(\"{v}\") => ::core::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "match __v.as_str() {{ {arms} other => ::core::result::Result::Err(\
                     ::serde::DeError::custom(format!(\
                         \"unknown variant {{:?}} for {name}\", other))) }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::core::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
