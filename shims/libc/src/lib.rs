//! Offline shim for the `libc` crate: only the symbols this workspace
//! uses (`signal(SIGPIPE, SIG_DFL)` in the CLI entry point).

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type sighandler_t = usize;

/// `SIGPIPE` on Linux and most Unixes.
pub const SIGPIPE: c_int = 13;
/// Default signal disposition.
pub const SIG_DFL: sighandler_t = 0;

extern "C" {
    /// POSIX `signal(2)`, linked from the platform libc.
    pub fn signal(signum: c_int, handler: sighandler_t) -> sighandler_t;
}
