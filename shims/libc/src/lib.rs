//! Offline shim for the `libc` crate: only the symbols this workspace
//! uses (`signal(SIGPIPE, SIG_DFL)` in the CLI entry point, and
//! `isatty(STDERR_FILENO)` for the bench progress reporter's TTY
//! detection).

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type sighandler_t = usize;

/// `SIGPIPE` on Linux and most Unixes.
pub const SIGPIPE: c_int = 13;
/// Default signal disposition.
pub const SIG_DFL: sighandler_t = 0;
/// File descriptor of standard error.
pub const STDERR_FILENO: c_int = 2;

extern "C" {
    /// POSIX `signal(2)`, linked from the platform libc.
    pub fn signal(signum: c_int, handler: sighandler_t) -> sighandler_t;
    /// POSIX `isatty(3)`: nonzero when `fd` refers to a terminal.
    pub fn isatty(fd: c_int) -> c_int;
}
