//! Offline shim for `serde_json`: text parsing and printing for the shim
//! `serde`'s [`Value`] tree, plus `from_str`/`to_string`/`to_string_pretty`
//! over any `Serialize`/`Deserialize` type.

pub use serde::Value;

use serde::{Deserialize, Serialize};

/// Parse or conversion error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serialize `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` as human-readable JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parse JSON text into any deserializable type (including [`Value`]).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

// ---- printer ----------------------------------------------------------

fn write_value(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that
                // round-trips, and always includes a `.` or exponent.
                out.push_str(&format!("{f:?}"));
            } else {
                // Match upstream serde_json: non-finite floats print null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            write_seq(items.iter(), indent, level, out, '[', ']', |item, lvl, o| {
                write_value(item, indent, lvl, o);
            });
        }
        Value::Object(members) => {
            write_seq(
                members.iter(),
                indent,
                level,
                out,
                '{',
                '}',
                |(k, item), lvl, o| {
                    write_string(k, o);
                    o.push(':');
                    if indent.is_some() {
                        o.push(' ');
                    }
                    write_value(item, indent, lvl, o);
                },
            );
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    items: I,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
    open: char,
    close: char,
    mut write_item: impl FnMut(I::Item, usize, &mut String),
) {
    out.push(open);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (level + 1)));
        }
        write_item(item, level + 1, out);
    }
    if !empty {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * level));
        }
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.error("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                // Multi-byte UTF-8: copy the raw bytes through.
                b => {
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = if b >= 0xF0 {
                            4
                        } else if b >= 0xE0 {
                            3
                        } else {
                            2
                        };
                        let end = start + len;
                        let slice = self
                            .bytes
                            .get(start..end)
                            .ok_or_else(|| self.error("truncated UTF-8"))?;
                        out.push_str(
                            std::str::from_utf8(slice)
                                .map_err(|_| self.error("invalid UTF-8"))?,
                        );
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let s = std::str::from_utf8(s).map_err(|_| self.error("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.error("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| self.error("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| self.error("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a \"b\"\n".into())),
            ("count".into(), Value::U64(3)),
            ("neg".into(), Value::I64(-7)),
            ("ratio".into(), Value::F64(2.5)),
            (
                "items".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v, "failed for {text}");
        }
    }

    #[test]
    fn floats_keep_distinction_from_ints() {
        let text = to_string(&Value::F64(3.0)).unwrap();
        assert_eq!(text, "3.0");
        assert_eq!(from_str::<Value>("3.0").unwrap(), Value::F64(3.0));
        assert_eq!(from_str::<Value>("3").unwrap(), Value::U64(3));
        assert_eq!(from_str::<Value>("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(to_string(&Value::F64(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let v = Value::Str("héllo ☃ \u{1F600}".into());
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Value>(&text).unwrap(), v);
        // Escaped input form.
        assert_eq!(
            from_str::<Value>(r#""😀""#).unwrap(),
            Value::Str("\u{1F600}".into())
        );
    }
}
