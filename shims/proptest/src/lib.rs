//! Offline shim for `proptest`: the strategy combinators and `proptest!`
//! runner macro used by this workspace's property tests.
//!
//! Differences from upstream, by design: cases are generated from a
//! deterministic per-test RNG, failures report the case index and message
//! but are **not shrunk**, and there is no failure persistence. The
//! properties themselves are unchanged.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random source handed to strategies (wraps the workspace RNG shim).
pub type TestRng = StdRng;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, f32, f64);

macro_rules! range_incl_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_incl_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                (lo + (rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

use rand::RngCore;

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Uniform boolean strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// `proptest::bool::ANY` — a fair coin.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random()
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Acceptable size arguments to [`vec`]: a fixed size or a range.
    pub trait IntoSizeRange {
        /// Resolve to `(min, max)` inclusive bounds.
        fn bounds(&self) -> (usize, usize);
    }
    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }
    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }
    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.min..=self.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `Option<T>` (`None` ~25% of the time, matching
    /// upstream's default weighting).
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of(element)`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.random_bool(0.25) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    /// Why a test case failed (or was rejected).
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property did not hold.
        Fail(String),
        /// The input was rejected (unused by this shim, kept for parity).
        Reject(String),
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Runner configuration (`cases` is the only knob this shim reads).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Run `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// Drive one property: `cases` deterministic random inputs, panicking with
/// the case index on the first failure. Called by the `proptest!` macro.
pub fn run_prop_test(
    config: ProptestConfig,
    file: &str,
    line: u32,
    mut case: impl FnMut(&mut TestRng) -> Result<(), test_runner::TestCaseError>,
) {
    // Stable per-test seed: FNV-1a over the call site, so adding tests
    // elsewhere does not perturb this test's inputs.
    let mut seed: u64 = 0xcbf29ce484222325;
    for b in file.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
    }
    seed = (seed ^ line as u64).wrapping_mul(0x100000001b3);
    for i in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(seed.wrapping_add(i as u64));
        if let Err(e) = case(&mut rng) {
            panic!("proptest case {i}/{} failed at {file}:{line}: {e}", config.cases);
        }
    }
}

/// Property-test declaration macro: each `fn name(pat in strategy, ...)`
/// becomes a `#[test]` running [`run_prop_test`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal: expand each property fn. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_prop_test($cfg, file!(), line!(), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let mut __case = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, fmt, ...)`: fail the current
/// case (with message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` / `prop_assert_eq!(a, b, fmt, ...)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$a, &$b);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (`{:?}` != `{:?}`)", format!($($fmt)*), __l, __r),
            ));
        }
    }};
}

pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u32..10, 5usize..=9), v in crate::collection::vec(0i32..100, 3..6)) {
            prop_assert!(a < 10);
            prop_assert!((5..=9).contains(&b), "b = {}", b);
            prop_assert!(v.len() >= 3 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (0..100).contains(&x)));
        }

        #[test]
        fn flat_map_and_option(len in 1usize..8) {
            let strat = crate::collection::vec(crate::option::of(0u32..5), len);
            // Re-generate inside the case to exercise prop_map/flat_map.
            let doubled = (0u32..4).prop_map(|x| x * 2);
            let mut r: crate::TestRng = rand::SeedableRng::seed_from_u64(1);
            prop_assert!(doubled.generate(&mut r) % 2 == 0);
            prop_assert!(strat.generate(&mut r).len() == len);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_reports_case() {
        crate::run_prop_test(ProptestConfig::with_cases(5), file!(), line!(), |_rng| {
            Err(crate::test_runner::TestCaseError::fail("nope"))
        });
    }
}
