//! The token-passing scheduler and depth-first interleaving explorer.
//!
//! One global [`State`] describes the execution in flight: per-thread
//! status, who holds the token (`current`), the decision prefix being
//! replayed, and the decision log being recorded. Model threads call
//! [`point`] / [`block_on`] / [`join_wait`] at synchronization
//! operations; each call picks the next thread to run under the
//! preemption budget and parks the caller until the token comes back.
//!
//! Only one `model()` runs at a time (`MODEL_LOCK`), so a process-global
//! scheduler is safe even under a parallel test harness.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Blocked until the resource (a mutex, by address) is released.
    BlockedOn(usize),
    /// Blocked until the target thread finishes.
    Joining(usize),
    Finished,
}

/// One scheduling decision: (index chosen into the allowed set, size of
/// the allowed set). Points with arity 1 never branch.
type Decision = (usize, usize);

struct State {
    /// An execution is in flight (model threads exist).
    active: bool,
    threads: Vec<Status>,
    /// The thread holding the token. Exactly one model thread runs at a
    /// time; everyone else parks on `CV`.
    current: usize,
    /// All threads finished.
    done: bool,
    /// Deadlock (or other scheduler-detected failure) message.
    failed: Option<String>,
    /// Decision indices to replay from the previous execution.
    prefix: Vec<usize>,
    /// Decisions taken in this execution (replayed + fresh).
    decisions: Vec<Decision>,
    pos: usize,
    preemptions: usize,
    max_preemptions: usize,
}

impl State {
    const fn idle() -> Self {
        State {
            active: false,
            threads: Vec::new(),
            current: 0,
            done: false,
            failed: None,
            prefix: Vec::new(),
            decisions: Vec::new(),
            pos: 0,
            preemptions: 0,
            max_preemptions: 0,
        }
    }
}

static STATE: Mutex<State> = Mutex::new(State::idle());
static CV: Condvar = Condvar::new();
/// Serializes whole `model()` calls: the scheduler state is global.
static MODEL_LOCK: Mutex<()> = Mutex::new(());

thread_local! {
    /// This OS thread's model-thread id, when it belongs to an execution.
    static CUR_ID: Cell<Option<usize>> = const { Cell::new(None) };
}

fn st() -> MutexGuard<'static, State> {
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn cur_id() -> Option<usize> {
    CUR_ID.with(Cell::get)
}

/// Pick the next thread to run. Caller holds the state lock and either
/// holds the token or is relinquishing it (blocking / finishing).
fn pick_next(s: &mut State) {
    let runnable: Vec<usize> = s
        .threads
        .iter()
        .enumerate()
        .filter(|(_, t)| **t == Status::Runnable)
        .map(|(i, _)| i)
        .collect();
    if runnable.is_empty() {
        if s.threads.iter().all(|t| *t == Status::Finished) {
            s.done = true;
        } else {
            s.failed = Some(format!(
                "deadlock: no runnable thread (statuses {:?} after {} decision(s): {:?})",
                s.threads,
                s.decisions.len(),
                s.decisions
            ));
        }
        CV.notify_all();
        return;
    }
    let prev = s.current;
    let prev_runnable = s.threads.get(prev) == Some(&Status::Runnable);
    // Preemption bounding (CHESS-style): once the budget is spent, a
    // thread that can keep running must keep running. Forced switches
    // (the previous thread blocked or finished) are free.
    let allowed = if prev_runnable && s.preemptions >= s.max_preemptions {
        vec![prev]
    } else {
        runnable
    };
    let idx = if s.pos < s.prefix.len() {
        // Replay. Executions are deterministic given the decision path,
        // so the recorded index is in range; clamp defensively anyway.
        s.prefix[s.pos].min(allowed.len() - 1)
    } else {
        0
    };
    s.pos += 1;
    s.decisions.push((idx, allowed.len()));
    let chosen = allowed[idx];
    if prev_runnable && chosen != prev {
        s.preemptions += 1;
    }
    s.current = chosen;
    CV.notify_all();
}

/// Park until the token comes back to `me` (or the execution fails,
/// which unwinds this thread so its guards release and it finishes).
fn wait_for_token(mut s: MutexGuard<'_, State>, me: usize) {
    while s.failed.is_none() && s.current != me {
        s = CV.wait(s).unwrap_or_else(PoisonError::into_inner);
    }
    let failed = s.failed.is_some();
    drop(s);
    if failed && !std::thread::panicking() {
        panic!("loom: execution aborted (failure detected on another thread)");
    }
}

/// A scheduling point: hand the token to the scheduler and wait for it
/// back. No-op outside an active execution (loom types then degrade to
/// plain std behaviour).
pub(crate) fn point() {
    let Some(me) = cur_id() else { return };
    let s = st();
    if !s.active || s.done {
        return;
    }
    if abort_if_failed(&s) {
        return;
    }
    debug_assert_eq!(s.current, me, "a non-current thread reached a scheduling point");
    let mut s = s;
    pick_next(&mut s);
    wait_for_token(s, me);
}

/// When the execution has failed, unwind the calling thread (so it
/// releases its locks and finishes) instead of letting it keep running —
/// an early `return` here would let `Mutex::lock` retry loops spin
/// forever. Returns true (caller bails out) only mid-unwind.
fn abort_if_failed(s: &MutexGuard<'_, State>) -> bool {
    if s.failed.is_none() {
        return false;
    }
    if std::thread::panicking() {
        return true;
    }
    panic!("loom: execution aborted (failure detected on another thread)");
}

/// Block the calling thread until `res` is released, then resume (the
/// caller retries its acquire in a loop). Outside a model this degrades
/// to an OS yield so the caller's retry loop becomes a spin-wait.
pub(crate) fn block_on(res: usize) {
    let Some(me) = cur_id() else {
        std::thread::yield_now();
        return;
    };
    let mut s = st();
    if !s.active || abort_if_failed(&s) {
        return;
    }
    s.threads[me] = Status::BlockedOn(res);
    pick_next(&mut s);
    wait_for_token(s, me);
}

/// Mark every thread blocked on `res` runnable again. Called by the
/// releasing thread, which keeps the token (its next scheduling point
/// decides who actually runs).
pub(crate) fn unblock(res: usize) {
    if cur_id().is_none() {
        return;
    }
    let mut s = st();
    if !s.active {
        return;
    }
    for t in &mut s.threads {
        if *t == Status::BlockedOn(res) {
            *t = Status::Runnable;
        }
    }
}

/// Block until model thread `target` finishes.
pub(crate) fn join_wait(target: usize) {
    let Some(me) = cur_id() else { return };
    let mut s = st();
    if !s.active || abort_if_failed(&s) {
        return;
    }
    if s.threads.get(target) == Some(&Status::Finished) {
        return;
    }
    s.threads[me] = Status::Joining(target);
    pick_next(&mut s);
    wait_for_token(s, me);
}

/// Register a new model thread (spawner holds the token); returns its id.
pub(crate) fn register() -> usize {
    let mut s = st();
    debug_assert!(s.active, "loom thread spawned outside a model");
    s.threads.push(Status::Runnable);
    s.threads.len() - 1
}

/// Adopt `id` on this OS thread and wait to be scheduled for the first
/// time. Runs on the freshly spawned OS thread.
pub(crate) fn enter_thread(id: usize) {
    CUR_ID.with(|c| c.set(Some(id)));
    let s = st();
    wait_for_token(s, id);
}

/// Mark `id` finished, wake joiners, and hand the token on. Runs from a
/// drop guard so panicking model threads still release the scheduler.
pub(crate) fn finish(id: usize) {
    let mut s = st();
    if !s.active {
        return;
    }
    s.threads[id] = Status::Finished;
    for t in &mut s.threads {
        if *t == Status::Joining(id) {
            *t = Status::Runnable;
        }
    }
    pick_next(&mut s);
}

/// Finishes its thread on drop — constructed before the model closure
/// runs so even a panicking thread reports completion.
pub(crate) struct FinishGuard(pub(crate) usize);

impl Drop for FinishGuard {
    fn drop(&mut self) {
        finish(self.0);
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Depth-first backtracking: the next replay prefix, or `None` when
/// every decision point has exhausted its alternatives.
fn next_prefix(decisions: &[Decision]) -> Option<Vec<usize>> {
    let mut i = decisions.len();
    while i > 0 {
        i -= 1;
        let (chosen, arity) = decisions[i];
        if chosen + 1 < arity {
            let mut p: Vec<usize> = decisions[..i].iter().map(|d| d.0).collect();
            p.push(chosen + 1);
            return Some(p);
        }
    }
    None
}

/// Outcome of one execution.
struct ExecResult {
    decisions: Vec<Decision>,
    /// Scheduler-detected failure (deadlock).
    verdict: Result<(), String>,
    /// The root thread's own outcome (Err = the model body panicked).
    root: std::thread::Result<()>,
}

fn run_one(
    f: std::sync::Arc<dyn Fn() + Send + Sync>,
    prefix: Vec<usize>,
    max_preemptions: usize,
) -> ExecResult {
    {
        let mut s = st();
        *s = State::idle();
        s.active = true;
        s.threads.push(Status::Runnable); // root model thread, id 0
        s.current = 0;
        s.prefix = prefix;
        s.max_preemptions = max_preemptions;
    }
    let root = std::thread::Builder::new()
        .name("loom-w0".into())
        .spawn(move || {
            let _fin = FinishGuard(0);
            enter_thread(0);
            f();
        })
        .expect("loom: spawning the root model thread failed");
    // Wait for the execution to complete. On failure, also wait for
    // every model thread to unwind and finish — otherwise the next
    // execution's state reset would strand them on the condvar.
    {
        let mut s = st();
        while !(s.done
            || (s.failed.is_some() && s.threads.iter().all(|t| *t == Status::Finished)))
        {
            s = CV.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
    }
    let root = root.join();
    let mut s = st();
    s.active = false;
    ExecResult {
        decisions: std::mem::take(&mut s.decisions),
        verdict: match s.failed.take() {
            Some(msg) => Err(msg),
            None => Ok(()),
        },
        root,
    }
}

/// Total executions explored by the most recent completed `model()`
/// call, for the shim's own tests.
pub(crate) static LAST_ITERATIONS: AtomicUsize = AtomicUsize::new(0);

/// Run `f` under every sequentially-consistent interleaving of its
/// loom-mediated synchronization operations, up to the preemption bound
/// (`LOOM_MAX_PREEMPTIONS`, default 2). Panics if any interleaving
/// panics or deadlocks, reporting the decision trace.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model_bounded(None, f);
}

pub(crate) fn model_bounded<F>(bound: Option<usize>, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let _serial = MODEL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let max_preemptions = bound.unwrap_or_else(|| env_usize("LOOM_MAX_PREEMPTIONS", 2));
    let max_iterations = env_usize("LOOM_MAX_ITERATIONS", 100_000);
    let f: std::sync::Arc<dyn Fn() + Send + Sync> = std::sync::Arc::new(f);
    let mut prefix = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let exec = run_one(f.clone(), prefix, max_preemptions);
        if let Err(msg) = exec.verdict {
            panic!("loom: iteration {iterations}: {msg}");
        }
        if let Err(payload) = exec.root {
            eprintln!(
                "loom: model panicked on iteration {iterations}; decision trace ({}): {:?}",
                exec.decisions.len(),
                exec.decisions
            );
            std::panic::resume_unwind(payload);
        }
        match next_prefix(&exec.decisions) {
            Some(p) if iterations < max_iterations => prefix = p,
            Some(_) => {
                eprintln!(
                    "loom: warning: LOOM_MAX_ITERATIONS={max_iterations} reached with \
                     alternatives left — exploration is INCOMPLETE"
                );
                break;
            }
            None => break,
        }
    }
    LAST_ITERATIONS.store(iterations, Ordering::Relaxed);
}
