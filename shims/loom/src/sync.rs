//! Model-aware synchronization primitives.
//!
//! [`Mutex`] wraps `std::sync::Mutex`, so mutual exclusion and lock
//! poisoning are *real*; the wrapper only adds scheduling points (every
//! acquire and release hands the token to the explorer) and converts
//! OS blocking into scheduler blocking — a model thread that parked in
//! the kernel while holding the token would deadlock the whole model.
//! `Mutex::new` is `const`, and `lock` returns std's `LockResult`, so
//! code written against `std::sync` (including
//! `unwrap_or_else(PoisonError::into_inner)` recovery) compiles against
//! this module unchanged.
//!
//! The atomics likewise wrap std atomics. Every operation is performed
//! with `SeqCst` regardless of the ordering argument — the explorer
//! enumerates sequentially-consistent interleavings only; the caller's
//! ordering argument is accepted for API compatibility and checked by
//! the `atomic-ordering` lint rule, not here.

use crate::sched;
use std::ops::{Deref, DerefMut};
use std::sync::{LockResult, PoisonError, TryLockError};

pub use std::sync::Arc;

/// A `const`-constructible mutex whose acquire/release are scheduling
/// points. See the module docs.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard for [`Mutex`]; releasing it wakes scheduler-blocked waiters
/// and yields a scheduling point (unless the thread is unwinding).
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// The owning mutex, so [`Condvar::wait`] can re-acquire after waking.
    lock: &'a Mutex<T>,
    res: usize,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex (usable in `static`s).
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// The scheduler resource key for this mutex: its address.
    fn res(&self) -> usize {
        self as *const Self as usize
    }

    /// Acquire, blocking through the scheduler. Poisoning behaves like
    /// std: the error carries a live guard recoverable via
    /// [`PoisonError::into_inner`].
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        loop {
            sched::point();
            match self.inner.try_lock() {
                Ok(g) => {
                    return Ok(MutexGuard {
                        inner: Some(g),
                        lock: self,
                        res: self.res(),
                    })
                }
                Err(TryLockError::Poisoned(p)) => {
                    return Err(PoisonError::new(MutexGuard {
                        inner: Some(p.into_inner()),
                        lock: self,
                        res: self.res(),
                    }))
                }
                Err(TryLockError::WouldBlock) => sched::block_on(self.res()),
            }
        }
    }

    /// Non-blocking acquire (still a scheduling point).
    pub fn try_lock(&self) -> Result<MutexGuard<'_, T>, TryLockError<MutexGuard<'_, T>>> {
        sched::point();
        match self.inner.try_lock() {
            Ok(g) => Ok(MutexGuard {
                inner: Some(g),
                lock: self,
                res: self.res(),
            }),
            Err(TryLockError::Poisoned(p)) => {
                Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                    inner: Some(p.into_inner()),
                    lock: self,
                    res: self.res(),
                })))
            }
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
        }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard accessed after release")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard accessed after release")
    }
}

/// A `const`-constructible condition variable whose wait/notify run
/// through the scheduler.
///
/// `wait` releases the guard's mutex and blocks on the condvar's address
/// *without an intervening scheduling point*: [`sched::unblock`] marks
/// mutex waiters runnable but keeps the token, and [`sched::block_on`]
/// is the next hand-off, so no other model thread can run (and notify)
/// between the release and the block — the atomic release-and-sleep that
/// real condvars guarantee. `notify_all`/`notify_one` mark every waiter
/// runnable (a conservative over-approximation of `notify_one`; callers
/// must re-check their condition in a loop, which spurious-wakeup-safe
/// code does anyway). Outside a model, `block_on` degrades to an OS
/// yield, so `wait` returns spuriously and the caller's re-check loop
/// spins — acceptable for non-model `cfg(loom)` builds.
#[derive(Debug, Default)]
pub struct Condvar {
    _private: (),
}

impl Condvar {
    /// A new condvar (usable in `static`s).
    pub const fn new() -> Self {
        Condvar { _private: () }
    }

    /// The scheduler resource key for this condvar: its address.
    fn res(&self) -> usize {
        self as *const Self as usize
    }

    /// Atomically release `guard`'s mutex and block until a notify (or a
    /// spurious wakeup outside a model), then re-acquire. Mirrors
    /// `std::sync::Condvar::wait`, including the poison contract on
    /// re-acquisition.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        let mutex_res = guard.res;
        // Release the real mutex and wake its waiters, but do NOT yield:
        // the very next scheduling transition must be our own block, or a
        // notifier could fire while we are still runnable (lost wakeup).
        drop(guard.inner.take());
        std::mem::forget(guard);
        sched::unblock(mutex_res);
        sched::block_on(self.res());
        lock.lock()
    }

    /// Wake one waiter. The shim wakes all (see type docs); condition
    /// re-check loops make that indistinguishable up to scheduling.
    pub fn notify_one(&self) {
        sched::unblock(self.res());
        sched::point();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        sched::unblock(self.res());
        sched::point();
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let res = self.res;
        // Release the real lock first (poisons if unwinding), then wake
        // scheduler-blocked waiters. The release point lets the explorer
        // hand the lock straight to a waiter — skipped mid-unwind, where
        // re-entering the scheduler could double-panic.
        drop(self.inner.take());
        sched::unblock(res);
        if !std::thread::panicking() {
            sched::point();
        }
    }
}

pub mod atomic {
    //! Scheduling-point-instrumented atomics (SeqCst model).

    use crate::sched;
    pub use std::sync::atomic::Ordering;
    use std::sync::atomic::Ordering::SeqCst;

    macro_rules! int_atomic {
        ($Name:ident, $Std:ty, $T:ty) => {
            /// Model-aware atomic integer; every operation is a
            /// scheduling point executed at `SeqCst`.
            #[derive(Debug, Default)]
            pub struct $Name {
                inner: $Std,
            }

            impl $Name {
                /// A new atomic (usable in `static`s).
                pub const fn new(v: $T) -> Self {
                    Self {
                        inner: <$Std>::new(v),
                    }
                }

                pub fn load(&self, _order: Ordering) -> $T {
                    sched::point();
                    self.inner.load(SeqCst)
                }

                pub fn store(&self, v: $T, _order: Ordering) {
                    sched::point();
                    self.inner.store(v, SeqCst)
                }

                pub fn swap(&self, v: $T, _order: Ordering) -> $T {
                    sched::point();
                    self.inner.swap(v, SeqCst)
                }

                pub fn fetch_add(&self, v: $T, _order: Ordering) -> $T {
                    sched::point();
                    self.inner.fetch_add(v, SeqCst)
                }

                pub fn fetch_sub(&self, v: $T, _order: Ordering) -> $T {
                    sched::point();
                    self.inner.fetch_sub(v, SeqCst)
                }

                pub fn fetch_max(&self, v: $T, _order: Ordering) -> $T {
                    sched::point();
                    self.inner.fetch_max(v, SeqCst)
                }

                pub fn compare_exchange(
                    &self,
                    current: $T,
                    new: $T,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$T, $T> {
                    sched::point();
                    self.inner.compare_exchange(current, new, SeqCst, SeqCst)
                }

                pub fn compare_exchange_weak(
                    &self,
                    current: $T,
                    new: $T,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$T, $T> {
                    self.compare_exchange(current, new, success, failure)
                }

                pub fn into_inner(self) -> $T {
                    self.inner.into_inner()
                }
            }
        };
    }

    int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    int_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    int_atomic!(AtomicI64, std::sync::atomic::AtomicI64, i64);

    /// Model-aware atomic boolean; every operation is a scheduling
    /// point executed at `SeqCst`.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// A new atomic (usable in `static`s).
        pub const fn new(v: bool) -> Self {
            Self {
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        pub fn load(&self, _order: Ordering) -> bool {
            sched::point();
            self.inner.load(SeqCst)
        }

        pub fn store(&self, v: bool, _order: Ordering) {
            sched::point();
            self.inner.store(v, SeqCst);
        }

        pub fn swap(&self, v: bool, _order: Ordering) -> bool {
            sched::point();
            self.inner.swap(v, SeqCst)
        }

        pub fn fetch_or(&self, v: bool, _order: Ordering) -> bool {
            sched::point();
            self.inner.fetch_or(v, SeqCst)
        }

        pub fn fetch_and(&self, v: bool, _order: Ordering) -> bool {
            sched::point();
            self.inner.fetch_and(v, SeqCst)
        }

        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<bool, bool> {
            sched::point();
            self.inner.compare_exchange(current, new, SeqCst, SeqCst)
        }
    }
}
