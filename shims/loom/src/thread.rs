//! Model-thread spawning. Each `loom::thread::spawn` creates a real OS
//! thread registered with the scheduler; it first parks until the
//! explorer schedules it, and a drop guard reports completion even if
//! the closure panics (so joiners wake and poisoned locks recover).

use crate::sched;

/// Handle to a model thread. [`JoinHandle::join`] blocks through the
/// scheduler, then surfaces the closure's result (or panic payload)
/// exactly like `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    id: usize,
    inner: std::thread::JoinHandle<T>,
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish; `Err` carries its panic payload.
    pub fn join(self) -> std::thread::Result<T> {
        sched::join_wait(self.id);
        self.inner.join()
    }
}

/// Spawn a model thread. The spawner immediately passes a scheduling
/// point, so "child runs first" interleavings are explored.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let id = sched::register();
    let inner = std::thread::Builder::new()
        .name(format!("loom-w{id}"))
        .spawn(move || {
            let _fin = sched::FinishGuard(id);
            sched::enter_thread(id);
            f()
        })
        .expect("loom: spawning a model thread failed");
    sched::point();
    JoinHandle { id, inner }
}

/// Voluntary scheduling point.
pub fn yield_now() {
    sched::point();
}
