//! Offline shim of the `loom` model checker's API surface.
//!
//! The real `loom` explores thread interleavings by running the model
//! body on cooperative generators inside one OS thread. This shim keeps
//! the same *contract* — [`model`] runs a closure under **every**
//! sequentially-consistent interleaving of its synchronization
//! operations, up to a preemption bound — but implements it with real OS
//! threads and a token-passing scheduler:
//!
//! * Exactly one model thread runs at a time. It holds "the token";
//!   everyone else parks on a condvar.
//! * Every [`sync::Mutex`] lock/unlock and every [`sync::atomic`]
//!   operation is a *scheduling point*: the running thread hands the
//!   token back to the scheduler, which picks who runs next.
//! * The scheduler replays a decision prefix and then takes the first
//!   allowed choice, recording each point's branching factor. After the
//!   execution finishes, depth-first backtracking derives the next
//!   prefix; exploration ends when no decision point has an untried
//!   alternative.
//! * A *preemption* (switching away from a thread that could have kept
//!   running) is bounded by `LOOM_MAX_PREEMPTIONS` (default 2) — the
//!   classic CHESS result: almost all real concurrency bugs manifest
//!   within two preemptions, and the bound keeps the state space
//!   polynomial. `LOOM_MAX_ITERATIONS` (default 100 000) caps the total
//!   execution count as a wall-clock backstop; hitting it prints a loud
//!   warning because coverage is then incomplete.
//!
//! Because interleavings are explored at the sequential-consistency
//! level, this shim checks *logic* under concurrency (lost updates,
//! atomicity violations, deadlocks, poison recovery) but not weak-memory
//! reorderings — the `atomic-ordering` lint rule and the `// ordering:`
//! comment discipline carry that burden instead.
//!
//! Deadlocks (every live thread blocked) abort the execution with the
//! decision trace. A panicking model thread unwinds normally — std
//! mutexes poison, joiners observe `Err` — so poison-recovery paths are
//! modelable, matching real `loom`.

mod sched;
pub mod sync;
pub mod thread;

pub use sched::model;

/// `loom::model::Builder` stand-in: the real crate exposes knobs here;
/// the shim reads the same knobs from `LOOM_MAX_PREEMPTIONS` /
/// `LOOM_MAX_ITERATIONS` and this type only carries explicit overrides.
pub mod model {
    /// Configurable model runner (subset: preemption bound).
    #[derive(Default)]
    pub struct Builder {
        /// Override the `LOOM_MAX_PREEMPTIONS` bound for this model.
        pub preemption_bound: Option<usize>,
    }

    impl Builder {
        /// A builder with every knob at its default.
        pub fn new() -> Self {
            Self::default()
        }

        /// Run `f` under exhaustive bounded interleaving.
        pub fn check<F>(&self, f: F)
        where
            F: Fn() + Send + Sync + 'static,
        {
            crate::sched::model_bounded(self.preemption_bound, f);
        }
    }
}
