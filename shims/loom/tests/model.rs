//! Self-tests for the loom shim: the explorer must (a) enumerate enough
//! interleavings to *find* classic races, (b) verify invariants that
//! hold on every interleaving, (c) detect deadlocks, and (d) model
//! panic/poison recovery. These run on the plain test profile — only
//! *consumers* of the shim gate their models behind `--cfg loom`.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The unsynchronized read-modify-write race: two threads each do
/// `load; store(v + 1)`. The explorer must surface BOTH outcomes — the
/// lost update (1) and the clean sum (2).
#[test]
fn finds_the_lost_update() {
    let outcomes = std::sync::Arc::new(std::sync::Mutex::new(BTreeSet::new()));
    let sink = outcomes.clone();
    loom::model(move || {
        let a = Arc::new(AtomicUsize::new(0));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let a = a.clone();
                thread::spawn(move || {
                    let v = a.load(Ordering::SeqCst);
                    a.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        sink.lock().unwrap().insert(a.load(Ordering::SeqCst));
    });
    let seen = outcomes.lock().unwrap();
    assert!(seen.contains(&1), "lost-update interleaving never explored: {seen:?}");
    assert!(seen.contains(&2), "fully-ordered interleaving never explored: {seen:?}");
}

/// Mutex-protected increments never lose an update, on any interleaving.
#[test]
fn mutex_increments_are_exact() {
    loom::model(|| {
        let m = Arc::new(Mutex::new(0u64));
        let hs: Vec<_> = (0..2)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    let mut g = m.lock().unwrap();
                    *g += 1;
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(*m.lock().unwrap(), 2);
    });
}

/// AB-BA lock ordering: some interleaving deadlocks, and the explorer
/// must find it and report it rather than hanging.
#[test]
fn detects_abba_deadlock() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let h = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            }
            let _ = h.join();
        });
    }));
    let msg = match result {
        Ok(()) => panic!("AB-BA deadlock was not detected"),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default(),
    };
    assert!(msg.contains("deadlock"), "unexpected failure message: {msg}");
}

/// A thread panicking while holding the lock poisons it; the survivor
/// observes `Err`, recovers with `into_inner`, and sees consistent data
/// — on every interleaving.
#[test]
fn poison_is_recoverable() {
    loom::model(|| {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let h = thread::spawn(move || {
            let mut g = m2.lock().unwrap();
            *g = 8;
            panic!("poison the lock");
        });
        assert!(h.join().is_err(), "the poisoning thread must report its panic");
        let g = match m.lock() {
            Ok(_) => panic!("lock must be poisoned after the holder panicked"),
            Err(poisoned) => poisoned.into_inner(),
        };
        assert_eq!(*g, 8, "the write before the panic is visible after recovery");
    });
}

/// `join` surfaces the closure's return value, and a model with no
/// contention at all still terminates after exploring its (single-ish)
/// schedule space.
#[test]
fn join_returns_the_closure_value() {
    loom::model(|| {
        let h = thread::spawn(|| 40 + 2);
        assert_eq!(h.join().unwrap(), 42);
    });
}

/// A model body that itself fails must propagate the assertion out of
/// `loom::model` (not swallow it in a worker thread).
#[test]
fn model_assertions_propagate() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let a = AtomicUsize::new(1);
            assert_eq!(a.load(Ordering::SeqCst), 2, "deliberate model failure");
        });
    }));
    assert!(result.is_err(), "model-body assertion did not propagate");
}
