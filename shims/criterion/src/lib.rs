//! Offline shim for `criterion`: enough of the API for this workspace's
//! benches to build and run under `cargo bench`. Each benchmark is timed
//! with `std::time::Instant` over `sample_size` samples and reported as
//! mean/min ns per iteration — no statistical analysis, HTML reports, or
//! regression detection.

use std::fmt::Display;
use std::time::Instant;

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("kernel", n)` → `kernel/n`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Things accepted as a benchmark name (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The display name.
    fn into_id(self) -> String;
}
impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}
impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}
impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Declared throughput of a benchmark, printed alongside timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs closures and accumulates per-iteration timings.
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, also primes caches/allocations.
        for _ in 0..2 {
            std::hint::black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn report(name: &str, samples_ns: &[f64], throughput: Option<Throughput>) {
    if samples_ns.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
    let min = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  {:>10.1} Melem/s", n as f64 / mean * 1e3)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  {:>10.1} MB/s", n as f64 / mean * 1e3)
        }
        _ => String::new(),
    };
    println!("{name:<50} mean {mean:>12.0} ns  min {min:>12.0} ns{rate}");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the declared throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark `routine` with shared setup `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples_ns: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.into_id()),
            &b.samples_ns,
            self.throughput,
        );
        self
    }

    /// Benchmark `routine`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut routine: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples_ns: Vec::new(),
            sample_size: self.sample_size,
        };
        routine(&mut b);
        report(
            &format!("{}/{}", self.name, id.into_id()),
            &b.samples_ns,
            self.throughput,
        );
        self
    }

    /// End the group (prints nothing extra in this shim).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut routine: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples_ns: Vec::new(),
            sample_size: 10,
        };
        routine(&mut b);
        report(&id.into_id(), &b.samples_ns, None);
        self
    }
}

/// Declare a group-runner function calling each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare `main()` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("add", 1), &21u64, |b, &x| {
            b.iter(|| x * 2);
        });
        group.bench_function("plain", |b| b.iter(|| 1 + 1));
        group.finish();
        c.bench_function("top", |b| b.iter(|| "x".repeat(4)));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 64).to_string(), "f/64");
    }
}
