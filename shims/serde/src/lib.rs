//! Offline shim for `serde`: serialization modeled as conversion to and
//! from an owned JSON-like [`Value`] tree.
//!
//! The real serde's visitor architecture exists to avoid materializing an
//! intermediate representation; this workspace only (de)serializes small
//! reports and traces to JSON, so the simple value-tree model is adequate
//! and keeps the shim tiny. `serde_json` (also shimmed) supplies the text
//! parser/printer over the same [`Value`].

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// An owned JSON-like value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Negative integers.
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    /// Floating-point numbers (non-finite serializes as `null`).
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, with insertion order preserved.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object member lookup; `Null` when absent or not an object.
    pub fn field(&self, name: &str) -> &Value {
        match self {
            Value::Object(members) => members
                .iter()
                .find(|(k, _)| k == name)
                .map_or(&NULL, |(_, v)| v),
            _ => &NULL,
        }
    }

    /// Like [`Value::field`] but `None` when absent.
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `Some(bool)` for booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(i) => Some(*i as f64),
            Value::U64(u) => Some(*u as f64),
            Value::F64(f) => Some(*f),
            _ => None,
        }
    }

    /// Non-negative integer value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(u) => Some(*u),
            Value::I64(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Signed integer value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            Value::U64(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// String slice for strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Element slice for arrays.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Members for objects.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// `true` for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, name: &str) -> &Value {
        self.field(name)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Deserialization error: a message plus field-path context.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
    path: Vec<String>,
}

impl DeError {
    /// Create an error with a message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
            path: Vec::new(),
        }
    }

    /// Record that the error occurred inside the named field.
    pub fn in_field(mut self, field: &str) -> Self {
        self.path.insert(0, field.to_string());
        self
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.message)
        } else {
            write!(f, "at .{}: {}", self.path.join("."), self.message)
        }
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self`, reporting a contextual error on mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls --------------------------------------------------

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| {
                    DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v
                    ))
                })?;
                <$t>::try_from(u).map_err(|_| {
                    DeError::custom(format!(
                        concat!("value {} out of range for ", stringify!($t)), u
                    ))
                })
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::U64(i as u64) } else { Value::I64(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| {
                    DeError::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), v
                    ))
                })?;
                <$t>::try_from(i).map_err(|_| {
                    DeError::custom(format!(
                        concat!("value {} out of range for ", stringify!($t)), i
                    ))
                })
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    // Non-finite floats serialize as null (as in upstream
                    // serde_json); accept the reverse mapping so such
                    // records still parse.
                    Value::Null => Ok(<$t>::NAN),
                    _ => v.as_f64().map(|f| f as $t).ok_or_else(|| {
                        DeError::custom(format!(
                            concat!("expected ", stringify!($t), ", got {:?}"), v
                        ))
                    }),
                }
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::custom(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v:?}")))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v:?}")))?;
        if arr.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, got {}",
                arr.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(arr) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected object, got {v:?}")))?;
        obj.iter()
            .map(|(k, item)| Ok((k.clone(), V::from_value(item)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(3)),
            ("b".into(), Value::F64(2.5)),
            ("s".into(), Value::Str("x".into())),
        ]);
        assert_eq!(v["a"].as_u64(), Some(3));
        assert_eq!(v["a"].as_f64(), Some(3.0));
        assert_eq!(v["b"].as_f64(), Some(2.5));
        assert_eq!(v["b"].as_u64(), None);
        assert_eq!(v["s"].as_str(), Some("x"));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn option_and_array_roundtrip() {
        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), none);
        let arr = [1u64, 2, 3];
        assert_eq!(<[u64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        assert!(<[u64; 2]>::from_value(&arr.to_value()).is_err());
    }

    #[test]
    fn error_paths_accumulate() {
        let e = DeError::custom("boom").in_field("inner").in_field("outer");
        assert_eq!(e.to_string(), "at .outer.inner: boom");
    }

    #[test]
    fn signed_integers_split_by_sign() {
        assert_eq!((-3i32).to_value(), Value::I64(-3));
        assert_eq!(5i32.to_value(), Value::U64(5));
        assert_eq!(i32::from_value(&Value::I64(-3)).unwrap(), -3);
        assert_eq!(i32::from_value(&Value::U64(5)).unwrap(), 5);
    }
}
