//! Offline shim for `rayon`: the parallel-iterator entry points used by
//! this workspace, implemented as sequential adapters over std iterators.
//!
//! `par_iter()` / `into_par_iter()` hand back the ordinary sequential
//! iterator for the collection, so every downstream combinator
//! (`map`, `for_each`, `collect`, …) is just [`std::iter::Iterator`].
//! Results are identical to the parallel version because the workspace
//! only uses order-preserving, side-effect-free mappings.

pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Sequential stand-in for `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The (sequential) iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Element type.
    type Item;
    /// Convert into a "parallel" (here: sequential) iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential stand-in for `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The (sequential) iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Element type (a reference into the collection).
    type Item: 'data;
    /// Iterate by reference.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Iter = <&'data C as IntoIterator>::IntoIter;
    type Item = <&'data C as IntoIterator>::Item;
    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let squared: Vec<i32> = v.into_par_iter().map(|x| x * x).collect();
        assert_eq!(squared, vec![1, 4, 9]);
    }

    #[test]
    fn ranges_and_slices_work() {
        let total: usize = (0..10usize).into_par_iter().sum();
        assert_eq!(total, 45);
        let s: &[u32] = &[5, 6];
        let refs: Vec<&u32> = s.par_iter().collect();
        assert_eq!(*refs[1], 6);
    }
}
