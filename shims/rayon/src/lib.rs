//! Offline shim for `rayon`: the parallel-iterator entry points used by
//! this workspace, implemented on real OS threads (`std::thread::scope`)
//! with deterministic, order-preserving result assembly.
//!
//! The shape of the executor is deliberately simple: `into_par_iter()`
//! materializes the items, workers pull `(index, item)` pairs from a
//! shared queue, and each result is written back to its original index.
//! `collect()` therefore returns elements in input order regardless of
//! which worker computed them or in what order they finished — the
//! property the workspace's byte-stable ledger depends on.
//!
//! Thread count resolution (first match wins):
//! 1. an explicit [`ThreadPoolBuilder::build_global`] call,
//! 2. the `RAYON_NUM_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! With one thread (or one item) everything runs inline on the caller's
//! thread, so `RAYON_NUM_THREADS=1` is an exact serial execution.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator};
}

// ---------------------------------------------------------------------------
// Thread-count configuration
// ---------------------------------------------------------------------------

/// 0 = not yet resolved; resolved lazily on first use.
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

fn default_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Number of worker threads parallel iterators will use.
pub fn current_num_threads() -> usize {
    let n = NUM_THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    let resolved = default_num_threads();
    // Racing first-callers resolve the same value; either store wins.
    NUM_THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Error mimic for [`ThreadPoolBuilder::build_global`]. The shim's global
/// configuration can always be (re)applied, so this is never produced, but
/// callers written against real rayon expect a `Result`.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global thread pool configuration failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Mimic of `rayon::ThreadPoolBuilder` covering global configuration.
///
/// Unlike real rayon, calling [`build_global`](Self::build_global) more
/// than once is allowed and simply re-points the thread count — handy for
/// tests that compare serial and parallel executions in one process.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building; with no explicit count the environment default is
    /// kept.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `n` worker threads; 0 means "use the default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the configuration globally.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            default_num_threads()
        } else {
            self.num_threads
        };
        NUM_THREADS.store(n, Ordering::Relaxed);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

/// Run `f` over `items` on the shim's thread pool and return the results
/// in input order. Panics in `f` are propagated to the caller after all
/// workers stop.
fn run_parallel<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue = Mutex::new(items.into_iter().enumerate());
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        let next = queue.lock().expect("work queue poisoned").next();
                        match next {
                            Some((i, item)) => done.push((i, f(item))),
                            None => break,
                        }
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => {
                    for (i, r) in part {
                        slots[i] = Some(r);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every index produced exactly once"))
        .collect()
}

// ---------------------------------------------------------------------------
// Parallel iterator types
// ---------------------------------------------------------------------------

/// A materialized "parallel iterator": the items to distribute, in order.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Map each item through `f` (evaluated in parallel at the sink).
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        run_parallel(self.items, f);
    }

    /// Sum the items. The items are already materialized in input order,
    /// so this folds sequentially — deterministic for floats too.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<T>,
    {
        self.items.into_iter().sum()
    }

    /// Collect into `C` preserving input order.
    pub fn collect<C>(self) -> C
    where
        C: FromParIter<T>,
    {
        C::from_ordered(self.items)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Lazy map stage: evaluated in parallel when a sink method runs.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, R, F> ParMap<T, F>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    /// Evaluate the map in parallel and collect into `C` in input order.
    pub fn collect<C>(self) -> C
    where
        C: FromParIter<R>,
    {
        C::from_ordered(run_parallel(self.items, self.f))
    }

    /// Evaluate the map in parallel, discarding results.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Sync,
    {
        let f = self.f;
        run_parallel(self.items, |item| g(f(item)));
    }

    /// Evaluate the map in parallel, then sum in input order.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        run_parallel(self.items, self.f).into_iter().sum()
    }
}

/// Sink conversion from an ordered result vector — the shim's analogue of
/// `rayon::iter::FromParallelIterator`.
pub trait FromParIter<T> {
    /// Build the collection from results already in input order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T> FromParIter<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

/// Short-circuit semantics matching rayon: the *first* error in input
/// order wins, no matter which worker hit it first in wall-clock time.
impl<T, E, C: FromParIter<T>> FromParIter<Result<T, E>> for Result<C, E> {
    fn from_ordered(items: Vec<Result<T, E>>) -> Self {
        let mut ok = Vec::with_capacity(items.len());
        for item in items {
            ok.push(item?);
        }
        Ok(C::from_ordered(ok))
    }
}

impl<T, C: FromParIter<T>> FromParIter<Option<T>> for Option<C> {
    fn from_ordered(items: Vec<Option<T>>) -> Self {
        let mut ok = Vec::with_capacity(items.len());
        for item in items {
            ok.push(item?);
        }
        Some(C::from_ordered(ok))
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits
// ---------------------------------------------------------------------------

/// Stand-in for `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Convert into a parallel iterator (materializes the items).
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Stand-in for `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// Element type (a reference into the collection).
    type Item: Send + 'data;
    /// Iterate by reference.
    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, C: 'data + ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
    <&'data C as IntoIterator>::Item: Send,
{
    type Item = <&'data C as IntoIterator>::Item;
    fn par_iter(&'data self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let squared: Vec<i32> = v.into_par_iter().map(|x| x * x).collect();
        assert_eq!(squared, vec![1, 4, 9]);
    }

    #[test]
    fn ranges_and_slices_work() {
        let total: usize = (0..10usize).into_par_iter().sum();
        assert_eq!(total, 45);
        let s: &[u32] = &[5, 6];
        let refs: Vec<&u32> = s.par_iter().collect();
        assert_eq!(*refs[1], 6);
    }

    #[test]
    fn large_map_is_order_stable() {
        // Enough items that, with >1 thread, workers interleave freely;
        // the collected order must still match the input order exactly.
        let out: Vec<usize> = (0..10_000usize).into_par_iter().map(|x| x * 3).collect();
        assert_eq!(out.len(), 10_000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn for_each_visits_every_item_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        (0..hits.len())
            .into_par_iter()
            .for_each(|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn result_collect_reports_first_error_in_input_order() {
        let r: Result<Vec<usize>, String> = (0..100usize)
            .into_par_iter()
            .map(|i| {
                if i == 7 || i == 93 {
                    Err(format!("bad {i}"))
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(r, Err("bad 7".to_string()));
        let ok: Result<Vec<usize>, String> =
            (0..10usize).into_par_iter().map(Ok).collect();
        assert_eq!(ok.as_deref(), Ok(&(0..10).collect::<Vec<_>>()[..]));
    }

    #[test]
    fn mutable_items_partition_disjointly() {
        // Mirror of the host-kernel pattern: disjoint &mut slices as items.
        let mut data = vec![0u32; 64];
        let chunks: Vec<(usize, &mut [u32])> = data.chunks_mut(4).enumerate().collect();
        chunks.into_par_iter().for_each(|(i, chunk)| {
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = (i * 4 + j) as u32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i as u32);
        }
    }

    #[test]
    fn build_global_overrides_thread_count() {
        ThreadPoolBuilder::new()
            .num_threads(3)
            .build_global()
            .expect("shim build_global always succeeds");
        assert_eq!(current_num_threads(), 3);
        // Re-pointing is allowed in the shim (unlike real rayon).
        ThreadPoolBuilder::new()
            .num_threads(1)
            .build_global()
            .expect("shim build_global always succeeds");
        assert_eq!(current_num_threads(), 1);
        let out: Vec<usize> = (0..8usize).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, (1..9).collect::<Vec<_>>());
    }
}
