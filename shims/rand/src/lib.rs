//! Offline shim for `rand` 0.9: `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{random, random_range, random_bool}` and
//! `seq::SliceRandom::{shuffle, partial_shuffle}`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — deterministic
//! and statistically solid, but **not** stream-compatible with upstream
//! rand: the same seed yields a different (equally valid) sample sequence.
//! Nothing in this workspace asserts on exact sampled values.

/// Core RNG interface: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `seed_from_u64` entry point is used here).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their "natural" domain
/// (`[0, 1)` for floats, the full range for integers).
pub trait Standard: Sized {
    /// Draw one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a `T` can be drawn from (`lo..hi` and `lo..=hi`).
pub trait SampleRange<T> {
    /// Draw a sample in the range; panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a `T` from its standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle of the whole slice.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Shuffle so the first `amount` elements are a uniform random
        /// sample of the slice; returns `(sampled, rest)`.
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i as u64) as usize;
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let k = amount.min(self.len());
            for i in 0..k {
                let j = rng.random_range(i..self.len());
                self.swap(i, j);
            }
            self.split_at_mut(k)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0..=5u64);
            assert!(y <= 5);
            let f = rng.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let d: f64 = rng.random();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.1)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left slice in order");
    }

    #[test]
    fn partial_shuffle_samples_prefix() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        let (head, tail) = v.partial_shuffle(&mut rng, 10);
        assert_eq!(head.len(), 10);
        assert_eq!(tail.len(), 40);
        let mut all: Vec<u32> = head.iter().chain(tail.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }
}
