//! The Figure 13 walk-through, narrated: watch the conversion unit turn a
//! CSC strip into a tiled-DCSR tile one comparator pass at a time.
//!
//! Run with: `cargo run --release --example engine_walkthrough`

use spmm_nmt::engine::{
    AreaEnergyModel, ComparatorTree, EngineTiming, PrefetchBuffer, StripConverter,
};
use spmm_nmt::formats::Csc;
use spmm_nmt::sim::GpuConfig;

fn main() {
    // The exact strip of Figure 13: 5 rows x 3 columns,
    //   col0 = {a0@r0, a2@r2, a4@r4}
    //   col1 = {b0@r0, b1@r1, b4@r4}
    //   col2 = {c0@r0, c2@r2}
    let csc = Csc::new(
        5,
        3,
        vec![0, 3, 6, 8],
        vec![0, 2, 4, 0, 1, 4, 0, 2],
        vec![10.0, 12.0, 14.0, 20.0, 21.0, 24.0, 30.0, 32.0],
    )
    .expect("Figure 13 strip is valid CSC");

    println!("CSC input (Figure 13):");
    println!("  col_ptr = {:?}", csc.colptr());
    println!("  row_idx = {:?}", csc.rowidx());
    println!("  value   = {:?}", csc.values());
    println!();

    // Step-by-step: drive the comparator tree manually over the frontier.
    let tree = ComparatorTree::new(3).expect("3 lanes is within 1..=64");
    let mut frontier = [0usize, 3, 6]; // col_ptr starts (step 1 of Fig. 13)
    let boundary = [3usize, 6, 8];
    println!("comparator passes (step 2-3 of Figure 13):");
    let mut pass = 0;
    loop {
        pass += 1;
        let coords: Vec<Option<u32>> = (0..3)
            .map(|lane| (frontier[lane] < boundary[lane]).then(|| csc.rowidx()[frontier[lane]]))
            .collect();
        match tree.find_min(&coords) {
            None => {
                println!("  pass {pass}: all lanes exhausted -> return DCSR (step 4)");
                break;
            }
            Some(min) => {
                let lanes: Vec<usize> = (0..3).filter(|i| min.mask & (1 << i) != 0).collect();
                let vals: Vec<f32> = lanes.iter().map(|&l| csc.values()[frontier[l]]).collect();
                println!(
                    "  pass {pass}: min row = {}, lanes {:?} emit one DCSR row {:?}",
                    min.min, lanes, vals
                );
                for &l in &lanes {
                    frontier[l] += 1;
                }
            }
        }
    }
    println!();

    // The full converter produces the tile in one call.
    let mut conv = StripConverter::new(&csc, 0, 3);
    let tile = conv.next_tile(0, 5);
    println!("tiled DCSR output (Figure 13, right):");
    println!("  value   = {:?}", tile.values);
    println!("  col_idx = {:?}", tile.colidx);
    println!("  row_ptr = {:?}", tile.rowptr);
    println!("  row_idx = {:?}", tile.rowidx);
    let stats = conv.stats();
    println!(
        "  ({} elements, {} rows, {} comparator passes, {} B in, {} B out)",
        stats.elements,
        stats.rows_emitted,
        stats.comparator_passes,
        stats.input_bytes,
        stats.output_bytes
    );
    println!();

    // And the hardware story (§4.2.2, §5.3) for the real 64-wide unit.
    let tree64 = ComparatorTree::new(64)
        .expect("64 lanes is the engine width")
        .structure();
    let timing = EngineTiming::fp32(13.6, &tree64);
    let buffer = PrefetchBuffer::paper_default();
    let area = AreaEnergyModel::for_gpu(&GpuConfig::gv100());
    println!("the production 64-wide unit (Figures 14-15, Section 5.3):");
    println!(
        "  comparator tree : {} two-input units, {} stages, {:.3} ns/stage",
        tree64.two_input_units, tree64.depth, tree64.stage_latency_ns
    );
    println!(
        "  pipeline        : {:.3} ns cycle (one 8 B element per HBM2 pseudo-channel beat)",
        timing.cycle_ns
    );
    println!(
        "  prefetch buffer : {} B/column x {} columns = {} KB, hides {:.1} ns",
        buffer.bytes_per_column,
        buffer.columns,
        buffer.total_bytes() / 1024,
        buffer.hideable_ns(&timing)
    );
    println!(
        "  deployment      : {} units, {:.2} mm^2 ({:.2}% of die), {:.2} W peak ({:.2}% of TDP)",
        area.units,
        area.total_area_mm2,
        area.area_fraction * 100.0,
        area.peak_power_fp32_w,
        area.power_fraction_tdp * 100.0
    );
}
