//! Format explorer: profile a Matrix Market file the way the paper
//! profiles SuiteSparse inputs.
//!
//! Usage: `cargo run --release --example format_explorer [file.mtx]`
//!
//! Without an argument the example writes a synthetic `.mtx` to a temp
//! directory first, then reads it back — demonstrating the full
//! deserialization path the paper assumes ("widely-used Matrix Market
//! format uses coordinate list (COO) format", §4.1).
//!
//! Prints: storage footprints of every format (Figures 8/9), the strip
//! density histogram (Figure 5), the SSF profile (Eq. 2) and the
//! recommended algorithm.

use spmm_nmt::formats::{
    market, Csr, Dcsr, SparseMatrix, StorageSize, StripStats, TiledCsr, TiledDcsr,
};
use spmm_nmt::matgen::{generators, GenKind, MatrixDesc};
use spmm_nmt::model::ssf::SsfProfile;
use spmm_nmt::planner::DEFAULT_SSF_THRESHOLD;

fn main() {
    let arg = std::env::args().nth(1);
    let (coo, source) = match arg {
        Some(path) => {
            let (coo, header) = market::read_market_file(&path).expect("readable .mtx file");
            println!("loaded {path} ({header:?})");
            (coo, path)
        }
        None => {
            let dir = std::env::temp_dir().join("nmt_format_explorer");
            std::fs::create_dir_all(&dir).expect("temp dir");
            let path = dir.join("demo.mtx");
            let demo = generators::generate(&MatrixDesc::new(
                "demo",
                2048,
                GenKind::BlockDiag {
                    block: 64,
                    fill: 0.3,
                    background: 1e-4,
                },
                5,
            ));
            market::write_market_file(&path, &demo.to_coo()).expect("write demo matrix");
            let (coo, _) = market::read_market_file(&path).expect("read back");
            println!("no file given; generated {}", path.display());
            (coo, path.display().to_string())
        }
    };

    let a = Csr::from_coo(&coo);
    let tile = 64;
    println!();
    println!("matrix   : {} from {source}", a.shape());
    println!(
        "nnz      : {} (density {:.4}%)",
        a.nnz(),
        a.density() * 100.0
    );
    println!("nnz rows : {} / {}", a.nonzero_rows(), a.shape().nrows);
    println!("nnz cols : {} / {}", a.nonzero_cols(), a.shape().ncols);

    println!();
    println!("--- storage footprints (Figures 8/9) ---");
    let csc = a.to_csc();
    let dcsr = Dcsr::from_csr(&a);
    let tcsr = TiledCsr::from_csr(&a, tile).expect("tiling");
    let tdcsr = TiledDcsr::from_csr(&a, tile, tile).expect("tiling");
    let base = a.storage_bytes() as f64;
    for (name, meta, total) in [
        ("CSR", a.metadata_bytes(), a.storage_bytes()),
        ("CSC", csc.metadata_bytes(), csc.storage_bytes()),
        ("DCSR", dcsr.metadata_bytes(), dcsr.storage_bytes()),
        (
            &format!("tiled CSR ({tile})"),
            tcsr.metadata_bytes(),
            tcsr.storage_bytes(),
        ),
        (
            &format!("tiled DCSR ({tile}x{tile})"),
            tdcsr.metadata_bytes(),
            tdcsr.storage_bytes(),
        ),
    ] {
        println!(
            "{name:22} metadata {:>10} B   total {:>10} B   ({:.2}x CSR)",
            meta,
            total,
            total as f64 / base
        );
    }

    println!();
    println!("--- strip density (Figure 5, width {tile}) ---");
    let stats = StripStats::compute(&a, tile);
    let hist = stats.figure5_histogram();
    for (label, count) in StripStats::figure5_labels().iter().zip(&hist) {
        if *count > 0 {
            println!("{label:>8}: {count} strips");
        }
    }
    println!(
        "mean non-zero-row fraction: {:.2}%",
        stats.mean_fraction * 100.0
    );

    println!();
    println!("--- SSF heuristic (Eq. 2) ---");
    let profile = SsfProfile::compute(&a, tile);
    println!("H_norm   : {:.4}", profile.h_norm);
    println!("SSF      : {:.4e}", profile.ssf);
    let choice = spmm_nmt::model::classify(profile.ssf, &DEFAULT_SSF_THRESHOLD);
    println!("threshold: {:.4e}", DEFAULT_SSF_THRESHOLD.threshold);
    println!("=> recommended algorithm: {choice:?}");
    match choice {
        spmm_nmt::model::ssf::Choice::BStationary => {
            println!("   (store as CSC; let the near-memory engine mint tiled DCSR online)");
        }
        spmm_nmt::model::ssf::Choice::CStationary => {
            println!("   (store as CSR/DCSR; run untiled C-stationary row-per-warp)");
        }
    }
}
