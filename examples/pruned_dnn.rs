//! Pruned-DNN inference — the paper's other motivating domain (§1–2:
//! "pruning of neural connections is a major focus … leading to sparse
//! input tensors").
//!
//! A 3-layer MLP whose weight matrices were magnitude-pruned to different
//! sparsities runs a batch of inputs: each layer is one SpMM
//! (`A = pruned weights`, `B = activation batch`). Layers differ in
//! structure — pruning leaves clustered survivors in some layers and
//! scattered ones in others — so the planner picks a different algorithm
//! per layer, exactly the heterogeneity the SSF heuristic exists for.
//!
//! Run with: `cargo run --release --example pruned_dnn`

use spmm_nmt::formats::{Csr, DenseMatrix, SparseMatrix};
use spmm_nmt::kernels::host;
use spmm_nmt::matgen::{generators, random_dense, GenKind, MatrixDesc};
use spmm_nmt::planner::planner::{PlannerConfig, SpmmPlanner};

struct Layer {
    name: &'static str,
    weights: Csr,
}

fn relu(m: &mut DenseMatrix) {
    for v in m.as_mut_slice() {
        *v = v.max(0.0);
    }
}

fn main() {
    let width = 2048;
    let batch = 64;

    // Structured pruning (whole blocks survive) vs unstructured pruning
    // (scattered survivors) vs head-pruned attention-like rows.
    let layers = vec![
        Layer {
            name: "fc1 (block-structured prune, 1.5% dense)",
            weights: generators::generate(&MatrixDesc::new(
                "fc1",
                width,
                GenKind::RowBursts {
                    density: 0.015,
                    burst_len: 32,
                },
                100,
            )),
        },
        Layer {
            name: "fc2 (unstructured prune, 1% dense)",
            weights: generators::generate(&MatrixDesc::new(
                "fc2",
                width,
                GenKind::Uniform { density: 0.01 },
                101,
            )),
        },
        Layer {
            name: "fc3 (row-skewed prune, 0.5% dense)",
            weights: generators::generate(&MatrixDesc::new(
                "fc3",
                width,
                GenKind::ZipfRows {
                    density: 0.005,
                    exponent: 1.3,
                },
                102,
            )),
        },
    ];

    let mut config = PlannerConfig::paper_default();
    config.tile_w = 64;
    config.tile_h = 64;
    let planner = SpmmPlanner::new(config);

    let mut activations = random_dense(width, batch, 999);
    let mut total_gpu_ns = 0.0;
    let mut total_baseline_ns = 0.0;

    for layer in &layers {
        let report = planner
            .execute(&layer.weights, &activations)
            .expect("simulation runs");
        println!("{}", layer.name);
        println!(
            "  nnz {:>8}  SSF {:>10.3e}  -> {:?}",
            layer.weights.nnz(),
            report.profile.ssf,
            report.algorithm
        );
        println!(
            "  simulated: {:.1} us (cuSPARSE stand-in {:.1} us, speedup {:.2}x)",
            report.stats.total_ns / 1e3,
            report.baseline_stats.total_ns / 1e3,
            report.speedup
        );
        total_gpu_ns += report.stats.total_ns;
        total_baseline_ns += report.baseline_stats.total_ns;

        // Functional forward pass on the host reference.
        let mut out = host::spmm_csr(&layer.weights, &activations);
        relu(&mut out);
        activations = out;
    }

    println!();
    println!(
        "network forward pass: {:.1} us auto-tuned vs {:.1} us baseline ({:.2}x end-to-end)",
        total_gpu_ns / 1e3,
        total_baseline_ns / 1e3,
        total_baseline_ns / total_gpu_ns
    );
    let checksum: f32 = activations.as_slice().iter().sum();
    println!("output checksum: {checksum:.4} (batch {batch})");
}
