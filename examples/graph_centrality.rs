//! Graph centrality via repeated SpMM — one of the paper's motivating
//! application domains (§2 cites graph centrality calculations and
//! all-pairs shortest path as SpMM substrates).
//!
//! Computes batched personalized-PageRank-style centrality: the adjacency
//! matrix of an RMAT graph multiplies a block of K personalization vectors
//! for several power iterations, each iteration being one SpMM. The
//! planner picks the algorithm once from the matrix profile, and the
//! near-memory engine means the graph is stored once, in compact CSC.
//!
//! Run with: `cargo run --release --example graph_centrality`

use spmm_nmt::formats::{Csr, DenseMatrix, SparseMatrix};
use spmm_nmt::kernels::host;
use spmm_nmt::matgen::{generators, GenKind, MatrixDesc};
use spmm_nmt::planner::planner::{PlannerConfig, SpmmPlanner};

/// Row-normalize an adjacency matrix into a column-stochastic-ish
/// transition operator (values 1/outdegree).
fn to_transition(adj: &Csr) -> Csr {
    let n = adj.shape().nrows;
    let mut rowptr = vec![0u32; n + 1];
    let mut colidx = Vec::with_capacity(adj.nnz());
    let mut values = Vec::with_capacity(adj.nnz());
    for r in 0..n {
        let (cols, _) = adj.row(r);
        let deg = cols.len().max(1) as f32;
        for &c in cols {
            colidx.push(c);
            values.push(1.0 / deg);
        }
        rowptr[r + 1] = colidx.len() as u32;
    }
    Csr::new(n, n, rowptr, colidx, values).expect("normalized adjacency is valid CSR")
}

fn main() {
    let n = 4096;
    let k = 32; // number of personalization vectors, computed in one batch
    let iterations = 6;
    let damping = 0.85f32;

    let adj = generators::generate(&MatrixDesc::new(
        "rmat_graph",
        n,
        GenKind::Rmat {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            edge_factor: 8,
        },
        1234,
    ));
    let p = to_transition(&adj);
    println!(
        "graph: {} vertices, {} edges (density {:.4}%)",
        n,
        adj.nnz(),
        adj.density() * 100.0
    );

    // K personalization vectors: vector j restarts at seed vertex j * 61.
    let seeds: Vec<usize> = (0..k).map(|j| (j * 61) % n).collect();
    let mut restart = DenseMatrix::zeros(n, k);
    for (j, &s) in seeds.iter().enumerate() {
        restart.set(s, j, 1.0 - damping);
    }
    let mut rank = DenseMatrix::from_fn(n, k, |_, _| 1.0 / n as f32);

    // Plan once from the matrix profile (the SpMM structure never changes).
    let mut config = PlannerConfig::paper_default();
    config.tile_w = 64;
    config.tile_h = 64;
    let planner = SpmmPlanner::new(config);
    let (profile, choice) = planner.plan(&p);
    println!("SSF = {:.3e} -> {choice:?}", profile.ssf);
    let report = planner.execute(&p, &rank).expect("simulation runs");
    println!(
        "per-iteration SpMM on simulated GV100: {:.1} us ({:.2}x over cuSPARSE stand-in)",
        report.stats.total_ns / 1e3,
        report.speedup
    );

    // Functional power iterations on the host reference.
    for it in 0..iterations {
        let spread = host::spmm_csr(&p, &rank);
        let mut next = restart.clone();
        for (o, &s) in next.as_mut_slice().iter_mut().zip(spread.as_slice()) {
            *o += damping * s;
        }
        let delta = next.max_abs_diff(&rank);
        rank = next;
        println!("iteration {}: max delta {:.2e}", it + 1, delta);
    }

    // Report the top-5 central vertices of the first personalization.
    let mut scored: Vec<(usize, f32)> = (0..n).map(|v| (v, rank.get(v, 0))).collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite ranks"));
    println!("top vertices for seed {}:", seeds[0]);
    for (v, s) in scored.iter().take(5) {
        println!("  vertex {v:5}  score {s:.5}");
    }
    let total_spmm_ns = report.stats.total_ns * iterations as f64;
    println!(
        "estimated GPU time for {} iterations x {} vectors: {:.1} us",
        iterations,
        k,
        total_spmm_ns / 1e3
    );
}
