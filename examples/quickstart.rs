//! Quickstart: auto-tuned SpMM on one matrix.
//!
//! Generates a sparse matrix, lets the planner profile it with the SSF
//! heuristic (Eq. 2 of the paper), runs the chosen kernel on the simulated
//! GV100 — C-stationary untiled DCSR or B-stationary tiled DCSR converted
//! online by the near-memory engine — and prints the report.
//!
//! Run with: `cargo run --release --example quickstart`

use spmm_nmt::formats::SparseMatrix;
use spmm_nmt::matgen::{generators, random_dense, GenKind, MatrixDesc};
use spmm_nmt::planner::planner::{PlannerConfig, SpmmPlanner};

fn main() {
    // An 8192 x 8192 sparse matrix with clustered row segments (the regime
    // where the near-memory engine shines) and 64 dense vectors.
    let desc = MatrixDesc::new(
        "quickstart",
        8192,
        GenKind::RowBursts {
            density: 0.005,
            burst_len: 32,
        },
        7,
    );
    let a = generators::generate(&desc);
    let b = random_dense(a.shape().ncols, 64, 11);

    println!(
        "matrix {}: {} ({} non-zeros, density {:.4}%)",
        desc.name,
        a.shape(),
        a.nnz(),
        a.density() * 100.0
    );

    let mut config = PlannerConfig::paper_default();
    // Keep the shared-memory B tile within bounds for K = 64.
    config.tile_w = 64;
    config.tile_h = 64;
    let planner = SpmmPlanner::new(config);

    let (profile, choice) = planner.plan(&a);
    println!(
        "SSF profile: ssf = {:.3e}, H_norm = {:.3}, nnz rows = {:.1}%",
        profile.ssf,
        profile.h_norm,
        profile.nnzrow_frac * 100.0
    );
    println!("heuristic choice: {choice:?}");

    let report = planner.execute(&a, &b).expect("simulation runs");
    println!("algorithm executed : {:?}", report.algorithm);
    println!(
        "baseline (cuSPARSE stand-in): {:.1} us",
        report.baseline_stats.total_ns / 1e3
    );
    println!(
        "chosen kernel               : {:.1} us",
        report.stats.total_ns / 1e3
    );
    println!("speedup                     : {:.2}x", report.speedup);
    if let Some(engine) = &report.engine {
        println!(
            "engine: converted {} elements into {} DCSR rows across {} tiles ({:.1} nJ)",
            engine.elements,
            engine.rows_emitted,
            engine.tiles,
            report.engine_energy_pj / 1e3
        );
    }
    let stall = report.stats.stall_breakdown();
    println!(
        "stalls: memory {:.0}%, sm {:.0}%, other {:.0}%",
        stall.memory * 100.0,
        stall.sm * 100.0,
        stall.other * 100.0
    );
}
