//! Individual matrix generators.

use nmt_formats::{Coo, Csr};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The structural family of a generated matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum GenKind {
    /// Independent uniform placement: every cell is non-zero with
    /// probability `density`. The "uniform non-zero distribution" case of
    /// §3.1.2, which favours C-stationary.
    Uniform {
        /// Target density in `(0, 1]`.
        density: f64,
    },
    /// Row-skewed placement: per-row nnz follows a Zipf law with the given
    /// exponent over a random row permutation; columns are uniform. Large
    /// exponents concentrate non-zeros in few heavy rows (small
    /// `n_nnzrow`), the regime §3.1.4 calls advantageous for C-stationary
    /// output traffic but low-entropy/high-skew overall.
    ZipfRows {
        /// Target density in `(0, 1]`.
        density: f64,
        /// Zipf exponent (`0` degenerates to uniform rows).
        exponent: f64,
    },
    /// Doubly skewed: Zipf over rows *and* columns, yielding the scattered
    /// hub-and-spoke structure of scale-free graphs.
    ZipfBoth {
        /// Target density in `(0, 1]`.
        density: f64,
        /// Zipf exponent shared by both axes.
        exponent: f64,
    },
    /// Diagonal band: cells with `|r - c| <= bandwidth` are non-zero with
    /// probability `fill`. Classic stencil/PDE structure — extremely
    /// clustered per strip (high locality, low entropy).
    Banded {
        /// Half-width of the band.
        bandwidth: usize,
        /// Fill probability inside the band.
        fill: f64,
    },
    /// Dense-ish blocks along the diagonal plus a sparse uniform
    /// background. Models the "highly clustered row segments" that Hong et
    /// al.'s DCSR extraction targets.
    BlockDiag {
        /// Edge length of each diagonal block.
        block: usize,
        /// Fill probability inside blocks.
        fill: f64,
        /// Density of the uniform background outside blocks.
        background: f64,
    },
    /// Clustered row segments: bursts of `burst_len` consecutive columns
    /// placed at random `(row, col)` positions. This is the structure Hong
    /// et al.'s DCSR extraction targets — long non-zero runs within a
    /// strip (cheap, few atomic C updates for B-stationary) at scattered
    /// row/column positions (no incidental cache luck for C-stationary) —
    /// i.e. the regime where tiled B-stationary wins.
    RowBursts {
        /// Target density in `(0, 1]`.
        density: f64,
        /// Length of each horizontal run of non-zeros.
        burst_len: usize,
    },
    /// RMAT recursive-quadrant graph generator (Chakrabarti et al.), the
    /// standard stand-in for power-law graph adjacency structure.
    Rmat {
        /// Probability of the top-left quadrant.
        a: f64,
        /// Probability of the top-right quadrant.
        b: f64,
        /// Probability of the bottom-left quadrant.
        c: f64,
        /// Average edges per vertex.
        edge_factor: usize,
    },
}

/// A fully-specified, reproducible matrix: kind + dimension + seed.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixDesc {
    /// Human-readable name used in experiment output.
    pub name: String,
    /// Square dimension (rows == cols, as the paper assumes in Table 1).
    pub n: usize,
    /// Structural family and its parameters.
    pub kind: GenKind,
    /// RNG seed.
    pub seed: u64,
}

impl MatrixDesc {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, n: usize, kind: GenKind, seed: u64) -> Self {
        Self {
            name: name.into(),
            n,
            kind,
            seed,
        }
    }
}

/// A descriptor that cannot be generated. Returned by [`try_generate`]
/// so a malformed suite entry becomes a per-matrix error instead of a
/// panic in the middle of a corpus sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum MatgenError {
    /// `n` exceeds the `u32` index space of the formats crate.
    DimensionTooLarge {
        /// The offending dimension.
        n: usize,
    },
    /// RMAT quadrant probabilities sum above 1.
    BadRmatProbabilities {
        /// Top-left quadrant probability.
        a: f64,
        /// Top-right quadrant probability.
        b: f64,
        /// Bottom-left quadrant probability.
        c: f64,
    },
}

impl std::fmt::Display for MatgenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DimensionTooLarge { n } => {
                write!(f, "matrix dimension {n} exceeds the u32 index space")
            }
            Self::BadRmatProbabilities { a, b, c } => write!(
                f,
                "RMAT quadrant probabilities a={a} + b={b} + c={c} exceed 1"
            ),
        }
    }
}

impl std::error::Error for MatgenError {}

/// Validate `desc` and generate its CSR matrix, reporting a malformed
/// descriptor as a typed error rather than panicking.
pub fn try_generate(desc: &MatrixDesc) -> Result<Csr, MatgenError> {
    if desc.n > u32::MAX as usize {
        return Err(MatgenError::DimensionTooLarge { n: desc.n });
    }
    if let GenKind::Rmat { a, b, c, .. } = desc.kind {
        if a + b + c > 1.0 + 1e-9 {
            return Err(MatgenError::BadRmatProbabilities { a, b, c });
        }
    }
    Ok(generate_validated(desc))
}

/// Generate the CSR matrix described by `desc`.
///
/// Panics on a malformed descriptor; use [`try_generate`] where a bad
/// entry must not abort the caller (e.g. corpus sweeps).
pub fn generate(desc: &MatrixDesc) -> Csr {
    // nmt-lint: allow(panic) — documented panicking wrapper; try_generate is the fallible API
    try_generate(desc).expect("invalid matrix descriptor")
}

fn generate_validated(desc: &MatrixDesc) -> Csr {
    let mut rng = StdRng::seed_from_u64(desc.seed);
    let n = desc.n;
    let coo = match &desc.kind {
        GenKind::Uniform { density } => uniform(n, *density, &mut rng),
        GenKind::ZipfRows { density, exponent } => {
            zipf_rows(n, *density, *exponent, false, &mut rng)
        }
        GenKind::ZipfBoth { density, exponent } => {
            zipf_rows(n, *density, *exponent, true, &mut rng)
        }
        GenKind::Banded { bandwidth, fill } => banded(n, *bandwidth, *fill, &mut rng),
        GenKind::BlockDiag {
            block,
            fill,
            background,
        } => block_diag(n, *block, *fill, *background, &mut rng),
        GenKind::RowBursts { density, burst_len } => row_bursts(n, *density, *burst_len, &mut rng),
        GenKind::Rmat {
            a,
            b,
            c,
            edge_factor,
        } => rmat(n, *a, *b, *c, *edge_factor, &mut rng),
    };
    Csr::from_coo(&coo)
}

/// Sample `k` distinct values in `0..n`, sorted. Uses Floyd's algorithm for
/// small `k`, dense rejection-free selection when `k` approaches `n`.
fn sample_distinct(n: usize, k: usize, rng: &mut StdRng) -> Vec<u32> {
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    if k * 3 >= n {
        // Dense case: partial Fisher-Yates over the full index range.
        let mut all: Vec<u32> = (0..n as u32).collect();
        all.partial_shuffle(rng, k);
        let mut out = all[..k].to_vec();
        out.sort_unstable();
        out
    } else {
        // Floyd's sampling: k iterations, O(k) expected set operations.
        let mut set = std::collections::BTreeSet::new();
        for j in (n - k)..n {
            let t = rng.random_range(0..=j as u64) as u32;
            if !set.insert(t) {
                set.insert(j as u32);
            }
        }
        set.into_iter().collect()
    }
}

fn uniform(n: usize, density: f64, rng: &mut StdRng) -> Coo {
    let per_row = density * n as f64;
    let mut coo = Coo::new(n, n).expect("dims validated by caller");
    for r in 0..n as u32 {
        let k = stochastic_round(per_row, rng);
        for c in sample_distinct(n, k, rng) {
            coo.push(r, c, value(rng)).unwrap();
        }
    }
    coo
}

fn zipf_rows(n: usize, density: f64, exponent: f64, zipf_cols: bool, rng: &mut StdRng) -> Coo {
    let target_nnz = (density * n as f64 * n as f64).round() as usize;
    // Zipf weights over ranks, assigned to a random row permutation so the
    // heavy rows are scattered through the matrix as in real datasets.
    let weights: Vec<f64> = (0..n)
        .map(|i| 1.0 / ((i + 1) as f64).powf(exponent))
        .collect();
    let total: f64 = weights.iter().sum();
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.shuffle(rng);
    let col_sampler = if zipf_cols {
        Some(CumulativeSampler::new(&weights))
    } else {
        None
    };
    let mut coo = Coo::new(n, n).expect("dims validated by caller");
    for (rank, &row) in perm.iter().enumerate() {
        let share = weights[rank] / total * target_nnz as f64;
        let k = stochastic_round(share, rng).min(n);
        if k == 0 {
            continue;
        }
        match &col_sampler {
            None => {
                for c in sample_distinct(n, k, rng) {
                    coo.push(row, c, value(rng)).unwrap();
                }
            }
            Some(sampler) => {
                // Column ranks share the row permutation reversed, so heavy
                // rows and heavy columns differ.
                let mut seen = std::collections::BTreeSet::new();
                let mut attempts = 0;
                while seen.len() < k && attempts < 8 * k {
                    let rank = sampler.sample(rng);
                    seen.insert(perm[n - 1 - rank]);
                    attempts += 1;
                }
                for c in seen {
                    coo.push(row, c, value(rng)).unwrap();
                }
            }
        }
    }
    coo
}

fn banded(n: usize, bandwidth: usize, fill: f64, rng: &mut StdRng) -> Coo {
    let mut coo = Coo::new(n, n).expect("dims validated by caller");
    for r in 0..n {
        let lo = r.saturating_sub(bandwidth);
        let hi = (r + bandwidth + 1).min(n);
        for c in lo..hi {
            if rng.random_bool(fill) {
                coo.push(r as u32, c as u32, value(rng)).unwrap();
            }
        }
    }
    coo
}

fn block_diag(n: usize, block: usize, fill: f64, background: f64, rng: &mut StdRng) -> Coo {
    let block = block.max(1);
    let mut coo = Coo::new(n, n).expect("dims validated by caller");
    let nblocks = n.div_ceil(block);
    for b in 0..nblocks {
        let lo = b * block;
        let hi = ((b + 1) * block).min(n);
        for r in lo..hi {
            for c in lo..hi {
                if rng.random_bool(fill) {
                    coo.push(r as u32, c as u32, value(rng)).unwrap();
                }
            }
        }
    }
    if background > 0.0 {
        let bg_nnz = (background * n as f64 * n as f64).round() as usize;
        for _ in 0..bg_nnz {
            let r = rng.random_range(0..n as u32);
            let c = rng.random_range(0..n as u32);
            coo.push(r, c, value(rng)).unwrap();
        }
    }
    coo.canonicalize();
    coo
}

fn row_bursts(n: usize, density: f64, burst_len: usize, rng: &mut StdRng) -> Coo {
    let burst_len = burst_len.clamp(1, n);
    let target_nnz = density * n as f64 * n as f64;
    let bursts = (target_nnz / burst_len as f64).round() as usize;
    let mut coo = Coo::new(n, n).expect("dims validated by caller");
    for _ in 0..bursts {
        let r = rng.random_range(0..n as u32);
        let c0 = rng.random_range(0..(n - burst_len + 1) as u32);
        for j in 0..burst_len as u32 {
            coo.push(r, c0 + j, value(rng)).unwrap();
        }
    }
    coo.canonicalize();
    coo
}

fn rmat(n: usize, a: f64, b: f64, c: f64, edge_factor: usize, rng: &mut StdRng) -> Coo {
    // a + b + c <= 1 is checked by try_generate before we get here.
    let levels = (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize;
    let side = 1usize << levels;
    let edges = n * edge_factor;
    let mut coo = Coo::new(n, n).expect("dims validated by caller");
    for _ in 0..edges {
        let (mut r, mut col) = (0usize, 0usize);
        let mut span = side;
        while span > 1 {
            span /= 2;
            let p: f64 = rng.random();
            if p < a {
                // top-left
            } else if p < a + b {
                col += span;
            } else if p < a + b + c {
                r += span;
            } else {
                r += span;
                col += span;
            }
        }
        if r < n && col < n {
            coo.push(r as u32, col as u32, value(rng)).unwrap();
        }
    }
    coo.canonicalize();
    coo
}

/// Round `x` to an integer, with the fractional part resolved randomly so
/// expected totals are preserved even when per-row shares are tiny.
fn stochastic_round(x: f64, rng: &mut StdRng) -> usize {
    let base = x.floor();
    let frac = x - base;
    base as usize + usize::from(rng.random_bool(frac.clamp(0.0, 1.0)))
}

fn value(rng: &mut StdRng) -> f32 {
    // Non-zero values uniform in [-1, 1) excluding exact zero (the paper
    // assigns random values to pattern-only matrices, §5.1).
    loop {
        let v = rng.random_range(-1.0f32..1.0);
        if v != 0.0 {
            return v;
        }
    }
}

/// Inverse-CDF sampler over a fixed weight vector.
struct CumulativeSampler {
    cdf: Vec<f64>,
}

impl CumulativeSampler {
    fn new(weights: &[f64]) -> Self {
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w;
            cdf.push(acc);
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cdf.last().expect("non-empty weights");
        let x: f64 = rng.random_range(0.0..total);
        self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmt_formats::SparseMatrix;

    fn gen(kind: GenKind, n: usize) -> Csr {
        generate(&MatrixDesc::new("t", n, kind, 7))
    }

    #[test]
    fn generation_is_deterministic() {
        let d = MatrixDesc::new("t", 128, GenKind::Uniform { density: 0.02 }, 3);
        assert_eq!(generate(&d), generate(&d));
        let d2 = MatrixDesc {
            seed: 4,
            ..d.clone()
        };
        assert_ne!(generate(&d2), generate(&d));
    }

    #[test]
    fn uniform_hits_target_density() {
        let m = gen(GenKind::Uniform { density: 0.05 }, 512);
        let got = m.density();
        assert!((got - 0.05).abs() < 0.01, "density {got}");
    }

    #[test]
    fn uniform_rows_are_balanced() {
        let m = gen(GenKind::Uniform { density: 0.05 }, 512);
        let counts = m.row_nnz_counts();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(
            max < mean * 3.0,
            "uniform rows should not be heavily skewed"
        );
    }

    #[test]
    fn zipf_rows_are_skewed() {
        let m = gen(
            GenKind::ZipfRows {
                density: 0.01,
                exponent: 1.2,
            },
            512,
        );
        let mut counts = m.row_nnz_counts();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: usize = counts.iter().sum();
        let top_decile: usize = counts[..counts.len() / 10].iter().sum();
        assert!(
            top_decile as f64 > 0.5 * total as f64,
            "top 10% of rows should hold most non-zeros ({top_decile}/{total})"
        );
    }

    #[test]
    fn banded_respects_bandwidth() {
        let m = gen(
            GenKind::Banded {
                bandwidth: 3,
                fill: 0.8,
            },
            128,
        );
        for (r, c, _) in m.iter() {
            assert!((r as i64 - c as i64).abs() <= 3);
        }
        assert!(m.nnz() > 0);
    }

    #[test]
    fn block_diag_concentrates_in_blocks() {
        let m = gen(
            GenKind::BlockDiag {
                block: 16,
                fill: 0.5,
                background: 0.0,
            },
            128,
        );
        for (r, c, _) in m.iter() {
            assert_eq!(r / 16, c / 16, "entry ({r},{c}) outside its block");
        }
    }

    #[test]
    fn block_diag_background_adds_scatter() {
        let m = gen(
            GenKind::BlockDiag {
                block: 16,
                fill: 0.3,
                background: 0.005,
            },
            128,
        );
        let outside = m.iter().filter(|(r, c, _)| r / 16 != c / 16).count();
        assert!(
            outside > 0,
            "background should place entries outside blocks"
        );
    }

    #[test]
    fn row_bursts_produce_long_segments() {
        let m = gen(
            GenKind::RowBursts {
                density: 0.01,
                burst_len: 16,
            },
            512,
        );
        // Density near target.
        assert!(
            (m.density() - 0.01).abs() < 0.005,
            "density {}",
            m.density()
        );
        // Consecutive runs: the mean run length should approach burst_len.
        let mut runs = 0usize;
        let mut total = 0usize;
        for r in 0..512 {
            let (cols, _) = m.row(r);
            let mut i = 0;
            while i < cols.len() {
                runs += 1;
                while i + 1 < cols.len() && cols[i + 1] == cols[i] + 1 {
                    i += 1;
                    total += 1;
                }
                i += 1;
                total += 1;
            }
        }
        let mean_run = total as f64 / runs.max(1) as f64;
        assert!(mean_run > 8.0, "mean run length {mean_run}");
    }

    #[test]
    fn row_bursts_clamp_burst_len() {
        let m = gen(
            GenKind::RowBursts {
                density: 0.05,
                burst_len: 10_000,
            },
            64,
        );
        assert!(m.nnz() > 0);
        for (_, c, _) in m.iter() {
            assert!((c as usize) < 64);
        }
    }

    #[test]
    fn rmat_is_power_law_ish() {
        let m = gen(
            GenKind::Rmat {
                a: 0.57,
                b: 0.19,
                c: 0.19,
                edge_factor: 8,
            },
            512,
        );
        assert!(m.nnz() > 512); // dedup loses some edges but most survive
        let mut counts = m.row_nnz_counts();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        assert!(counts[0] > 4 * counts[counts.len() / 2].max(1));
    }

    #[test]
    fn sample_distinct_is_distinct_and_sorted() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(n, k) in &[(100usize, 5usize), (100, 90), (10, 10), (5, 0)] {
            let s = sample_distinct(n, k, &mut rng);
            assert_eq!(s.len(), k.min(n));
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&x| (x as usize) < n));
        }
    }

    #[test]
    fn stochastic_round_preserves_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 20_000;
        let sum: usize = (0..trials).map(|_| stochastic_round(0.3, &mut rng)).sum();
        let mean = sum as f64 / trials as f64;
        assert!((mean - 0.3).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn cumulative_sampler_respects_weights() {
        let s = CumulativeSampler::new(&[1.0, 0.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hits = [0usize; 3];
        for _ in 0..4000 {
            hits[s.sample(&mut rng)] += 1;
        }
        assert_eq!(hits[1], 0);
        assert!(hits[2] > 2 * hits[0]);
    }
}
