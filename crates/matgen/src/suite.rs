//! The evaluation suite: a deterministic sweep standing in for SuiteSparse.
//!
//! §5.1 filters SuiteSparse to matrices with 4 k–44 k rows so that `B` and
//! `C` fit in GPU memory and every SM gets at least one subproblem. The
//! synthetic suite mirrors that: a cross product of structural families,
//! densities and dimensions, each seeded independently.

use crate::generators::{try_generate, GenKind, MatgenError, MatrixDesc};
use nmt_formats::Csr;
use rayon::prelude::*;

/// How large the suite's matrices are. Experiments on the timing simulator
/// use `Small`/`Medium` so the full suite sweep completes in seconds;
/// `Paper` matches the paper's 4 k–44 k row filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScale {
    /// 256–1024 rows — unit/integration tests.
    Small,
    /// 1 k–4 k rows — default experiment scale.
    Medium,
    /// 4 k–44 k rows — the paper's dimension filter.
    Paper,
}

impl SuiteScale {
    /// The matrix dimensions swept at this scale.
    pub fn dims(self) -> &'static [usize] {
        match self {
            SuiteScale::Small => &[512, 1024],
            SuiteScale::Medium => &[2048, 4096],
            SuiteScale::Paper => &[4096, 8192, 16384, 32768],
        }
    }
}

/// Specification of a full synthetic suite.
#[derive(Debug, Clone)]
pub struct SuiteSpec {
    /// Scale (dimension range).
    pub scale: SuiteScale,
    /// Base seed; each matrix derives its own seed from this.
    pub base_seed: u64,
    /// Densities swept for the uniform/zipf families.
    pub densities: Vec<f64>,
    /// Zipf exponents swept for the skewed families.
    pub exponents: Vec<f64>,
}

impl SuiteSpec {
    /// The default suite: densities 1e-4 … 3e-2, exponents 0.6 … 1.4,
    /// all five structural families.
    pub fn new(scale: SuiteScale, base_seed: u64) -> Self {
        Self {
            scale,
            base_seed,
            densities: vec![1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2],
            exponents: vec![0.6, 1.0, 1.4],
        }
    }

    /// A reduced suite for fast tests (2 dims × fewer parameters).
    pub fn quick(base_seed: u64) -> Self {
        Self {
            scale: SuiteScale::Small,
            base_seed,
            densities: vec![1e-3, 1e-2],
            exponents: vec![1.0],
        }
    }

    /// Enumerate all matrix descriptors in the suite.
    pub fn descriptors(&self) -> Vec<MatrixDesc> {
        let mut out = Vec::new();
        let mut seed = self.base_seed;
        let mut next_seed = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed
        };
        for &n in self.scale.dims() {
            for &d in &self.densities {
                // Skip configurations whose expected nnz is degenerate
                // (< 1 per 4 rows) or too dense to be "sparse" (§2: < 10 %).
                if (d * n as f64) < 0.25 || d > 0.1 {
                    continue;
                }
                out.push(MatrixDesc::new(
                    format!("uniform_n{n}_d{d:.0e}"),
                    n,
                    GenKind::Uniform { density: d },
                    next_seed(),
                ));
                for &s in &self.exponents {
                    out.push(MatrixDesc::new(
                        format!("zipfrow_n{n}_d{d:.0e}_s{s}"),
                        n,
                        GenKind::ZipfRows {
                            density: d,
                            exponent: s,
                        },
                        next_seed(),
                    ));
                }
                out.push(MatrixDesc::new(
                    format!("zipfboth_n{n}_d{d:.0e}"),
                    n,
                    GenKind::ZipfBoth {
                        density: d,
                        exponent: 1.1,
                    },
                    next_seed(),
                ));
                for &burst in &[8usize, 32] {
                    // Clustered row segments need a few elements per burst.
                    if d * n as f64 >= burst as f64 / 8.0 {
                        out.push(MatrixDesc::new(
                            format!("rowburst_n{n}_d{d:.0e}_l{burst}"),
                            n,
                            GenKind::RowBursts {
                                density: d,
                                burst_len: burst,
                            },
                            next_seed(),
                        ));
                    }
                }
            }
            // Structured families parameterized by dimension only.
            for &(bw_frac, fill) in &[(0.01, 0.5), (0.03, 0.3)] {
                let bandwidth = ((n as f64 * bw_frac) as usize).max(2);
                out.push(MatrixDesc::new(
                    format!("banded_n{n}_bw{bandwidth}"),
                    n,
                    GenKind::Banded { bandwidth, fill },
                    next_seed(),
                ));
            }
            for &(block_frac, fill) in &[(0.02, 0.4), (0.05, 0.2)] {
                let block = ((n as f64 * block_frac) as usize).max(4);
                out.push(MatrixDesc::new(
                    format!("blockdiag_n{n}_b{block}"),
                    n,
                    GenKind::BlockDiag {
                        block,
                        fill,
                        background: 1e-4,
                    },
                    next_seed(),
                ));
            }
            for &ef in &[4usize, 16] {
                out.push(MatrixDesc::new(
                    format!("rmat_n{n}_ef{ef}"),
                    n,
                    GenKind::Rmat {
                        a: 0.57,
                        b: 0.19,
                        c: 0.19,
                        edge_factor: ef,
                    },
                    next_seed(),
                ));
            }
        }
        out
    }

    /// Generate every matrix in the suite in parallel.
    ///
    /// Panics on a malformed descriptor; the built-in suites are always
    /// well-formed. Use [`try_build`](Self::try_build) when descriptors
    /// come from elsewhere and a bad one must surface as a per-matrix
    /// error.
    pub fn build(&self) -> Vec<(MatrixDesc, Csr)> {
        self.try_build()
            .into_iter()
            .map(|(d, m)| {
                // nmt-lint: allow(panic) — documented panicking wrapper; try_build is the fallible API
                let m = m.expect("built-in suite descriptors are well-formed");
                (d, m)
            })
            .collect()
    }

    /// Generate every matrix in the suite in parallel, reporting each
    /// malformed descriptor as a per-matrix error instead of panicking.
    /// Output order matches [`descriptors`](Self::descriptors) regardless
    /// of thread count.
    pub fn try_build(&self) -> Vec<(MatrixDesc, Result<Csr, MatgenError>)> {
        self.descriptors()
            .into_par_iter()
            .map(|d| {
                let m = try_generate(&d);
                (d, m)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmt_formats::SparseMatrix;

    #[test]
    fn quick_suite_builds() {
        let suite = SuiteSpec::quick(11).build();
        assert!(!suite.is_empty());
        for (desc, m) in &suite {
            assert_eq!(m.shape().nrows, desc.n);
            assert!(m.nnz() > 0, "{} is empty", desc.name);
            assert!(
                m.density() <= 0.25,
                "{} too dense: {}",
                desc.name,
                m.density()
            );
        }
    }

    #[test]
    fn descriptors_are_unique_and_deterministic() {
        let spec = SuiteSpec::new(SuiteScale::Small, 5);
        let a = spec.descriptors();
        let b = spec.descriptors();
        assert_eq!(a, b);
        let names: std::collections::BTreeSet<&str> = a.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names.len(), a.len(), "duplicate descriptor names");
        let seeds: std::collections::BTreeSet<u64> = a.iter().map(|d| d.seed).collect();
        assert_eq!(seeds.len(), a.len(), "duplicate seeds");
    }

    #[test]
    fn suite_spans_families() {
        let spec = SuiteSpec::new(SuiteScale::Small, 5);
        let descs = spec.descriptors();
        for family in [
            "uniform",
            "zipfrow",
            "zipfboth",
            "banded",
            "blockdiag",
            "rmat",
        ] {
            assert!(
                descs.iter().any(|d| d.name.starts_with(family)),
                "family {family} missing"
            );
        }
    }

    #[test]
    fn paper_scale_respects_dimension_filter() {
        for &n in SuiteScale::Paper.dims() {
            assert!((4_000..=44_000).contains(&n));
        }
    }
}
