//! Structured perturbations of existing matrices.
//!
//! The SSF heuristic claims to read the *structure* of a matrix — so the
//! natural probe is to hold everything else fixed and perturb exactly one
//! structural property: shuffling columns destroys intra-row clustering
//! (entropy rises, SSF falls), shuffling rows preserves it, background
//! noise dilutes it. These perturbations power the robustness tests and
//! give library users the standard pruning/noising tools.

use nmt_formats::ops;
use nmt_formats::{Csr, SparseMatrix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn permutation(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    p.shuffle(rng);
    p
}

/// Randomly permute the rows. Row-internal structure (segments, bursts) is
/// untouched, so strip-level clustering — and hence SSF — is essentially
/// preserved.
pub fn shuffle_rows(csr: &Csr, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let perm = permutation(csr.shape().nrows, &mut rng);
    // nmt-lint: allow(panic) — permutation() returns a valid permutation of 0..nrows
    ops::permute_rows(csr, &perm).expect("a fresh permutation is always valid")
}

/// Randomly permute the columns. This scatters every row's entries across
/// strips: row segments shatter, normalized entropy rises toward 1, and a
/// clustered matrix becomes a scattered one.
pub fn shuffle_cols(csr: &Csr, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let perm = permutation(csr.shape().ncols, &mut rng);
    // nmt-lint: allow(panic) — permutation() returns a valid permutation of 0..ncols
    ops::permute_cols(csr, &perm).expect("a fresh permutation is always valid")
}

/// Shuffle both axes: the fully scattered version of the same population.
pub fn scatter(csr: &Csr, seed: u64) -> Csr {
    shuffle_cols(&shuffle_rows(csr, seed), seed ^ 0xC01)
}

/// Keep the `keep_fraction` largest-magnitude entries (global magnitude
/// pruning, the DNN-compression primitive of the paper's §1 motivation).
pub fn prune_magnitude(csr: &Csr, keep_fraction: f64) -> Csr {
    assert!(
        (0.0..=1.0).contains(&keep_fraction),
        "keep_fraction must be within [0, 1]"
    );
    let mut mags: Vec<f32> = csr.values().iter().map(|v| v.abs()).collect();
    mags.sort_unstable_by(|a, b| b.total_cmp(a));
    let keep = ((csr.nnz() as f64 * keep_fraction).round() as usize).min(csr.nnz());
    if keep == 0 {
        return ops::filter(csr, |_, _, _| false);
    }
    let threshold = mags[keep - 1];
    // Filter by threshold; break ties by keeping earlier entries until the
    // budget is exhausted.
    let mut remaining = keep;
    ops::filter(csr, |_, _, v| {
        if remaining == 0 {
            return false;
        }
        let k = v.abs() >= threshold;
        if k {
            remaining -= 1;
        }
        k
    })
}

/// Add `density` worth of uniform background entries on top of the
/// existing structure (duplicates merge).
pub fn add_background(csr: &Csr, density: f64, seed: u64) -> Csr {
    let shape = csr.shape();
    let mut rng = StdRng::seed_from_u64(seed);
    let extra = (density * shape.nrows as f64 * shape.ncols as f64).round() as usize;
    let mut coo = csr.to_coo();
    for _ in 0..extra {
        let r = rng.random_range(0..shape.nrows as u32);
        let c = rng.random_range(0..shape.ncols as u32);
        coo.push(r, c, rng.random_range(-1.0f32..1.0))
            // nmt-lint: allow(panic) — r and c are sampled inside the matrix bounds
            .expect("in bounds");
    }
    coo.canonicalize();
    Csr::from_coo(&coo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{generate, GenKind, MatrixDesc};

    fn bursty() -> Csr {
        generate(&MatrixDesc::new(
            "b",
            256,
            GenKind::RowBursts {
                density: 0.02,
                burst_len: 16,
            },
            5,
        ))
    }

    #[test]
    fn perturbations_are_deterministic_and_nnz_preserving() {
        let a = bursty();
        assert_eq!(shuffle_rows(&a, 1), shuffle_rows(&a, 1));
        assert_eq!(shuffle_cols(&a, 1), shuffle_cols(&a, 1));
        assert_eq!(shuffle_rows(&a, 1).nnz(), a.nnz());
        assert_eq!(shuffle_cols(&a, 2).nnz(), a.nnz());
        assert_eq!(scatter(&a, 3).nnz(), a.nnz());
        assert_ne!(shuffle_rows(&a, 1), shuffle_rows(&a, 2));
    }

    #[test]
    fn column_shuffle_destroys_clustering_row_shuffle_does_not() {
        // The structural claim behind the perturbation suite, measured
        // with plain run-length statistics (entropy itself is asserted in
        // the model crate's tests to avoid a dependency cycle).
        fn mean_run(csr: &Csr) -> f64 {
            let mut runs = 0usize;
            let mut total = 0usize;
            for r in 0..csr.shape().nrows {
                let (cols, _) = csr.row(r);
                let mut i = 0;
                while i < cols.len() {
                    runs += 1;
                    while i + 1 < cols.len() && cols[i + 1] == cols[i] + 1 {
                        i += 1;
                        total += 1;
                    }
                    i += 1;
                    total += 1;
                }
            }
            total as f64 / runs.max(1) as f64
        }
        let a = bursty();
        let base = mean_run(&a);
        let rowshuf = mean_run(&shuffle_rows(&a, 7));
        let colshuf = mean_run(&shuffle_cols(&a, 7));
        assert!(
            (rowshuf - base).abs() < 1e-9,
            "row shuffle keeps runs intact"
        );
        assert!(
            colshuf < base / 3.0,
            "column shuffle must shatter runs: {colshuf} vs {base}"
        );
    }

    #[test]
    fn prune_keeps_the_largest() {
        let a = bursty();
        let half = prune_magnitude(&a, 0.5);
        assert!((half.nnz() as f64 - a.nnz() as f64 * 0.5).abs() <= 1.0);
        let kept_min = half
            .values()
            .iter()
            .map(|v| v.abs())
            .fold(f32::INFINITY, f32::min);
        // Count how many original entries exceed the smallest kept one —
        // none beyond the budget may be dropped.
        let bigger = a.values().iter().filter(|v| v.abs() > kept_min).count();
        assert!(bigger <= half.nnz());
        assert_eq!(prune_magnitude(&a, 0.0).nnz(), 0);
        assert_eq!(prune_magnitude(&a, 1.0).nnz(), a.nnz());
    }

    #[test]
    fn background_raises_density() {
        let a = bursty();
        let noisy = add_background(&a, 0.01, 9);
        assert!(noisy.nnz() > a.nnz());
        // Original entries survive (values may merge with noise).
        assert!(noisy.density() > a.density());
    }
}
