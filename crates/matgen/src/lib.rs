//! Deterministic synthetic sparse-matrix generators.
//!
//! The paper evaluates on ~3,500 SuiteSparse matrices with "divergent
//! non-zero distribution and density" (§5.1), filtered to 4 k ≤ rows ≤ 44 k.
//! That collection is not available offline, so this crate generates a
//! synthetic suite that systematically sweeps the properties the paper's
//! analyses actually depend on:
//!
//! * **density** — real sparse matrices have density below 10 %, typically
//!   around 0.1 % (§2);
//! * **row-wise skew** — Zipf/power-law per-row nnz, which drives
//!   `n_nnzrow` and the entropy term of the SSF heuristic (§3.1.4);
//! * **clustering** — banded and block-diagonal structure, which produces
//!   the "heavy row segments and empty row segments" the paper associates
//!   with high locality;
//! * **graph structure** — RMAT adjacency matrices, standing in for the
//!   graph-analytics members of SuiteSparse.
//!
//! Every generator is seeded and reproducible.

#![warn(missing_docs)]

pub mod generators;
pub mod perturb;
pub mod suite;

pub use generators::{generate, try_generate, GenKind, MatgenError, MatrixDesc};
pub use suite::{SuiteScale, SuiteSpec};

use nmt_formats::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a random dense matrix with entries uniform in `[-1, 1)` —
/// the multi-vector operand `B` of SpMM.
pub fn random_dense(nrows: usize, ncols: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    DenseMatrix::from_fn(nrows, ncols, |_, _| rng.random_range(-1.0f32..1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_dense_is_deterministic() {
        let a = random_dense(8, 8, 42);
        let b = random_dense(8, 8, 42);
        assert_eq!(a, b);
        let c = random_dense(8, 8, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn random_dense_in_range() {
        let m = random_dense(16, 16, 1);
        assert!(m.as_slice().iter().all(|&v| (-1.0..1.0).contains(&v)));
    }
}
