//! Area and energy model of the transform units (§5.3).
//!
//! The paper builds circuit models of the comparator, buffer and control
//! logic in TSMC 16 nm and sizes the buffer with CACTI; this module encodes
//! the resulting constants and reproduces every derived number in §5.3:
//! one unit is 0.077 mm²; GV100 integrates one per HBM2 pseudo channel
//! (64 units, 4.9 mm², 0.6 % of the 815 mm² die); the worst-case energy is
//! 6.29 pJ per 8-byte element every 0.588 ns (7.09 pJ / 0.882 ns for
//! 12-byte fp64 elements), i.e. 0.68 W (0.51 W) with a fully loaded memory
//! system — 0.27 % of the 250 W TDP. A TU116-class part needs one unit per
//! GDDR6 channel: 24 units, 1.85 mm², 0.65 % of its 284 mm² die.

use crate::convert::ConversionStats;
use crate::timing::{ELEM_BYTES_FP32, ELEM_BYTES_FP64};
use nmt_sim::GpuConfig;
use serde::{Deserialize, Serialize};

/// Area of one conversion unit in mm² (TSMC 16 nm, §5.3).
pub const AREA_PER_UNIT_MM2: f64 = 0.077;

/// Worst-case energy per converted 8-byte (fp32) element, in pJ.
pub const ENERGY_PER_ELEM_FP32_PJ: f64 = 6.29;

/// Worst-case energy per converted 12-byte (fp64) element, in pJ.
pub const ENERGY_PER_ELEM_FP64_PJ: f64 = 7.09;

/// GV100 idle power in watts — §5.3 states the engine's 0.68 W peak is
/// "2.96 % of the idle power", implying ≈ 23 W idle.
pub const GV100_IDLE_WATTS: f64 = 23.0;

/// Derived area/energy figures for a transform-engine deployment on a
/// specific GPU (one unit per FB partition / memory channel).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaEnergyModel {
    /// Number of conversion units (== memory channels).
    pub units: usize,
    /// Total engine area in mm².
    pub total_area_mm2: f64,
    /// Engine area as a fraction of the die.
    pub area_fraction: f64,
    /// Worst-case engine power at full memory load, fp32 stream, watts.
    pub peak_power_fp32_w: f64,
    /// Worst-case engine power at full memory load, fp64 stream, watts.
    pub peak_power_fp64_w: f64,
    /// fp32 peak power as a fraction of board TDP.
    pub power_fraction_tdp: f64,
}

impl AreaEnergyModel {
    /// Size the deployment for `gpu`: one unit per partition, each sized
    /// to its channel's element rate.
    pub fn for_gpu(gpu: &GpuConfig) -> Self {
        let units = gpu.num_partitions;
        let total_area_mm2 = units as f64 * AREA_PER_UNIT_MM2;
        // Cycle time per element at this channel's bandwidth.
        let cycle32_ns = ELEM_BYTES_FP32 as f64 / gpu.channel_gbps;
        let cycle64_ns = ELEM_BYTES_FP64 as f64 / gpu.channel_gbps;
        // P = E/cycle per unit, times all units (fully loaded memory).
        let peak_power_fp32_w =
            units as f64 * ENERGY_PER_ELEM_FP32_PJ * 1e-12 / (cycle32_ns * 1e-9);
        let peak_power_fp64_w =
            units as f64 * ENERGY_PER_ELEM_FP64_PJ * 1e-12 / (cycle64_ns * 1e-9);
        Self {
            units,
            total_area_mm2,
            area_fraction: total_area_mm2 / gpu.die_area_mm2,
            peak_power_fp32_w,
            peak_power_fp64_w,
            power_fraction_tdp: peak_power_fp32_w / gpu.tdp_watts,
        }
    }

    /// The doubled-cost variant of §6.1's alternative placement: putting
    /// conversion units in the SMs instead of the FB partitions "incurs 2×
    /// area cost" (every SM needs a unit, with larger buffers for Xbar
    /// latency).
    pub fn in_sm_alternative(gpu: &GpuConfig) -> f64 {
        2.0 * Self::for_gpu(gpu).total_area_mm2
    }
}

/// Energy consumed converting the work in `stats`, in picojoules.
pub fn conversion_energy_pj(stats: &ConversionStats, fp64: bool) -> f64 {
    let per_elem = if fp64 {
        ENERGY_PER_ELEM_FP64_PJ
    } else {
        ENERGY_PER_ELEM_FP32_PJ
    };
    stats.elements as f64 * per_elem
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gv100_deployment_matches_section_53() {
        let m = AreaEnergyModel::for_gpu(&GpuConfig::gv100());
        assert_eq!(m.units, 64);
        // "the total area for our transformation units is 4.9 mm²"
        assert!((m.total_area_mm2 - 4.928).abs() < 0.01);
        // "which is 0.6% of the overall chip (815 mm²)"
        assert!(
            (m.area_fraction - 0.006).abs() < 0.0005,
            "frac {}",
            m.area_fraction
        );
        // "leading to 0.68 W (0.51 W for [12]-byte value)"
        assert!(
            (m.peak_power_fp32_w - 0.68).abs() < 0.01,
            "p32 {}",
            m.peak_power_fp32_w
        );
        assert!(
            (m.peak_power_fp64_w - 0.51).abs() < 0.01,
            "p64 {}",
            m.peak_power_fp64_w
        );
        // "the peak power of our engine is 0.27% of the TDP"
        assert!((m.power_fraction_tdp - 0.0027).abs() < 0.0002);
        // "2.96% of the idle power"
        let idle_frac = m.peak_power_fp32_w / GV100_IDLE_WATTS;
        assert!((idle_frac - 0.0296).abs() < 0.002, "idle frac {idle_frac}");
    }

    #[test]
    fn tu116_deployment_matches_section_53() {
        let m = AreaEnergyModel::for_gpu(&GpuConfig::tu116());
        assert_eq!(m.units, 24);
        // "adding 24 transform engines would cost 1.85 mm²"
        assert!((m.total_area_mm2 - 1.848).abs() < 0.01);
        // "This is 0.65% of the overall area"
        assert!(
            (m.area_fraction - 0.0065).abs() < 0.0005,
            "frac {}",
            m.area_fraction
        );
    }

    #[test]
    fn sm_placement_doubles_area() {
        let gpu = GpuConfig::gv100();
        let fb = AreaEnergyModel::for_gpu(&gpu).total_area_mm2;
        assert!((AreaEnergyModel::in_sm_alternative(&gpu) - 2.0 * fb).abs() < 1e-12);
    }

    #[test]
    fn conversion_energy_scales_with_elements() {
        let stats = ConversionStats {
            elements: 1000,
            ..Default::default()
        };
        assert!((conversion_energy_pj(&stats, false) - 6290.0).abs() < 1e-9);
        assert!((conversion_energy_pj(&stats, true) - 7090.0).abs() < 1e-9);
        let empty = ConversionStats::default();
        assert_eq!(conversion_energy_pj(&empty, false), 0.0);
    }
}
