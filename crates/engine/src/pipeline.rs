//! Cycle-level discrete simulation of the conversion unit's pipeline —
//! the validation layer under the analytic [`EngineTiming`](crate::EngineTiming) model.
//!
//! §5.3 sizes the prefetch buffer with a worst-case argument: one column
//! can demand one element every cycle, and resupplying a column costs
//! 3.3 ns of bookkeeping plus 15 ns of DRAM CL, so 256 B (32 fp32
//! elements) of per-column buffer hides the gap. This module *simulates*
//! that mechanism cycle by cycle: per-lane FIFOs, a fixed-latency refill
//! channel delivering one element per cycle (the pseudo-channel rate), and
//! a comparator that stalls when any lane with remaining work has an empty
//! FIFO. The tests confirm the paper-sized buffer sustains full
//! throughput even in the adversarial single-column case, and that
//! undersized buffers stall — i.e. the §5.3 sizing is necessary and
//! sufficient, not just plausible.

use crate::timing::{COLUMN_DEMAND_NS, DRAM_CL_NS, ELEM_BYTES_FP32};
use nmt_formats::{Csc, SparseMatrix};
use std::collections::VecDeque;

/// Configuration of the simulated pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Engine lanes (strip width), 1..=64.
    pub lanes: usize,
    /// Per-lane prefetch FIFO capacity in elements (paper: 256 B / 8 B = 32).
    pub buffer_elems: usize,
    /// Cycle time in ns (0.588 for fp32 on one HBM2 pseudo-channel).
    pub cycle_ns: f64,
    /// Refill latency in cycles: column-demand bookkeeping + DRAM CL.
    pub refill_latency_cycles: usize,
    /// Elements delivered per cycle by the channel (1 at the matched rate).
    pub refill_per_cycle: usize,
}

impl PipelineConfig {
    /// The paper's fp32 configuration for a `lanes`-wide strip.
    pub fn paper_fp32(lanes: usize) -> Self {
        let cycle_ns = ELEM_BYTES_FP32 as f64 / 13.6;
        Self {
            lanes,
            buffer_elems: 256 / ELEM_BYTES_FP32 as usize,
            cycle_ns,
            refill_latency_cycles: ((COLUMN_DEMAND_NS + DRAM_CL_NS) / cycle_ns).ceil() as usize,
            refill_per_cycle: 1,
        }
    }
}

/// Outcome of a cycle-level run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineResult {
    /// Total cycles from first fetch to last emission.
    pub cycles: u64,
    /// Cycles the comparator stalled waiting for a lane refill.
    pub stall_cycles: u64,
    /// Elements converted.
    pub elements: u64,
    /// DCSR rows emitted.
    pub rows: u64,
}

impl PipelineResult {
    /// Converted elements per cycle (≤ 1 at the matched channel rate).
    pub fn throughput(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.elements as f64 / self.cycles as f64
        }
    }

    /// Wall-clock time at `cycle_ns` per cycle.
    pub fn time_ns(&self, config: &PipelineConfig) -> f64 {
        self.cycles as f64 * config.cycle_ns
    }

    /// Cycles the comparator advanced because every needed frontier
    /// element was already buffered — the prefetch-hit count. Every
    /// non-stall cycle emits a row, so hits are `cycles - stall_cycles`.
    pub fn prefetch_hits(&self) -> u64 {
        self.cycles - self.stall_cycles
    }

    /// Fraction of comparator cycles served from the prefetch buffers
    /// (1.0 = the §5.3 buffer fully hides refill latency).
    pub fn prefetch_hit_rate(&self) -> f64 {
        if self.cycles == 0 {
            // An empty strip never touched the buffers; count that as
            // fully hidden rather than 0% hit.
            1.0
        } else {
            self.prefetch_hits() as f64 / self.cycles as f64
        }
    }

    /// Accumulate another strip's result into this one.
    pub fn merge(&mut self, other: &PipelineResult) {
        self.cycles += other.cycles;
        self.stall_cycles += other.stall_cycles;
        self.elements += other.elements;
        self.rows += other.rows;
    }
}

/// Bridge a pipeline run into the observability registry under
/// `engine.pipeline.*`: frontier-walk stalls are prefetch misses, emitting
/// cycles are prefetch hits.
pub fn publish_pipeline(obs: &nmt_obs::ObsContext, result: &PipelineResult) {
    let m = &obs.metrics;
    m.counter_add("engine.pipeline.cycles", result.cycles);
    m.counter_add("engine.pipeline.prefetch_miss", result.stall_cycles);
    m.counter_add("engine.pipeline.prefetch_hit", result.prefetch_hits());
    m.counter_add("engine.pipeline.elements", result.elements);
    m.counter_add("engine.pipeline.rows", result.rows);
    // Recompute the rate from the accumulated counters so repeated
    // publishes (one per strip) converge on the whole-matrix rate.
    let hits = m.counter("engine.pipeline.prefetch_hit");
    let cycles = m.counter("engine.pipeline.cycles");
    let rate = if cycles == 0 {
        1.0
    } else {
        hits as f64 / cycles as f64
    };
    m.gauge_set("engine.pipeline.prefetch_hit_rate", rate);
}

/// One lane's state: buffered elements (their row coordinates), the number
/// still in DRAM, and refills in flight.
struct Lane {
    fifo: VecDeque<u32>,
    /// Row coordinates not yet requested, in column order.
    remaining: VecDeque<u32>,
    /// Completion cycles of outstanding refill requests.
    in_flight: VecDeque<(u64, u32)>,
}

impl Lane {
    fn exhausted(&self) -> bool {
        self.fifo.is_empty() && self.remaining.is_empty() && self.in_flight.is_empty()
    }
}

/// Simulate converting one strip of `csc` (columns `strip_id*lanes ..`)
/// cycle by cycle under `config`.
pub fn simulate_strip(csc: &Csc, strip_id: usize, config: &PipelineConfig) -> PipelineResult {
    assert!((1..=64).contains(&config.lanes), "lanes must be 1..=64");
    assert!(
        config.buffer_elems >= 1,
        "buffer must hold at least one element"
    );
    let ncols = csc.shape().ncols;
    let col_lo = strip_id * config.lanes;
    assert!(col_lo < ncols.max(1), "strip beyond matrix");
    let width = config.lanes.min(ncols - col_lo);

    let mut lanes: Vec<Lane> = (0..width)
        .map(|i| {
            let (rows, _) = csc.col(col_lo + i);
            Lane {
                fifo: VecDeque::new(),
                remaining: rows.iter().copied().collect(),
                in_flight: VecDeque::new(),
            }
        })
        .collect();

    let mut cycle = 0u64;
    let mut stalls = 0u64;
    let mut elements = 0u64;
    let mut rows_emitted = 0u64;
    // Guard against configuration-induced livelock.
    let budget = 1_000_000u64 + 100 * csc.nnz() as u64;

    while lanes.iter().any(|l| !l.exhausted()) {
        cycle += 1;
        assert!(
            cycle < budget,
            "pipeline livelock: configuration cannot drain the strip"
        );

        // 1. Refill: the channel delivers up to `refill_per_cycle` new
        //    requests' worth of data; issue to the hungriest lanes first.
        for _ in 0..config.refill_per_cycle {
            if let Some(lane) = lanes
                .iter_mut()
                .filter(|l| {
                    !l.remaining.is_empty()
                        && l.fifo.len() + l.in_flight.len() < config.buffer_elems
                })
                .min_by_key(|l| l.fifo.len() + l.in_flight.len())
            {
                if let Some(coord) = lane.remaining.pop_front() {
                    lane.in_flight
                        .push_back((cycle + config.refill_latency_cycles as u64, coord));
                }
            }
        }
        // 2. Arrivals: requests whose latency elapsed land in the FIFO.
        for lane in &mut lanes {
            while let Some(&(ready, coord)) = lane.in_flight.front() {
                if ready > cycle {
                    break;
                }
                lane.in_flight.pop_front();
                lane.fifo.push_back(coord);
            }
        }
        // 3. Compare & emit: every non-exhausted lane must present its
        //    frontier coordinate; if one is still in flight the comparator
        //    cannot prove it has the minimum and must stall.
        let any_waiting = lanes
            .iter()
            .any(|l| l.fifo.is_empty() && !(l.remaining.is_empty() && l.in_flight.is_empty()));
        if any_waiting {
            stalls += 1;
            continue;
        }
        let min = lanes.iter().filter_map(|l| l.fifo.front().copied()).min();
        let Some(min) = min else { continue };
        for lane in &mut lanes {
            if lane.fifo.front() == Some(&min) {
                lane.fifo.pop_front();
                elements += 1;
            }
        }
        rows_emitted += 1;
    }
    PipelineResult {
        cycles: cycle,
        stall_cycles: stalls,
        elements,
        rows: rows_emitted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::ComparatorTree;
    use crate::convert::StripConverter;
    use crate::timing::EngineTiming;
    use nmt_formats::{Coo, Csr};

    /// Adversarial single-column workload: every element lives in one
    /// column, so that lane demands one element per cycle — the §5.3
    /// worst case the 256 B buffer was sized for.
    fn single_column(n: usize) -> Csc {
        let rows: Vec<u32> = (0..n as u32).collect();
        let cols = vec![0u32; n];
        let vals = vec![1.0f32; n];
        Csr::from_coo(&Coo::from_triplets(n, 8, &rows, &cols, &vals).unwrap()).to_csc()
    }

    fn uniform(n: usize, per_col: usize) -> Csc {
        let mut r = Vec::new();
        let mut c = Vec::new();
        for col in 0..8u32 {
            for i in 0..per_col as u32 {
                r.push((i * 7 + col) % n as u32);
                c.push(col);
            }
        }
        let mut coo = Coo::new(n, 8).unwrap();
        for (&row, &col) in r.iter().zip(&c) {
            coo.push(row, col, 1.0).unwrap();
        }
        coo.canonicalize();
        Csr::from_coo(&coo).to_csc()
    }

    #[test]
    fn paper_buffer_sustains_worst_case() {
        // One hot column, paper-sized buffer: after the initial fill the
        // comparator never starves — throughput ~1 element/cycle.
        let csc = single_column(2000);
        let config = PipelineConfig::paper_fp32(8);
        let r = simulate_strip(&csc, 0, &config);
        assert_eq!(r.elements, 2000);
        assert_eq!(r.rows, 2000);
        // Stalls: the initial latency window plus a small credit-return
        // bubble (the paper's 18.8 ns buffer covers the 18.3 ns demand
        // with almost no slack — the sizing is tight by design).
        assert!(
            r.stall_cycles <= config.refill_latency_cycles as u64 + r.elements / 20,
            "steady-state stalls: {} (latency {})",
            r.stall_cycles,
            config.refill_latency_cycles
        );
        assert!(r.throughput() > 0.93, "throughput {}", r.throughput());
    }

    #[test]
    fn undersized_buffer_stalls() {
        // With a 2-element buffer the single-column demand cannot be
        // hidden: the pipeline spends most cycles stalled.
        let csc = single_column(2000);
        let mut config = PipelineConfig::paper_fp32(8);
        config.buffer_elems = 2;
        let r = simulate_strip(&csc, 0, &config);
        assert_eq!(r.elements, 2000);
        assert!(
            r.throughput() < 0.5,
            "a starved pipeline cannot sustain rate: {}",
            r.throughput()
        );
        assert!(r.stall_cycles > r.elements / 2);
    }

    #[test]
    fn buffer_sizing_threshold_matches_timing_model() {
        // The minimal non-stalling buffer is exactly the refill latency's
        // worth of elements — the §5.3 sizing rule.
        let csc = single_column(4000);
        let base = PipelineConfig::paper_fp32(8);
        let sized = PipelineConfig {
            buffer_elems: base.refill_latency_cycles + 1,
            ..base
        };
        let r = simulate_strip(&csc, 0, &sized);
        assert!(r.throughput() > 0.95, "latency-sized buffer sustains rate");
        let undersized = PipelineConfig {
            buffer_elems: base.refill_latency_cycles / 2,
            ..base
        };
        let r = simulate_strip(&csc, 0, &undersized);
        assert!(
            r.throughput() < 0.95,
            "half-sized buffer cannot: {}",
            r.throughput()
        );
    }

    #[test]
    fn cycle_simulation_agrees_with_analytic_model() {
        // The discrete simulation and EngineTiming must agree within the
        // pipeline-fill margin on a balanced workload.
        let csc = uniform(64, 100);
        let config = PipelineConfig::paper_fp32(8);
        let r = simulate_strip(&csc, 0, &config);
        let mut conv = StripConverter::new(&csc, 0, 8);
        let _ = conv.convert_strip(64);
        let analytic = EngineTiming::fp32(13.6, &ComparatorTree::new(8).unwrap().structure())
            .conversion_time_ns(&conv.stats());
        let simulated = r.time_ns(&config);
        let rel = (simulated - analytic).abs() / analytic;
        assert!(
            rel < 0.25,
            "cycle sim {simulated:.1} ns vs analytic {analytic:.1} ns ({rel:.2} off)"
        );
    }

    #[test]
    fn rows_merge_lanes_in_one_cycle() {
        // A full row across all 8 lanes retires 8 elements in one
        // comparator pass: cycles ≈ rows, throughput ≈ lanes.
        let mut coo = Coo::new(100, 8).unwrap();
        for r in 0..100u32 {
            for c in 0..8u32 {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        let csc = Csr::from_coo(&coo).to_csc();
        let config = PipelineConfig::paper_fp32(8);
        let res = simulate_strip(&csc, 0, &config);
        assert_eq!(res.elements, 800);
        assert_eq!(res.rows, 100);
        // One row per cycle once full; channel refill (1 elem/cycle)
        // becomes the bottleneck: 800 refills dominate.
        assert!(res.cycles >= 800);
    }

    #[test]
    fn empty_strip_finishes_immediately() {
        let csc = Csc::new(4, 8, vec![0; 9], vec![], vec![]).unwrap();
        let r = simulate_strip(&csc, 0, &PipelineConfig::paper_fp32(8));
        assert_eq!(r.elements, 0);
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn result_accessors() {
        let r = PipelineResult {
            cycles: 100,
            stall_cycles: 10,
            elements: 90,
            rows: 45,
        };
        assert!((r.throughput() - 0.9).abs() < 1e-12);
        let cfg = PipelineConfig::paper_fp32(8);
        assert!((r.time_ns(&cfg) - 100.0 * cfg.cycle_ns).abs() < 1e-9);
        assert_eq!(r.prefetch_hits(), 90);
        assert!((r.prefetch_hit_rate() - 0.9).abs() < 1e-12);
        let zero = PipelineResult {
            cycles: 0,
            stall_cycles: 0,
            elements: 0,
            rows: 0,
        };
        assert_eq!(zero.throughput(), 0.0);
        assert_eq!(zero.prefetch_hit_rate(), 1.0, "empty strip is fully hidden");
        let mut acc = zero;
        acc.merge(&r);
        acc.merge(&r);
        assert_eq!(acc.cycles, 200);
        assert_eq!(acc.stall_cycles, 20);
        assert_eq!(acc.elements, 180);
        assert_eq!(acc.rows, 90);
    }

    #[test]
    fn publish_pipeline_accumulates_hit_rate() {
        let csc = single_column(500);
        let config = PipelineConfig::paper_fp32(8);
        let r = simulate_strip(&csc, 0, &config);
        let obs = nmt_obs::ObsContext::disabled();
        publish_pipeline(&obs, &r);
        publish_pipeline(&obs, &r);
        assert_eq!(obs.metrics.counter("engine.pipeline.cycles"), 2 * r.cycles);
        assert_eq!(
            obs.metrics.counter("engine.pipeline.prefetch_miss"),
            2 * r.stall_cycles
        );
        let rate = obs
            .metrics
            .gauge("engine.pipeline.prefetch_hit_rate")
            .unwrap();
        assert!((rate - r.prefetch_hit_rate()).abs() < 1e-12);
    }
}
