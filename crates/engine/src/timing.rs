//! Pipeline timing and prefetch-buffer sizing for the conversion unit
//! (§5.3 "Throughput demand" and "Internal buffer demand").
//!
//! The engine's goal is to convert at least as fast as DRAM can deliver
//! input, "thereby always providing better performance than the baseline".
//! The worst case for throughput is emitting a single-element DCSR row:
//! 8 bytes of input (4-byte index + 4-byte fp32 value) must then be
//! consumed every 0.588 ns — one HBM2 pseudo-channel's 13.6 GB/s rate —
//! or every 0.882 ns for the 12-byte fp64 case. The unit is pipelined so
//! that its longest stage (the 0.339 ns coordinate comparator) fits well
//! inside that cycle budget.

use crate::comparator::TreeStructure;
use crate::convert::ConversionStats;

/// Time to determine which column entries were consumed and must be
/// refilled (steps ❹–❺ of Figure 14): 3.3 ns (§5.3).
pub const COLUMN_DEMAND_NS: f64 = 3.3;

/// DRAM column-access latency (CL): 15 ns (§5.3).
pub const DRAM_CL_NS: f64 = 15.0;

/// Input element size for fp32 matrices: 4-byte index + 4-byte value.
pub const ELEM_BYTES_FP32: u64 = 8;

/// Input element size for fp64 matrices: 4-byte index + 8-byte value.
pub const ELEM_BYTES_FP64: u64 = 12;

/// Timing model of one conversion unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineTiming {
    /// Target cycle time in ns (the channel delivers one element per cycle).
    pub cycle_ns: f64,
    /// Bytes of one input element at this precision.
    pub elem_bytes: u64,
    /// Pipeline depth in stages (comparator tree depth + input fetch +
    /// frontier update + output drive).
    pub pipeline_depth: usize,
    /// Longest stage latency in ns.
    pub max_stage_ns: f64,
}

impl EngineTiming {
    /// Build the timing model for a channel of `channel_gbps` and a
    /// comparator tree of the given structure, at fp32 precision.
    pub fn fp32(channel_gbps: f64, tree: &TreeStructure) -> Self {
        Self::with_elem(channel_gbps, tree, ELEM_BYTES_FP32)
    }

    /// Same at fp64 precision (12-byte elements).
    pub fn fp64(channel_gbps: f64, tree: &TreeStructure) -> Self {
        Self::with_elem(channel_gbps, tree, ELEM_BYTES_FP64)
    }

    fn with_elem(channel_gbps: f64, tree: &TreeStructure, elem_bytes: u64) -> Self {
        assert!(channel_gbps > 0.0, "channel bandwidth must be positive");
        Self {
            cycle_ns: elem_bytes as f64 / channel_gbps,
            elem_bytes,
            // boundary check/issue + comparator stages + frontier update +
            // DCSR output drive.
            pipeline_depth: tree.depth + 3,
            max_stage_ns: tree.stage_latency_ns,
        }
    }

    /// True when every pipeline stage fits in the cycle budget — the §5.3
    /// feasibility condition ("the longest latency in our pipeline is
    /// 0.339 ns", against a 0.588 ns target).
    pub fn meets_throughput(&self) -> bool {
        self.max_stage_ns <= self.cycle_ns
    }

    /// Time to convert the work described by `stats`, assuming the prefetch
    /// buffer hides column refill latency: the pipeline retires one
    /// comparator pass per cycle and streams at most one input element per
    /// cycle, so the bound is `max(passes, elements)` plus the fill.
    pub fn conversion_time_ns(&self, stats: &ConversionStats) -> f64 {
        let cycles = stats.comparator_passes.max(stats.elements) + self.pipeline_depth as u64;
        cycles as f64 * self.cycle_ns
    }

    /// Sustained conversion bandwidth for `stats` in GB/s of input stream.
    pub fn conversion_gbps(&self, stats: &ConversionStats) -> f64 {
        let t = self.conversion_time_ns(stats);
        if t == 0.0 {
            0.0
        } else {
            (stats.elements * self.elem_bytes) as f64 / t
        }
    }
}

/// The per-column prefetch buffer that hides the latency of re-supplying
/// column data from DRAM (§5.3 "Internal buffer demand").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchBuffer {
    /// Bytes of buffer per column lane.
    pub bytes_per_column: u64,
    /// Number of column lanes (64 for the strip-wide engine).
    pub columns: usize,
}

impl PrefetchBuffer {
    /// The paper's configuration: 256 bytes per column, 64 columns =
    /// 16 KB per conversion unit.
    pub fn paper_default() -> Self {
        Self {
            bytes_per_column: 256,
            columns: 64,
        }
    }

    /// Size a buffer to hide `latency_ns` under the worst-case per-column
    /// demand of one element per cycle, rounding up to a power of two.
    pub fn sized_to_hide(latency_ns: f64, timing: &EngineTiming, columns: usize) -> Self {
        let elems = (latency_ns / timing.cycle_ns).ceil() as u64;
        let bytes = (elems * timing.elem_bytes).next_power_of_two();
        Self {
            bytes_per_column: bytes,
            columns,
        }
    }

    /// Total capacity of the unit's internal buffer.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_per_column * self.columns as u64
    }

    /// How long this buffer can feed one column at the worst-case rate of
    /// one element per cycle — must cover [`COLUMN_DEMAND_NS`] +
    /// [`DRAM_CL_NS`].
    pub fn hideable_ns(&self, timing: &EngineTiming) -> f64 {
        (self.bytes_per_column / timing.elem_bytes) as f64 * timing.cycle_ns
    }

    /// The latency that must be hidden: column-consumption bookkeeping plus
    /// the DRAM column access.
    pub fn required_hide_ns() -> f64 {
        COLUMN_DEMAND_NS + DRAM_CL_NS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::{ComparatorTree, STAGE_LATENCY_NS};

    fn tree64() -> TreeStructure {
        ComparatorTree::new(64).unwrap().structure()
    }

    #[test]
    fn fp32_cycle_matches_paper() {
        // One HBM2 pseudo channel: 13.6 GB/s -> 8 B every 0.588 ns.
        let t = EngineTiming::fp32(13.6, &tree64());
        assert!((t.cycle_ns - 0.588).abs() < 0.001, "cycle {}", t.cycle_ns);
        assert!(t.meets_throughput());
    }

    #[test]
    fn fp64_cycle_matches_paper() {
        // 12 B every 0.882 ns.
        let t = EngineTiming::fp64(13.6, &tree64());
        assert!((t.cycle_ns - 0.882).abs() < 0.001, "cycle {}", t.cycle_ns);
        assert!(t.meets_throughput());
    }

    #[test]
    fn stage_latency_fits_cycle() {
        // §5.3: longest stage 0.339 ns < 0.588 ns cycle.
        let t = EngineTiming::fp32(13.6, &tree64());
        assert!((STAGE_LATENCY_NS - 0.339).abs() < 1e-12);
        assert!(t.max_stage_ns < t.cycle_ns);
    }

    #[test]
    fn paper_buffer_hides_required_latency() {
        // 256 B / 8 B = 32 elements x 0.588 ns = 18.8 ns, covering the
        // 3.3 + 15 = 18.3 ns supply latency — "to be able to hide 18.8 ns
        // in both single-precision and double-precision cases".
        let buf = PrefetchBuffer::paper_default();
        assert_eq!(buf.total_bytes(), 16 * 1024); // 16 KB per unit
        let t32 = EngineTiming::fp32(13.6, &tree64());
        let hide32 = buf.hideable_ns(&t32);
        assert!((hide32 - 18.8).abs() < 0.1, "hide {hide32}");
        assert!(hide32 >= PrefetchBuffer::required_hide_ns());
        // fp64: 256/12 = 21 elements x 0.882 = 18.8 ns as well.
        let t64 = EngineTiming::fp64(13.6, &tree64());
        let hide64 = buf.hideable_ns(&t64);
        assert!(
            hide64 >= PrefetchBuffer::required_hide_ns(),
            "hide {hide64}"
        );
    }

    #[test]
    fn sized_to_hide_reproduces_256b() {
        let t32 = EngineTiming::fp32(13.6, &tree64());
        let buf = PrefetchBuffer::sized_to_hide(PrefetchBuffer::required_hide_ns(), &t32, 64);
        assert_eq!(buf.bytes_per_column, 256);
    }

    #[test]
    fn conversion_time_tracks_elements() {
        let t = EngineTiming::fp32(13.6, &tree64());
        let stats = ConversionStats {
            comparator_passes: 100,
            lane_slots: 6400,
            elements: 500,
            rows_emitted: 100,
            tiles: 1,
            input_bytes: 4000,
            output_bytes: 5000,
        };
        let ns = t.conversion_time_ns(&stats);
        // 500 element cycles + 9 pipeline-fill cycles.
        assert!((ns - 509.0 * t.cycle_ns).abs() < 1e-9);
        // Sustained bandwidth approaches the channel rate.
        assert!(t.conversion_gbps(&stats) > 13.0);
    }

    #[test]
    fn worst_case_single_element_rows_still_match_channel() {
        // One element per row: passes == elements (+1), throughput still one
        // element per cycle -> the engine never falls behind the channel.
        let t = EngineTiming::fp32(13.6, &tree64());
        let stats = ConversionStats {
            comparator_passes: 1001,
            lane_slots: 1001,
            elements: 1000,
            rows_emitted: 1000,
            tiles: 1,
            input_bytes: 8000,
            output_bytes: 16000,
        };
        let gbps = t.conversion_gbps(&stats);
        assert!(gbps > 13.4, "gbps {gbps}");
    }
}
