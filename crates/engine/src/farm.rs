//! The parallel engine farm: one conversion unit per FB partition (§6.1).
//!
//! The paper places a transform engine in *every* FB partition and spreads
//! each strip's tiles across them (tile rotation, Figure 17) so no single
//! partition camps. This module is the functional-model counterpart: the
//! strips of a matrix are converted by per-partition [`StripConverter`]s
//! running rayon-parallel, and every counter is reduced through
//! per-partition collectors in stable (partition-index) order.
//!
//! Determinism contract: the farm's outputs — the tiles, the merged
//! [`ConversionStats`], the per-partition loads, and the switch counters —
//! are **byte-identical regardless of thread count**. Workers return their
//! results keyed by strip index; the reduction then walks strips in
//! ascending order and partitions in ascending order, so the merge order
//! (and therefore every sum) never depends on scheduling.

use crate::convert::{ConversionStats, StripConverter};
use crate::placement::{Layout, PlacementError, SwitchCost};
use nmt_fault::{FaultPlan, FaultRecord, FaultSite};
use nmt_formats::{Csc, DcsrTile, Index, SparseMatrix};
use nmt_obs::{EventSite, FlightRecorder};
use rayon::prelude::*;

/// Errors produced by a farm conversion: a placement misconfiguration, or
/// an injected fault that escalated past the per-strip retry policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FarmError {
    /// The placement configuration was invalid.
    Placement(PlacementError),
    /// An injected fault survived its retry and must escalate to the
    /// planner's degraded-mode policy.
    Fault {
        /// Site where the fault fired.
        site: FaultSite,
        /// Instance key within the site (strip id, partition id, ...).
        key: u64,
        /// Human-readable description.
        detail: String,
    },
}

impl std::fmt::Display for FarmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FarmError::Placement(e) => write!(f, "{e}"),
            FarmError::Fault { site, key, detail } => {
                write!(f, "injected fault at {site}#{key}: {detail}")
            }
        }
    }
}

impl std::error::Error for FarmError {}

impl From<PlacementError> for FarmError {
    fn from(e: PlacementError) -> Self {
        FarmError::Placement(e)
    }
}

/// Configuration of the engine farm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FarmConfig {
    /// Number of FB partitions (engines). GV100 has 64.
    pub partitions: usize,
    /// Tile → partition placement policy.
    pub layout: Layout,
    /// Optional fault-injection plan. Faults key off `(seed, site,
    /// strip/partition id)` only, so a faulted farm is as deterministic
    /// as a clean one.
    pub fault: Option<FaultPlan>,
    /// Draw converter scratch and tile buffers from the global pools
    /// ([`crate::mem`]). Pooling is output-invariant — pooled buffers
    /// are always handed out empty — so this only changes allocator
    /// traffic; `false` is the reference path the determinism proptests
    /// compare against.
    pub pool: bool,
}

impl FarmConfig {
    /// The paper's configuration: 64 FB partitions with tile rotation.
    pub fn paper_default() -> Self {
        Self {
            partitions: 64,
            layout: Layout::TileRotated,
            fault: None,
            pool: true,
        }
    }

    /// A farm sized to a simulated GPU's partition count, with rotation.
    pub fn for_partitions(partitions: usize) -> Self {
        Self {
            partitions,
            layout: Layout::TileRotated,
            fault: None,
            pool: true,
        }
    }

    /// The same farm with a fault plan installed.
    pub fn with_fault(mut self, plan: Option<FaultPlan>) -> Self {
        self.fault = plan;
        self
    }

    /// The same farm with buffer pooling disabled (fresh allocations per
    /// strip/tile — the pre-pool reference behaviour).
    pub fn without_pool(mut self) -> Self {
        self.pool = false;
        self
    }
}

/// Work served by one FB partition's engine during a farm conversion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionWork {
    /// Tiles this partition's engine produced.
    pub tiles: u64,
    /// Merged converter counters for those tiles.
    pub stats: ConversionStats,
}

/// Result of a whole-matrix farm conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct FarmRun {
    /// The converted tiles, strip-major: `strips[s][t]`.
    pub strips: Vec<Vec<DcsrTile>>,
    /// Totals across every engine (equals the serial conversion's stats).
    pub stats: ConversionStats,
    /// Merged counters per strip, index = strip id — the kernel layer's
    /// per-strip histograms read these without re-running converters.
    pub per_strip: Vec<ConversionStats>,
    /// Per-partition collectors, index = partition id (always
    /// `config.partitions` entries; idle partitions report zeros).
    pub per_partition: Vec<PartitionWork>,
    /// Partition hand-offs: consecutive tiles of a strip living in
    /// different partitions (§6.1's `next_fb_ptr` + frontier transfer).
    pub switches: u64,
    /// Bytes moved by those hand-offs, priced by [`SwitchCost`].
    pub switch_bytes: u64,
    /// Injected faults absorbed locally (retried strips, detected metadata
    /// corruption, dropped partitions), in deterministic order: dropped
    /// partitions ascending, then strip events ascending by strip id.
    pub faults: Vec<FaultRecord>,
}

impl FarmRun {
    /// Per-partition served bytes (engine output), the camping metric fed
    /// to [`crate::placement::imbalance`].
    pub fn partition_loads(&self) -> Vec<u64> {
        self.per_partition
            .iter()
            .map(|p| p.stats.output_bytes)
            .collect()
    }
}

/// Bridge a farm run's placement counters into the observability registry
/// under `engine.farm.*`.
pub fn publish_farm(obs: &nmt_obs::ObsContext, farm: &FarmRun) {
    let m = &obs.metrics;
    m.counter_add("engine.farm.switches", farm.switches);
    m.counter_add("engine.farm.switch_bytes", farm.switch_bytes);
    m.gauge_set("engine.farm.partitions", farm.per_partition.len() as f64);
    m.gauge_set(
        "engine.farm.imbalance",
        crate::placement::imbalance(&farm.partition_loads()),
    );
    if !farm.faults.is_empty() {
        m.counter_add("fault.injected", farm.faults.len() as u64);
        m.counter_add(
            "fault.retries",
            farm.faults.iter().filter(|f| f.retried).count() as u64,
        );
        m.counter_add(
            "fault.dropped_partitions",
            farm.faults
                .iter()
                .filter(|f| f.site == FaultSite::PartitionDropout)
                .count() as u64,
        );
    }
}

/// Per-strip result produced by one parallel worker: the strip's tiles
/// plus a stats delta per tile, so the reducer can attribute each tile to
/// its owning partition without re-running the converter.
struct StripOutput {
    tiles: Vec<DcsrTile>,
    per_tile: Vec<ConversionStats>,
}

/// Convert one strip, snapshotting the converter counters around every
/// tile. The converter's setup cost (the Figure 14 ❶ pointer loads) lands
/// in the first tile's delta so the per-tile deltas sum to the strip total.
fn convert_strip_tracked(
    csc: &Csc,
    strip_id: usize,
    tile_w: usize,
    tile_h: usize,
    pool: bool,
) -> StripOutput {
    let nrows = csc.shape().nrows;
    let mut conv = StripConverter::with_view(csc.view(), strip_id, tile_w, pool);
    let ntiles = nrows.max(1).div_ceil(tile_h.max(1));
    let mut tiles = crate::mem::take_tiles(pool, ntiles);
    let mut per_tile = crate::mem::take_stats(pool, ntiles);
    let mut before = ConversionStats::default();
    let mut row_start: Index = 0;
    while (row_start as usize) < nrows.max(1) {
        tiles.push(conv.next_tile(row_start, tile_h));
        let after = conv.stats();
        per_tile.push(after.delta(&before));
        before = after;
        row_start += tile_h as Index;
        if nrows == 0 {
            break;
        }
    }
    conv.recycle();
    StripOutput { tiles, per_tile }
}

/// Convert one strip under a fault plan, applying the local degraded-mode
/// policy: a `ConvertStrip` fault is retried once (a distinct deterministic
/// draw); a `MetadataCorruption` fault corrupts a *clone* of a produced
/// tile and must be rejected by [`DcsrTile::validate`] with a typed error,
/// after which the strip's (uncorrupted) output is used and the event is
/// recorded as a retry. Only a failed retry escalates to [`FarmError`].
fn convert_strip_faulted(
    csc: &Csc,
    strip_id: usize,
    tile_w: usize,
    tile_h: usize,
    plan: Option<FaultPlan>,
    pool: bool,
    flight: &FlightRecorder,
) -> Result<(StripOutput, Vec<FaultRecord>), FarmError> {
    let key = strip_id as u64;
    // nmt-lint: allow(hot-alloc) — Vec::new defers allocation until a fault actually fires (cold path)
    let mut faults = Vec::new();
    if let Some(plan) = plan {
        if plan.fires(FaultSite::ConvertStrip, key) {
            if plan.retry_fires(FaultSite::ConvertStrip, key) {
                flight.record(EventSite::FaultConvertStrip, 2, key, 0);
                flight.record(EventSite::FarmStrip, 2, key, 0);
                return Err(FarmError::Fault {
                    site: FaultSite::ConvertStrip,
                    key,
                    detail: format!("strip {strip_id} conversion failed twice (retry exhausted)"),
                });
            }
            flight.record(EventSite::FaultConvertStrip, 1, key, 0);
            flight.record(EventSite::FarmStrip, 1, key, 0);
            faults.push(FaultRecord {
                site: FaultSite::ConvertStrip,
                key,
                retried: true,
                fell_back: false,
                detail: format!("strip {strip_id} conversion failed; retry succeeded"),
            });
        }
    }
    let out = convert_strip_tracked(csc, strip_id, tile_w, tile_h, pool);
    if let Some(plan) = plan {
        if plan.fires(FaultSite::MetadataCorruption, key) {
            // Corrupt a clone — never the real output — and require the
            // validator to reject it with a typed FormatError.
            let mut corrupted = out.tiles[0].clone();
            corrupted
                .rowptr
                .push(corrupted.rowptr.last().copied().unwrap_or(0) + 1);
            match corrupted.validate() {
                Err(e) => {
                    flight.record(EventSite::FaultMetadataCorruption, 1, key, 0);
                    faults.push(FaultRecord {
                        site: FaultSite::MetadataCorruption,
                        key,
                        retried: true,
                        fell_back: false,
                        detail: format!(
                            "corrupted tile metadata rejected ({e}); strip re-converted"
                        ),
                    });
                }
                Ok(()) => {
                    flight.record(EventSite::FaultMetadataCorruption, 2, key, 0);
                    return Err(FarmError::Fault {
                        site: FaultSite::MetadataCorruption,
                        key,
                        detail: format!("corrupted metadata in strip {strip_id} went undetected"),
                    });
                }
            }
        }
    }
    Ok((out, faults))
}

/// Convert an entire CSC matrix through the parallel engine farm.
///
/// Strips are converted rayon-parallel (`RAYON_NUM_THREADS` respected);
/// the reduction walks strips and partitions in ascending index order, so
/// the result is identical to a serial run. Total stats equal
/// [`crate::convert::convert_matrix`]'s, with the added per-partition
/// attribution and hand-off accounting.
pub fn convert_matrix_farm(
    csc: &Csc,
    tile_w: usize,
    tile_h: usize,
    config: FarmConfig,
) -> Result<FarmRun, FarmError> {
    convert_matrix_farm_obs(csc, tile_w, tile_h, config, &nmt_obs::ObsContext::disabled())
}

/// [`convert_matrix_farm`] with worker-side observability: the whole farm
/// runs under an `engine.farm` span, every strip conversion records an
/// `engine.farm.strip` span **on the rayon worker that ran it** (so the
/// trace shows one lane per worker and the profiler can compute busy/idle
/// and strips-in-flight), and the index-ordered reduction is wrapped in
/// `engine.farm.reduce`. Spans never feed back into the conversion:
/// outputs stay byte-identical to [`convert_matrix_farm`] at any thread
/// count, with or without a live recorder.
pub fn convert_matrix_farm_obs(
    csc: &Csc,
    tile_w: usize,
    tile_h: usize,
    config: FarmConfig,
    obs: &nmt_obs::ObsContext,
) -> Result<FarmRun, FarmError> {
    // Spans are skipped (not opened-and-dropped) on a disabled context:
    // a dead span still costs a sink lock on drop, which would serialize
    // the per-strip workers for nothing.
    let watching = obs.is_enabled();
    let _farm_span = watching.then(|| obs.span("engine.farm"));
    if config.partitions == 0 {
        return Err(PlacementError::NoPartitions.into());
    }
    // Partition dropout rolls once per partition id, before any strip work:
    // surviving engines absorb the dropped partitions' placements. All
    // partitions dropping is unrecoverable and escalates.
    // nmt-lint: allow(hot-alloc) — once per matrix, populated only when faults fire
    let mut faults = Vec::new();
    let mut active: Vec<usize> = Vec::with_capacity(config.partitions);
    for p in 0..config.partitions {
        if config
            .fault
            .is_some_and(|plan| plan.fires(FaultSite::PartitionDropout, p as u64))
        {
            obs.flight
                .record(EventSite::FaultPartitionDropout, 1, p as u64, 0);
            faults.push(FaultRecord {
                site: FaultSite::PartitionDropout,
                key: p as u64,
                retried: false,
                fell_back: false,
                detail: format!("partition {p} dropped; placements remapped to survivors"),
            });
        } else {
            active.push(p);
        }
    }
    if active.is_empty() {
        obs.flight
            .record(EventSite::FaultPartitionDropout, 2, 0, config.partitions as u64);
        return Err(FarmError::Fault {
            site: FaultSite::PartitionDropout,
            key: 0,
            detail: format!("all {} partitions dropped", config.partitions),
        });
    }
    let nstrips = nmt_formats::strip_count(csc.shape().ncols, tile_w);
    let outputs: Vec<Result<(StripOutput, Vec<FaultRecord>), FarmError>> = (0..nstrips)
        .into_par_iter()
        .map(|s| {
            let mut strip_span = watching.then(|| obs.span("engine.farm.strip"));
            if let Some(sp) = strip_span.as_mut() {
                sp.counter("strip", s as f64);
            }
            obs.flight.record(EventSite::FarmStrip, 0, s as u64, 0);
            convert_strip_faulted(csc, s, tile_w, tile_h, config.fault, config.pool, &obs.flight)
        })
        .collect();

    // Deterministic reduction: strips ascending, tiles ascending within a
    // strip, partition collectors indexed (not ordered by completion). A
    // failed strip surfaces as the *lowest-strip-id* error regardless of
    // which worker hit it first in wall-clock terms.
    let _reduce_span = watching.then(|| obs.span("engine.farm.reduce"));
    obs.flight
        .record(EventSite::FarmReduce, 0, nstrips as u64, active.len() as u64);
    let cost = SwitchCost { lanes: tile_w };
    // nmt-lint: allow(hot-alloc) — one partition-table allocation per matrix, size known only here
    let mut per_partition = vec![PartitionWork::default(); config.partitions];
    let mut per_strip = Vec::with_capacity(nstrips);
    let mut total = ConversionStats::default();
    let mut switches = 0u64;
    let mut strips = Vec::with_capacity(nstrips);
    for (s, res) in outputs.into_iter().enumerate() {
        let (out, strip_faults) = res?;
        faults.extend(strip_faults);
        let mut prev_partition = None;
        let mut strip_total = ConversionStats::default();
        for (t, delta) in out.per_tile.iter().enumerate() {
            // nmt-lint: allow(slice-index) — partition_index reduces modulo active.len(), so the index is always in bounds
            let p = active[config.layout.partition_index(s, t, active.len())];
            if let Some(slot) = per_partition.get_mut(p) {
                slot.tiles += 1;
                slot.stats.merge(delta);
            }
            strip_total.merge(delta);
            total.merge(delta);
            if prev_partition.is_some_and(|prev| prev != p) {
                switches += 1;
            }
            prev_partition = Some(p);
        }
        per_strip.push(strip_total);
        strips.push(out.tiles);
        crate::mem::put_stats(config.pool, out.per_tile);
    }
    Ok(FarmRun {
        strips,
        stats: total,
        per_strip,
        per_partition,
        switches,
        switch_bytes: switches * cost.bytes_per_switch(),
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert::convert_matrix;
    use nmt_formats::{Coo, Csr};

    fn sample_csc(n: usize, seed: u64) -> Csc {
        let mut entries = Vec::new();
        let mut state = seed | 1;
        for _ in 0..n * 4 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = (state >> 33) as usize % n;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let c = (state >> 33) as usize % n;
            entries.push((r as u32, c as u32, (1 + r + c) as f32));
        }
        entries.sort_by_key(|e| (e.0, e.1));
        entries.dedup_by_key(|e| (e.0, e.1));
        let rows: Vec<u32> = entries.iter().map(|e| e.0).collect();
        let cols: Vec<u32> = entries.iter().map(|e| e.1).collect();
        let vals: Vec<f32> = entries.iter().map(|e| e.2).collect();
        let coo = Coo::from_triplets(n, n, &rows, &cols, &vals).unwrap();
        Csr::from_coo(&coo).to_csc()
    }

    #[test]
    fn farm_matches_serial_conversion() {
        let csc = sample_csc(96, 7);
        let (serial_tiles, serial_stats) = convert_matrix(&csc, 16, 16);
        let farm = convert_matrix_farm(&csc, 16, 16, FarmConfig::for_partitions(4)).unwrap();
        assert_eq!(farm.strips, serial_tiles);
        assert_eq!(farm.stats, serial_stats);
    }

    #[test]
    fn per_partition_stats_sum_to_total() {
        let csc = sample_csc(64, 3);
        let farm = convert_matrix_farm(&csc, 8, 8, FarmConfig::for_partitions(4)).unwrap();
        let mut summed = ConversionStats::default();
        let mut tiles = 0;
        for p in &farm.per_partition {
            summed.merge(&p.stats);
            tiles += p.tiles;
        }
        assert_eq!(summed, farm.stats);
        assert_eq!(tiles, farm.stats.tiles);
        let mut strip_sum = ConversionStats::default();
        for s in &farm.per_strip {
            strip_sum.merge(s);
        }
        assert_eq!(strip_sum, farm.stats, "per-strip view sums to total too");
    }

    #[test]
    fn rotation_switches_partitions_between_tiles() {
        let csc = sample_csc(64, 5);
        let rotated = convert_matrix_farm(
            &csc,
            8,
            8,
            FarmConfig {
                partitions: 4,
                layout: Layout::TileRotated,
                fault: None,
                pool: true,
            },
        )
        .unwrap();
        let naive = convert_matrix_farm(
            &csc,
            8,
            8,
            FarmConfig {
                partitions: 4,
                layout: Layout::StripPerPartition,
                fault: None,
                pool: true,
            },
        )
        .unwrap();
        // Strip-per-partition never hands off; rotation hands off on every
        // tile step of every strip.
        assert_eq!(naive.switches, 0);
        assert_eq!(naive.switch_bytes, 0);
        let tile_steps: u64 = rotated
            .strips
            .iter()
            .map(|s| (s.len() as u64).saturating_sub(1))
            .sum();
        assert_eq!(rotated.switches, tile_steps);
        assert_eq!(
            rotated.switch_bytes,
            rotated.switches * SwitchCost { lanes: 8 }.bytes_per_switch()
        );
        // Same tiles and totals either way: placement changes ownership,
        // not the conversion.
        assert_eq!(rotated.strips, naive.strips);
        assert_eq!(rotated.stats, naive.stats);
    }

    #[test]
    fn rotation_balances_loads() {
        let csc = sample_csc(128, 11);
        let cfg = FarmConfig {
            partitions: 4,
            layout: Layout::TileRotated,
            fault: None,
            pool: true,
        };
        let farm = convert_matrix_farm(&csc, 8, 8, cfg).unwrap();
        let loads = farm.partition_loads();
        assert_eq!(loads.len(), 4);
        assert!(loads.iter().all(|&l| l > 0), "rotation feeds every engine");
    }

    #[test]
    fn zero_partitions_is_an_error() {
        let csc = sample_csc(16, 1);
        assert_eq!(
            convert_matrix_farm(&csc, 8, 8, FarmConfig::for_partitions(0)),
            Err(FarmError::Placement(PlacementError::NoPartitions))
        );
    }

    #[test]
    fn empty_matrix_gets_one_phantom_strip() {
        let csc = Csc::new(0, 0, vec![0], vec![], vec![]).unwrap();
        let farm = convert_matrix_farm(&csc, 8, 8, FarmConfig::for_partitions(2)).unwrap();
        assert_eq!(farm.strips.len(), 1, "phantom strip for ncols == 0");
        assert_eq!(farm.strips[0].len(), 1, "phantom tile for nrows == 0");
        assert_eq!(farm.strips[0][0].nnz(), 0);
        assert_eq!(farm.stats.elements, 0);
        assert_eq!(farm.switches, 0);
    }

    #[test]
    fn clean_plan_with_zero_rate_changes_nothing() {
        let csc = sample_csc(64, 17);
        let clean = convert_matrix_farm(&csc, 8, 8, FarmConfig::for_partitions(4)).unwrap();
        let planned = convert_matrix_farm(
            &csc,
            8,
            8,
            FarmConfig::for_partitions(4).with_fault(Some(FaultPlan::new(9, 0))),
        )
        .unwrap();
        assert_eq!(clean, planned);
    }

    #[test]
    fn convert_strip_faults_retry_or_escalate_deterministically() {
        let csc = sample_csc(128, 23);
        let plan = FaultPlan::from_rate(77, 0.4);
        let cfg = FarmConfig::for_partitions(4).with_fault(Some(plan));
        let first = convert_matrix_farm(&csc, 8, 8, cfg);
        let second = convert_matrix_farm(&csc, 8, 8, cfg);
        assert_eq!(first, second, "faulted farm must be run-to-run identical");
        if let Ok(run) = first {
            // Every absorbed engine-side fault was retried.
            assert!(run
                .faults
                .iter()
                .filter(|f| f.site != FaultSite::PartitionDropout)
                .all(|f| f.retried));
        }
    }

    #[test]
    fn faulted_output_tiles_match_clean_run() {
        // Absorbed faults (retries, detected corruption, dropout) must not
        // change the converted tiles or totals — only attribution.
        let csc = sample_csc(96, 31);
        let clean = convert_matrix_farm(&csc, 8, 8, FarmConfig::for_partitions(4)).unwrap();
        // A seed whose faults are all absorbed: search a few seeds for one
        // that completes, which keeps the test deterministic and meaningful.
        let mut checked = false;
        for seed in 0..32u64 {
            let cfg =
                FarmConfig::for_partitions(4).with_fault(Some(FaultPlan::from_rate(seed, 0.15)));
            if let Ok(run) = convert_matrix_farm(&csc, 8, 8, cfg) {
                assert_eq!(run.strips, clean.strips);
                assert_eq!(run.stats, clean.stats);
                assert_eq!(run.per_strip, clean.per_strip);
                if !run.faults.is_empty() {
                    checked = true;
                }
            }
        }
        assert!(checked, "no seed in 0..32 produced an absorbed fault");
    }

    #[test]
    fn dropped_partitions_serve_no_tiles() {
        let csc = sample_csc(96, 41);
        // Find a seed that drops at least one partition but not all.
        for seed in 0..64u64 {
            let plan = FaultPlan::from_rate(seed, 0.3);
            let dropped: Vec<usize> = (0..4)
                .filter(|&p| plan.fires(FaultSite::PartitionDropout, p as u64))
                .collect();
            if dropped.is_empty() || dropped.len() == 4 {
                continue;
            }
            let cfg = FarmConfig::for_partitions(4).with_fault(Some(plan));
            if let Ok(run) = convert_matrix_farm(&csc, 8, 8, cfg) {
                for &p in &dropped {
                    assert_eq!(run.per_partition[p].tiles, 0, "dropped partition {p} served");
                }
                assert_eq!(run.stats, {
                    let clean =
                        convert_matrix_farm(&csc, 8, 8, FarmConfig::for_partitions(4)).unwrap();
                    clean.stats
                });
                return;
            }
        }
        panic!("no seed in 0..64 dropped a strict subset of partitions cleanly");
    }

    #[test]
    fn all_partitions_dropped_is_typed_error() {
        let csc = sample_csc(32, 3);
        let cfg = FarmConfig::for_partitions(2).with_fault(Some(FaultPlan::from_rate(5, 1.0)));
        match convert_matrix_farm(&csc, 8, 8, cfg) {
            Err(FarmError::Fault { site, .. }) => {
                // Rate 1.0 fires every site; dropout is checked first.
                assert_eq!(site, FaultSite::PartitionDropout);
            }
            other => panic!("expected dropout escalation, got {other:?}"),
        }
    }

    #[test]
    fn farm_is_thread_count_invariant() {
        // The same conversion under 1 and 4 threads must be byte-identical
        // (ParIter preserves order; the reduction is index-driven).
        let csc = sample_csc(96, 13);
        rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build_global()
            .unwrap();
        let serial = convert_matrix_farm(&csc, 16, 16, FarmConfig::for_partitions(4)).unwrap();
        rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build_global()
            .unwrap();
        let parallel = convert_matrix_farm(&csc, 16, 16, FarmConfig::for_partitions(4)).unwrap();
        assert_eq!(serial, parallel);
    }
}
