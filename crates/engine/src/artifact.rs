//! Reusable conversion artifacts: the unit a plan cache stores.
//!
//! The planner's expensive, reusable work is (a) the dataflow decision
//! and (b) the format conversion behind it — `Dcsr::from_csr` for the
//! C-stationary path, the CSC → tiled-DCSR transform for the
//! B-stationary path. A [`ConversionArtifact`] owns the converted
//! operand so a serve layer can execute repeat requests against it
//! directly (via the *offline* kernels, which take a pre-converted
//! operand) and skip the conversion entirely.
//!
//! Artifacts know their byte footprint (the cache's eviction currency,
//! from the same [`StorageSize`] accounting Figures 8/9 use) and how to
//! [`recycle`](ConversionArtifact::recycle) themselves into the engine's
//! buffer pools on eviction, so a churning cache reuses allocations
//! instead of thrashing the allocator.

use crate::mem;
use nmt_formats::{Csr, Dcsr, FormatError, StorageSize, TiledDcsr};

/// A pre-converted SpMM operand, ready for the offline kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum ConversionArtifact {
    /// Untiled DCSR for the C-stationary row-per-warp kernel.
    RowMajor(Dcsr),
    /// Tiled DCSR for the B-stationary offline-tiled kernel.
    Tiled(TiledDcsr),
}

impl ConversionArtifact {
    /// Convert for the C-stationary path.
    pub fn row_major(a: &Csr) -> Self {
        ConversionArtifact::RowMajor(Dcsr::from_csr(a))
    }

    /// Convert for the B-stationary path: `tile_h × tile_w` DCSR tiles.
    pub fn tiled(a: &Csr, tile_w: usize, tile_h: usize) -> Result<Self, FormatError> {
        Ok(ConversionArtifact::Tiled(TiledDcsr::from_csr(a, tile_w, tile_h)?))
    }

    /// Storage footprint in bytes — what a byte-budgeted cache charges.
    pub fn storage_bytes(&self) -> usize {
        match self {
            ConversionArtifact::RowMajor(d) => d.storage_bytes(),
            ConversionArtifact::Tiled(t) => t.storage_bytes(),
        }
    }

    /// Short label for ledgers and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            ConversionArtifact::RowMajor(_) => "dcsr",
            ConversionArtifact::Tiled(_) => "tiled-dcsr",
        }
    }

    /// Consume the artifact, returning its buffers to the engine pools
    /// (`engine::mem`), so the next conversion of a similar matrix is
    /// allocation-free. Call on cache eviction once no handle remains.
    pub fn recycle(self) {
        match self {
            ConversionArtifact::RowMajor(d) => {
                let (rowidx, rowptr, colidx, values) = d.into_parts();
                mem::put_idx(true, rowidx);
                mem::put_idx(true, rowptr);
                mem::put_idx(true, colidx);
                mem::put_val(true, values);
            }
            ConversionArtifact::Tiled(t) => mem::recycle_strips(t.into_strips()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmt_formats::Coo;

    fn sample() -> Csr {
        let coo = Coo::from_triplets(
            16,
            16,
            &[0, 0, 3, 7, 9, 15],
            &[0, 9, 2, 6, 11, 15],
            &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap();
        Csr::from_coo(&coo)
    }

    #[test]
    fn footprint_matches_the_format_accounting() {
        let a = sample();
        let row = ConversionArtifact::row_major(&a);
        assert_eq!(row.storage_bytes(), Dcsr::from_csr(&a).storage_bytes());
        assert_eq!(row.kind(), "dcsr");
        let tiled = ConversionArtifact::tiled(&a, 4, 4).unwrap();
        assert_eq!(
            tiled.storage_bytes(),
            TiledDcsr::from_csr(&a, 4, 4).unwrap().storage_bytes()
        );
        assert_eq!(tiled.kind(), "tiled-dcsr");
    }

    #[test]
    fn recycling_reshelves_buffers() {
        let a = sample();
        let reclaimed_before = mem::pool_stats().reclaimed;
        ConversionArtifact::row_major(&a).recycle();
        // Four buffers per DCSR; pools are process-global so assert
        // monotone growth, like the other engine pool tests.
        assert!(mem::pool_stats().reclaimed >= reclaimed_before + 4);
        let reclaimed_mid = mem::pool_stats().reclaimed;
        ConversionArtifact::tiled(&a, 4, 4).unwrap().recycle();
        assert!(mem::pool_stats().reclaimed > reclaimed_mid);
    }

    #[test]
    fn zero_tile_dims_are_rejected() {
        assert!(ConversionArtifact::tiled(&sample(), 0, 4).is_err());
    }
}
