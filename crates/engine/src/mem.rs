//! Global buffer pools for the conversion hot paths.
//!
//! One set of process-wide [`SharedSlicePool`]s backs every pooled
//! conversion: strip converters check scratch out per strip and return
//! it when the strip completes, tile output buffers are checked out per
//! tile and come back when a consumer calls [`recycle_strips`] — so in
//! steady state (microbench iterations, repeated sweep matrices) the
//! farm performs O(1) allocations per matrix instead of O(strips·tiles).
//!
//! The pools are deliberately *global* rather than thread-local: the
//! rayon shim spawns fresh scoped threads per parallel call, so
//! thread-local scratch would die between matrices and reuse nothing.
//!
//! Every helper takes a `pooled` flag; with `pooled = false` it degrades
//! to plain allocation (and `put_*` drops), which is the reference path
//! the pooled-vs-unpooled determinism proptests compare against. The
//! pools are correctness-neutral: checked-out buffers are always empty,
//! so pooled and unpooled runs produce bitwise-identical output — only
//! capacities (never serialized) differ.

use crate::convert::ConversionStats;
use nmt_formats::DcsrTile;
use nmt_mem::{PoolStats, SharedSlicePool};

/// Tile metadata buffers (`rowidx`/`rowptr`/`colidx`) and frontier
/// staging. Sized generously: a matrix's worth of tile buffers must fit
/// idle so the next matrix reuses all of them.
static IDX_POOL: SharedSlicePool<u32> = SharedSlicePool::with_max_idle(8192);
/// Tile value buffers and kernel accumulators.
static VAL_POOL: SharedSlicePool<f32> = SharedSlicePool::with_max_idle(8192);
/// Converter frontier/boundary pointer arrays (two per strip).
static PTR_POOL: SharedSlicePool<usize> = SharedSlicePool::with_max_idle(1024);
/// Comparator lane-coordinate staging (one per strip).
static COORD_POOL: SharedSlicePool<Option<u32>> = SharedSlicePool::with_max_idle(512);
/// Per-strip tile vectors (`Vec<DcsrTile>`).
static TILES_POOL: SharedSlicePool<DcsrTile> = SharedSlicePool::with_max_idle(1024);
/// Per-strip per-tile stats vectors.
static STATS_POOL: SharedSlicePool<ConversionStats> = SharedSlicePool::with_max_idle(1024);

macro_rules! pool_pair {
    ($take:ident, $put:ident, $pool:ident, $t:ty, $doc:literal) => {
        #[doc = concat!("Check out an empty ", $doc, " buffer (capacity ≥ `cap`).")]
        pub fn $take(pooled: bool, cap: usize) -> Vec<$t> {
            if pooled {
                $pool.take(cap)
            } else {
                Vec::with_capacity(cap)
            }
        }

        #[doc = concat!("Return a ", $doc, " buffer to its pool (dropped when unpooled).")]
        pub fn $put(pooled: bool, buf: Vec<$t>) {
            if pooled {
                $pool.put(buf);
            }
        }
    };
}

pool_pair!(take_idx, put_idx, IDX_POOL, u32, "tile-index (`u32`)");
pool_pair!(take_val, put_val, VAL_POOL, f32, "value (`f32`)");
pool_pair!(take_ptr, put_ptr, PTR_POOL, usize, "frontier-pointer (`usize`)");
pool_pair!(
    take_coords,
    put_coords,
    COORD_POOL,
    Option<u32>,
    "lane-coordinate"
);
pool_pair!(take_tiles, put_tiles, TILES_POOL, DcsrTile, "per-strip tile");
pool_pair!(
    take_stats,
    put_stats,
    STATS_POOL,
    ConversionStats,
    "per-tile stats"
);

/// Return one tile's four buffers to the pools.
pub fn recycle_tile(tile: DcsrTile) {
    let DcsrTile {
        rowidx,
        rowptr,
        colidx,
        values,
        ..
    } = tile;
    IDX_POOL.put(rowidx);
    IDX_POOL.put(rowptr);
    IDX_POOL.put(colidx);
    VAL_POOL.put(values);
}

/// Recycle a whole farm output (`FarmRun::strips`): every tile's buffers
/// and every per-strip vector go back to the pools, making the *next*
/// conversion of a similar matrix allocation-free. Call this when the
/// tiles have been consumed (e.g. after the online kernel's launch).
pub fn recycle_strips(strips: Vec<Vec<DcsrTile>>) {
    for mut strip in strips {
        for tile in strip.drain(..) {
            recycle_tile(tile);
        }
        TILES_POOL.put(strip);
    }
}

/// Aggregate reuse counters across all engine pools (observability only;
/// hit/miss totals are schedule-dependent and must never be serialized).
pub fn pool_stats() -> PoolStats {
    let mut total = PoolStats::default();
    total.merge(&IDX_POOL.stats());
    total.merge(&VAL_POOL.stats());
    total.merge(&PTR_POOL.stats());
    total.merge(&COORD_POOL.stats());
    total.merge(&TILES_POOL.stats());
    total.merge(&STATS_POOL.stats());
    total
}

/// Total capacity (in elements) currently shelved idle across all engine
/// pools — how much allocation the next conversion can avoid. Like
/// [`pool_stats`], observability only: occupancy depends on schedule and
/// must never be serialized into a gated artifact.
pub fn pool_idle_capacity() -> usize {
    IDX_POOL.idle_capacity()
        + VAL_POOL.idle_capacity()
        + PTR_POOL.idle_capacity()
        + COORD_POOL.idle_capacity()
        + TILES_POOL.idle_capacity()
        + STATS_POOL.idle_capacity()
}

/// Drop every shelved buffer and zero the counters in all engine pools.
///
/// Instrumented measurement passes call this first so their allocation
/// counts start from a reproducible (empty) pool state, independent of
/// whatever earlier parallel work left on the shelves.
pub fn reset_pools() {
    IDX_POOL.reset();
    VAL_POOL.reset();
    PTR_POOL.reset();
    COORD_POOL.reset();
    TILES_POOL.reset();
    STATS_POOL.reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: the pools are process-global and other engine tests run
    // concurrently in the same process, so assertions here are monotone
    // (>=) rather than exact — exact counter accounting is covered by
    // the nmt-mem unit tests on private pools.

    #[test]
    fn unpooled_take_is_plain_allocation() {
        let v = take_idx(false, 10);
        assert!(v.is_empty() && v.capacity() >= 10);
        put_idx(false, v); // dropped, not shelved
        let v = take_val(false, 7);
        assert!(v.is_empty() && v.capacity() >= 7);
        put_val(false, v);
    }

    #[test]
    fn recycle_tile_reshelves_all_buffers() {
        let reclaimed_before = pool_stats().reclaimed;
        recycle_tile(DcsrTile {
            rowidx: Vec::with_capacity(4),
            rowptr: Vec::with_capacity(5),
            colidx: Vec::with_capacity(4),
            values: Vec::with_capacity(4),
            ..DcsrTile::default()
        });
        assert!(pool_stats().reclaimed >= reclaimed_before + 4);
    }

    #[test]
    fn recycle_strips_then_take_reuses() {
        let tile = DcsrTile {
            rowidx: Vec::with_capacity(100),
            ..DcsrTile::default()
        };
        let mut strip = Vec::with_capacity(3);
        strip.push(tile);
        let hits_before = pool_stats().hits;
        recycle_strips(vec![strip]);
        let buf = take_idx(true, 100);
        assert!(buf.capacity() >= 100);
        let tiles = take_tiles(true, 3);
        assert!(tiles.capacity() >= 3);
        assert!(pool_stats().hits >= hits_before + 2);
        put_idx(true, buf);
        put_tiles(true, tiles);
    }
}
