//! The hierarchical minimum-comparator unit (Figures 14–15).
//!
//! The conversion engine must find, every cycle, the minimum row coordinate
//! among the N column frontiers of a strip and *all* the columns holding
//! that minimum. The hardware builds this from 2-input comparator units —
//! each a 32-bit magnitude comparator, a coordinate bypass multiplexer and
//! a minimum-bypass unit producing a position bit vector — composed into a
//! binary tree: an N-input unit uses `N - 1` two-input units in
//! `ceil(log2 N)` stages. When several inputs tie for the minimum the
//! output bit vector points at all of them (e.g. `min[3:0] = 0101₂` when
//! inputs 0 and 2 tie), which is what lets the engine emit a whole DCSR row
//! in one step.
//!
//! This module models the unit both *functionally* (so the converter uses
//! the exact datapath) and *structurally* (unit counts, tree depth, stage
//! latency for the §5.3 pipeline analysis).

/// Output of one comparison pass: the minimum coordinate and the set of
/// lanes carrying it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinResult {
    /// The minimum row coordinate among valid lanes.
    pub min: u32,
    /// Bit `i` set ⇔ lane `i` holds the minimum (the `min[N-1:0]` vector).
    pub mask: u64,
}

/// An N-input comparator tree (N ≤ 64, the engine's strip width).
#[derive(Debug, Clone)]
pub struct ComparatorTree {
    n: usize,
}

/// Hardware-structure summary of a comparator tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeStructure {
    /// Number of 2-input comparator units (`N - 1` for a full tree).
    pub two_input_units: usize,
    /// Pipeline depth in comparator stages (`ceil(log2 N)`).
    pub depth: usize,
    /// Latency of one stage in nanoseconds — §5.3 reports 0.339 ns as the
    /// longest pipeline-stage latency, observed at a coordinate-comparator
    /// stage in TSMC 16 nm.
    pub stage_latency_ns: f64,
}

/// The §5.3 coordinate-comparator stage latency (TSMC 16 nm).
pub const STAGE_LATENCY_NS: f64 = 0.339;

impl ComparatorTree {
    /// Build a tree over `n` lanes (1 ..= 64).
    pub fn new(n: usize) -> Self {
        assert!(
            (1..=64).contains(&n),
            "comparator tree supports 1..=64 lanes, got {n}"
        );
        Self { n }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.n
    }

    /// Structural cost of this tree.
    pub fn structure(&self) -> TreeStructure {
        TreeStructure {
            two_input_units: self.n.saturating_sub(1),
            depth: if self.n <= 1 {
                0
            } else {
                usize::BITS as usize - (self.n - 1).leading_zeros() as usize
            },
            stage_latency_ns: STAGE_LATENCY_NS,
        }
    }

    /// One comparison pass over the lane coordinates. `None` lanes are
    /// exhausted columns (their `frontier_ptr` reached `boundary_ptr`) and
    /// never win. Returns `None` when every lane is exhausted.
    ///
    /// The reduction is performed pairwise, exactly as the 2-input units
    /// compose in Figure 15 (b): each unit forwards the smaller coordinate
    /// and ORs the position vectors on ties.
    pub fn find_min(&self, coords: &[Option<u32>]) -> Option<MinResult> {
        assert_eq!(coords.len(), self.n, "lane count mismatch");
        // Leaf level: (coordinate, position mask) per lane.
        let mut level: Vec<Option<MinResult>> = coords
            .iter()
            .enumerate()
            .map(|(i, c)| {
                c.map(|v| MinResult {
                    min: v,
                    mask: 1u64 << i,
                })
            })
            .collect();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                next.push(match pair {
                    [a] => *a,
                    [a, b] => two_input_unit(*a, *b),
                    // nmt-lint: allow(panic) — chunks(2) yields only 1- or 2-element slices
                    _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
                });
            }
            level = next;
        }
        level[0]
    }
}

/// One 2-input comparator unit (Figure 15 (a)): magnitude comparison with
/// coordinate bypass and minimum-bypass mask merging.
fn two_input_unit(a: Option<MinResult>, b: Option<MinResult>) -> Option<MinResult> {
    match (a, b) {
        (None, None) => None,
        (Some(x), None) | (None, Some(x)) => Some(x),
        (Some(x), Some(y)) => Some(match x.min.cmp(&y.min) {
            std::cmp::Ordering::Less => x,
            std::cmp::Ordering::Greater => y,
            std::cmp::Ordering::Equal => MinResult {
                min: x.min,
                mask: x.mask | y.mask,
            },
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_input_example_from_figure15() {
        // "If COOR₃ is the smallest, COORz will be COOR₃ and min[3:0] will
        // be 1000₂."
        let t = ComparatorTree::new(4);
        let r = t.find_min(&[Some(9), Some(7), Some(8), Some(3)]).unwrap();
        assert_eq!(r.min, 3);
        assert_eq!(r.mask, 0b1000);
    }

    #[test]
    fn tie_reports_all_positions() {
        // "If there are multiple minimum coordinates (e.g., COOR₀ and
        // COOR₂) … min[3:0] = 0101₂."
        let t = ComparatorTree::new(4);
        let r = t.find_min(&[Some(5), Some(9), Some(5), Some(7)]).unwrap();
        assert_eq!(r.min, 5);
        assert_eq!(r.mask, 0b0101);
    }

    #[test]
    fn exhausted_lanes_never_win() {
        let t = ComparatorTree::new(4);
        let r = t.find_min(&[None, Some(4), None, Some(2)]).unwrap();
        assert_eq!(r.min, 2);
        assert_eq!(r.mask, 0b1000);
        assert_eq!(t.find_min(&[None, None, None, None]), None);
    }

    #[test]
    fn all_lanes_tie() {
        let t = ComparatorTree::new(8);
        let r = t.find_min(&[Some(1); 8]).unwrap();
        assert_eq!(r.mask, 0xFF);
    }

    #[test]
    fn non_power_of_two_lane_count() {
        let t = ComparatorTree::new(5);
        let r = t
            .find_min(&[Some(3), Some(2), Some(9), Some(2), Some(8)])
            .unwrap();
        assert_eq!(r.min, 2);
        assert_eq!(r.mask, 0b01010);
    }

    #[test]
    fn structure_counts() {
        let t = ComparatorTree::new(64);
        let s = t.structure();
        assert_eq!(s.two_input_units, 63);
        assert_eq!(s.depth, 6); // log2(64)
        assert!((s.stage_latency_ns - 0.339).abs() < 1e-12);
        // Pipelined at one stage per cycle, each stage must fit in the
        // 0.588 ns cycle target (§5.3).
        assert!(s.stage_latency_ns < 0.588);

        assert_eq!(ComparatorTree::new(1).structure().depth, 0);
        assert_eq!(ComparatorTree::new(2).structure().depth, 1);
        assert_eq!(ComparatorTree::new(5).structure().depth, 3);
    }

    #[test]
    fn matches_software_minimum_on_random_inputs() {
        // Deterministic pseudo-random cross-check against an oracle.
        let t = ComparatorTree::new(64);
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        for _ in 0..200 {
            let coords: Vec<Option<u32>> = (0..64)
                .map(|_| {
                    let v = next();
                    if v % 5 == 0 {
                        None
                    } else {
                        Some((v >> 32) as u32 % 100)
                    }
                })
                .collect();
            let got = t.find_min(&coords);
            let want_min = coords.iter().flatten().min().copied();
            match (got, want_min) {
                (None, None) => {}
                (Some(r), Some(m)) => {
                    assert_eq!(r.min, m);
                    for (i, c) in coords.iter().enumerate() {
                        let in_mask = r.mask & (1 << i) != 0;
                        assert_eq!(in_mask, *c == Some(m), "lane {i}");
                    }
                }
                other => panic!("mismatch: {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn rejects_oversized_tree() {
        ComparatorTree::new(65);
    }
}
