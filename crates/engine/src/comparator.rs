//! The hierarchical minimum-comparator unit (Figures 14–15).
//!
//! The conversion engine must find, every cycle, the minimum row coordinate
//! among the N column frontiers of a strip and *all* the columns holding
//! that minimum. The hardware builds this from 2-input comparator units —
//! each a 32-bit magnitude comparator, a coordinate bypass multiplexer and
//! a minimum-bypass unit producing a position bit vector — composed into a
//! binary tree: an N-input unit uses `N - 1` two-input units in
//! `ceil(log2 N)` stages. When several inputs tie for the minimum the
//! output bit vector points at all of them (e.g. `min[3:0] = 0101₂` when
//! inputs 0 and 2 tie), which is what lets the engine emit a whole DCSR row
//! in one step.
//!
//! This module models the unit both *functionally* (so the converter uses
//! the exact datapath) and *structurally* (unit counts, tree depth, stage
//! latency for the §5.3 pipeline analysis).
//!
//! The functional model is allocation-free and SIMD-friendly: exhausted
//! lanes are sentinel-encoded into a fixed `[u32; 64]` scratch, the
//! minimum falls out of an in-place halving fold (the vectorizable
//! formulation of the same pairwise tree — `min` is associative and
//! commutative, so the fold order is immaterial), and the position mask
//! comes from a branch-free equality sweep. Widths above 64 lanes are a
//! typed construction error: the position vector is a `u64`, so a wider
//! tree would overflow `1 << lane` — the hardware strip width shares the
//! same bound.

use std::fmt;

/// The engine's strip width: a comparator tree spans at most 64 lanes so
/// the position bit vector fits a `u64`.
pub const MAX_LANES: usize = 64;

/// Lanes holding this key in the scratch are exhausted (`None` coords).
/// A *legitimate* coordinate of `u32::MAX` is indistinguishable in the
/// key array alone, so validity is tracked separately by the fold.
const EXHAUSTED: u32 = u32::MAX;

/// Construction errors for [`ComparatorTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComparatorError {
    /// Requested lane count outside `1..=64`. Wider trees would overflow
    /// the `u64` position vector (`1 << lane` for lane ≥ 64 is UB-adjacent
    /// in hardware terms and a debug panic in Rust); split the strip
    /// instead.
    LaneCount {
        /// The rejected lane count.
        got: usize,
    },
}

impl fmt::Display for ComparatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComparatorError::LaneCount { got } => write!(
                f,
                "comparator tree supports 1..={MAX_LANES} lanes, got {got}: \
                 the position vector is a u64, split wider strips"
            ),
        }
    }
}

impl std::error::Error for ComparatorError {}

/// Output of one comparison pass: the minimum coordinate and the set of
/// lanes carrying it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinResult {
    /// The minimum row coordinate among valid lanes.
    pub min: u32,
    /// Bit `i` set ⇔ lane `i` holds the minimum (the `min[N-1:0]` vector).
    pub mask: u64,
}

/// Fixed-size scratch for [`ComparatorTree::find_min_in`]: one key slot
/// per possible lane, living wherever the caller puts it (stack or a
/// longer-lived converter). No heap allocation anywhere.
#[derive(Debug, Clone)]
pub struct MinScratch {
    keys: [u32; MAX_LANES],
}

impl MinScratch {
    /// A zeroed scratch; contents are overwritten by every pass.
    pub const fn new() -> Self {
        MinScratch {
            keys: [0; MAX_LANES],
        }
    }
}

impl Default for MinScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// An N-input comparator tree (N ≤ 64, the engine's strip width).
#[derive(Debug, Clone)]
pub struct ComparatorTree {
    n: usize,
}

/// Hardware-structure summary of a comparator tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeStructure {
    /// Number of 2-input comparator units (`N - 1` for a full tree).
    pub two_input_units: usize,
    /// Pipeline depth in comparator stages (`ceil(log2 N)`).
    pub depth: usize,
    /// Latency of one stage in nanoseconds — §5.3 reports 0.339 ns as the
    /// longest pipeline-stage latency, observed at a coordinate-comparator
    /// stage in TSMC 16 nm.
    pub stage_latency_ns: f64,
}

/// The §5.3 coordinate-comparator stage latency (TSMC 16 nm).
pub const STAGE_LATENCY_NS: f64 = 0.339;

impl ComparatorTree {
    /// Build a tree over `n` lanes (1 ..= [`MAX_LANES`]).
    ///
    /// Rejecting wider trees here is what makes the per-lane
    /// `1 << lane` mask construction in the scan pass sound.
    pub fn new(n: usize) -> Result<Self, ComparatorError> {
        if !(1..=MAX_LANES).contains(&n) {
            return Err(ComparatorError::LaneCount { got: n });
        }
        Ok(Self { n })
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.n
    }

    /// Structural cost of this tree.
    pub fn structure(&self) -> TreeStructure {
        TreeStructure {
            two_input_units: self.n.saturating_sub(1),
            depth: if self.n <= 1 {
                0
            } else {
                usize::BITS as usize - (self.n - 1).leading_zeros() as usize
            },
            stage_latency_ns: STAGE_LATENCY_NS,
        }
    }

    /// One comparison pass over the lane coordinates. `None` lanes are
    /// exhausted columns (their `frontier_ptr` reached `boundary_ptr`) and
    /// never win. Returns `None` when every lane is exhausted.
    ///
    /// Allocation-free: scratch lives on this stack frame. Hot callers
    /// that own a [`MinScratch`] should prefer [`Self::find_min_in`].
    pub fn find_min(&self, coords: &[Option<u32>]) -> Option<MinResult> {
        let mut scratch = MinScratch::new();
        self.find_min_in(coords, &mut scratch)
    }

    /// One comparison pass using caller-provided scratch, so a converter
    /// issuing millions of passes reuses one `[u32; 64]` for all of them.
    ///
    /// Three sweeps, each a straight-line loop the compiler vectorizes:
    ///
    /// 1. **Leaf encode** — coordinates into `scratch.keys`, exhausted
    ///    lanes as [`EXHAUSTED`], plus a validity count.
    /// 2. **Halving fold** — `keys[i] = min(keys[i], keys[i + half])`
    ///    until one key remains. Same value the Figure 15 (b) pairwise
    ///    tree produces (min is associative/commutative); the structural
    ///    model in [`Self::structure`] still reports the hardware tree.
    /// 3. **Mask sweep** — branch-free `(coord == min) << lane` OR-fold,
    ///    the `min[N-1:0]` position vector. Lane < 64 is guaranteed by
    ///    construction, so the shift cannot overflow.
    ///
    /// A legitimate coordinate of `u32::MAX` collides with the sentinel
    /// in sweep 2; the validity count from sweep 1 disambiguates (if any
    /// lane is valid and the folded min is `u32::MAX`, every valid lane
    /// holds `u32::MAX` and the mask sweep is still exact).
    pub fn find_min_in(
        &self,
        coords: &[Option<u32>],
        scratch: &mut MinScratch,
    ) -> Option<MinResult> {
        assert_eq!(coords.len(), self.n, "lane count mismatch");
        let keys = &mut scratch.keys[..self.n];
        let mut valid = 0usize;
        for (k, c) in keys.iter_mut().zip(coords) {
            *k = c.unwrap_or(EXHAUSTED);
            valid += usize::from(c.is_some());
        }
        if valid == 0 {
            return None;
        }
        let mut width = self.n;
        while width > 1 {
            let half = width.div_ceil(2);
            // nmt-lint: allow(slice-index) — half <= width <= keys.len() by the fold invariant
            let (lo, hi) = keys[..width].split_at_mut(half);
            for (l, h) in lo.iter_mut().zip(hi.iter()) {
                *l = (*l).min(*h);
            }
            width = half;
        }
        let min = keys[0]; // nmt-lint: allow(slice-index) — n >= 1 by construction
        let mut mask = 0u64;
        for (i, c) in coords.iter().enumerate() {
            mask |= u64::from(*c == Some(min)) << i;
        }
        Some(MinResult { min, mask })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_input_example_from_figure15() {
        // "If COOR₃ is the smallest, COORz will be COOR₃ and min[3:0] will
        // be 1000₂."
        let t = ComparatorTree::new(4).unwrap();
        let r = t.find_min(&[Some(9), Some(7), Some(8), Some(3)]).unwrap();
        assert_eq!(r.min, 3);
        assert_eq!(r.mask, 0b1000);
    }

    #[test]
    fn tie_reports_all_positions() {
        // "If there are multiple minimum coordinates (e.g., COOR₀ and
        // COOR₂) … min[3:0] = 0101₂."
        let t = ComparatorTree::new(4).unwrap();
        let r = t.find_min(&[Some(5), Some(9), Some(5), Some(7)]).unwrap();
        assert_eq!(r.min, 5);
        assert_eq!(r.mask, 0b0101);
    }

    #[test]
    fn exhausted_lanes_never_win() {
        let t = ComparatorTree::new(4).unwrap();
        let r = t.find_min(&[None, Some(4), None, Some(2)]).unwrap();
        assert_eq!(r.min, 2);
        assert_eq!(r.mask, 0b1000);
        assert_eq!(t.find_min(&[None, None, None, None]), None);
    }

    #[test]
    fn all_lanes_tie() {
        let t = ComparatorTree::new(8).unwrap();
        let r = t.find_min(&[Some(1); 8]).unwrap();
        assert_eq!(r.mask, 0xFF);
    }

    #[test]
    fn non_power_of_two_lane_count() {
        let t = ComparatorTree::new(5).unwrap();
        let r = t
            .find_min(&[Some(3), Some(2), Some(9), Some(2), Some(8)])
            .unwrap();
        assert_eq!(r.min, 2);
        assert_eq!(r.mask, 0b01010);
    }

    #[test]
    fn coordinate_u32_max_is_a_valid_minimum() {
        // The sentinel encoding must not turn a real u32::MAX coordinate
        // into "exhausted".
        let t = ComparatorTree::new(4).unwrap();
        let r = t
            .find_min(&[None, Some(u32::MAX), None, Some(u32::MAX)])
            .unwrap();
        assert_eq!(r.min, u32::MAX);
        assert_eq!(r.mask, 0b1010);
        // ...and it still loses to any smaller coordinate.
        let r = t
            .find_min(&[Some(u32::MAX), Some(3), None, None])
            .unwrap();
        assert_eq!(r.min, 3);
        assert_eq!(r.mask, 0b0010);
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        let t = ComparatorTree::new(6).unwrap();
        let mut scratch = MinScratch::new();
        let inputs: &[&[Option<u32>]] = &[
            &[Some(4), None, Some(1), Some(1), None, Some(9)],
            &[None; 6],
            &[Some(0), Some(0), Some(0), Some(0), Some(0), Some(0)],
        ];
        for coords in inputs {
            assert_eq!(t.find_min_in(coords, &mut scratch), t.find_min(coords));
        }
    }

    #[test]
    fn structure_counts() {
        let t = ComparatorTree::new(64).unwrap();
        let s = t.structure();
        assert_eq!(s.two_input_units, 63);
        assert_eq!(s.depth, 6); // log2(64)
        assert!((s.stage_latency_ns - 0.339).abs() < 1e-12);
        // Pipelined at one stage per cycle, each stage must fit in the
        // 0.588 ns cycle target (§5.3).
        assert!(s.stage_latency_ns < 0.588);

        assert_eq!(ComparatorTree::new(1).unwrap().structure().depth, 0);
        assert_eq!(ComparatorTree::new(2).unwrap().structure().depth, 1);
        assert_eq!(ComparatorTree::new(5).unwrap().structure().depth, 3);
    }

    #[test]
    fn matches_software_minimum_on_random_inputs() {
        // Deterministic pseudo-random cross-check against an oracle.
        let t = ComparatorTree::new(64).unwrap();
        let mut scratch = MinScratch::new();
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        for _ in 0..200 {
            let coords: Vec<Option<u32>> = (0..64)
                .map(|_| {
                    let v = next();
                    if v % 5 == 0 {
                        None
                    } else {
                        Some((v >> 32) as u32 % 100)
                    }
                })
                .collect();
            let got = t.find_min_in(&coords, &mut scratch);
            let want_min = coords.iter().flatten().min().copied();
            match (got, want_min) {
                (None, None) => {}
                (Some(r), Some(m)) => {
                    assert_eq!(r.min, m);
                    for (i, c) in coords.iter().enumerate() {
                        let in_mask = r.mask & (1 << i) != 0;
                        assert_eq!(in_mask, *c == Some(m), "lane {i}");
                    }
                }
                other => panic!("mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_oversized_tree_with_typed_error() {
        // Regression (mask overflow bug): n > 64 must fail at
        // construction, because find_min's `1 << lane` would overflow
        // the u64 position vector for lane >= 64.
        let err = ComparatorTree::new(65).unwrap_err();
        assert_eq!(err, ComparatorError::LaneCount { got: 65 });
        assert!(err.to_string().contains("1..=64"));
        assert!(ComparatorTree::new(0).is_err());
        assert!(ComparatorTree::new(64).is_ok());
    }

    #[test]
    fn find_min_is_allocation_free() {
        // The innermost conversion loop calls find_min once per emitted
        // row group; it must never touch the allocator.
        let t = ComparatorTree::new(64).unwrap();
        let coords: Vec<Option<u32>> = (0..64)
            .map(|i| if i % 3 == 0 { None } else { Some(i as u32 % 7) })
            .collect();
        let mut scratch = MinScratch::new();
        let was = nmt_obs::alloc::enable_counting(true);
        let before = nmt_obs::alloc::thread_totals();
        let mut acc = 0u64;
        for _ in 0..1000 {
            if let Some(r) = t.find_min_in(&coords, &mut scratch) {
                acc = acc.wrapping_add(u64::from(r.min)).wrapping_add(r.mask);
            }
            if let Some(r) = t.find_min(&coords) {
                acc = acc.wrapping_add(u64::from(r.min)).wrapping_add(r.mask);
            }
        }
        let after = nmt_obs::alloc::thread_totals();
        nmt_obs::alloc::enable_counting(was);
        assert!(acc > 0, "keep the loop observable");
        assert_eq!(
            after.0 - before.0,
            0,
            "find_min allocated {} times",
            after.0 - before.0
        );
    }
}
