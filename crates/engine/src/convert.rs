//! Functional model of the CSC → tiled-DCSR conversion unit (Figures 13–14).
//!
//! One [`StripConverter`] models the engine state for one vertical strip:
//!
//! 1. `boundary_ptr` and `frontier_ptr` are loaded from the CSC `col_ptr`
//!    (step ① of Figure 13) — two N-element pointer arrays (Figure 14 ❶);
//! 2. each step, lanes with remaining elements present their frontier row
//!    coordinate to the comparator tree, which returns the minimum row and
//!    the set of lanes holding it (❷–❸);
//! 3. the winning lanes' elements are copied out as one DCSR row (value,
//!    col_idx; row_ptr incremented by the lane count; row_idx = the minimum
//!    row coordinate), and their frontiers advance (❹–❺);
//! 4. repeat until the lanes sweep the designated tile, then return the
//!    tile (④ of Figure 13).
//!
//! The converter is *stateful across tiles* in a strip: walking tiles
//! top-to-bottom needs no re-scanning (sequential access), and random tile
//! access repositions the frontier by binary search on the CSC columns —
//! both properties §4.1 credits to the CSC baseline format.

use crate::comparator::{ComparatorTree, MinScratch};
use crate::mem;
use nmt_formats::{Csc, CscView, DcsrTile, Index, SparseMatrix};

/// Byte cost of one streamed CSC element: a 4-byte row index plus a 4-byte
/// fp32 value ("8-byte input data", §5.3).
pub const INPUT_BYTES_PER_ELEM: u64 = 8;

/// Running hardware-activity counters for one converter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConversionStats {
    /// Comparator-tree passes performed (one per emitted DCSR row, plus
    /// one concluding pass that finds the tile exhausted).
    pub comparator_passes: u64,
    /// Elements converted (CSC entries consumed = DCSR entries produced).
    pub elements: u64,
    /// DCSR rows emitted (non-empty row segments).
    pub rows_emitted: u64,
    /// Tiles produced.
    pub tiles: u64,
    /// Bytes read from DRAM: column-pointer loads + streamed elements.
    pub input_bytes: u64,
    /// Bytes of tiled-DCSR stream sent to the requesting SM over the Xbar.
    pub output_bytes: u64,
    /// Comparator-lane slots offered across all passes (passes × lanes) —
    /// the denominator of [`ConversionStats::comparator_occupancy`].
    pub lane_slots: u64,
}

impl ConversionStats {
    /// Accumulate another converter's counters into this one.
    pub fn merge(&mut self, other: &ConversionStats) {
        self.comparator_passes += other.comparator_passes;
        self.elements += other.elements;
        self.rows_emitted += other.rows_emitted;
        self.tiles += other.tiles;
        self.input_bytes += other.input_bytes;
        self.output_bytes += other.output_bytes;
        self.lane_slots += other.lane_slots;
    }

    /// Counter-wise difference `self - before`, for attributing the work
    /// of one tile (or one drain step) out of a cumulative counter. All
    /// counters are monotone, so `before` must be an earlier snapshot of
    /// the same converter.
    pub fn delta(&self, before: &ConversionStats) -> ConversionStats {
        ConversionStats {
            comparator_passes: self.comparator_passes - before.comparator_passes,
            elements: self.elements - before.elements,
            rows_emitted: self.rows_emitted - before.rows_emitted,
            tiles: self.tiles - before.tiles,
            input_bytes: self.input_bytes - before.input_bytes,
            output_bytes: self.output_bytes - before.output_bytes,
            lane_slots: self.lane_slots - before.lane_slots,
        }
    }

    /// Fraction of comparator-lane slots that emitted an element — how
    /// full the tree's input registers ran (1.0 = every lane contributed
    /// on every pass; low values mean tall, sparse columns).
    pub fn comparator_occupancy(&self) -> f64 {
        if self.lane_slots == 0 {
            0.0
        } else {
            self.elements as f64 / self.lane_slots as f64
        }
    }
}

/// Bridge a conversion's [`ConversionStats`] into the observability
/// registry under `engine.convert.*` / `engine.comparator.*`.
pub fn publish_conversion(obs: &nmt_obs::ObsContext, stats: &ConversionStats) {
    let m = &obs.metrics;
    m.counter_add("engine.convert.elements", stats.elements);
    m.counter_add("engine.convert.rows_emitted", stats.rows_emitted);
    m.counter_add("engine.convert.tiles", stats.tiles);
    m.counter_add("engine.convert.input_bytes", stats.input_bytes);
    m.counter_add("engine.convert.output_bytes", stats.output_bytes);
    m.counter_add("engine.comparator.passes", stats.comparator_passes);
    m.counter_add("engine.comparator.lane_slots", stats.lane_slots);
    m.gauge_set(
        "engine.comparator.occupancy",
        stats.comparator_occupancy(),
    );
}

/// Stateful converter for one vertical strip of a CSC matrix.
#[derive(Debug, Clone)]
pub struct StripConverter<'a> {
    csc: CscView<'a>,
    strip_id: usize,
    col_start: usize,
    width: usize,
    /// Absolute index of each lane's next element in the CSC arrays.
    frontier: Vec<usize>,
    /// Absolute end index of each lane's column.
    boundary: Vec<usize>,
    /// Lane-coordinate staging reused across every comparator pass (the
    /// hot-path buffer that used to be allocated per pass).
    coords: Vec<Option<u32>>,
    /// Comparator reduction scratch (fixed-size, stack-style).
    min_scratch: MinScratch,
    /// Whether scratch and tile buffers come from the global pools
    /// ([`crate::mem`]) and go back there on [`Self::recycle`].
    pooled: bool,
    tree: ComparatorTree,
    stats: ConversionStats,
}

impl<'a> StripConverter<'a> {
    /// Position a converter at the top of strip `strip_id` (width
    /// `tile_w`). Panics if the strip is outside the matrix.
    /// Unpooled: scratch is freshly allocated and dropped with the
    /// converter (the farm's hot path uses [`Self::with_view`]).
    pub fn new(csc: &'a Csc, strip_id: usize, tile_w: usize) -> Self {
        Self::with_view(csc.view(), strip_id, tile_w, false)
    }

    /// [`Self::new`] over a borrowed [`CscView`], with scratch and tile
    /// buffers checked out of the global pools when `pooled` — return
    /// them with [`Self::recycle`] when the strip is done.
    pub fn with_view(csc: CscView<'a>, strip_id: usize, tile_w: usize, pooled: bool) -> Self {
        assert!(tile_w > 0 && tile_w <= 64, "engine width is 1..=64 columns");
        let ncols = csc.shape().ncols;
        let col_start = strip_id * tile_w;
        assert!(col_start < ncols.max(1), "strip {strip_id} beyond matrix");
        // A zero-column matrix yields a zero-lane converter that emits
        // only empty tiles (the comparator tree still needs >= 1 lane, so
        // clamp and guard the pointer loads).
        let width = tile_w
            .min(ncols.saturating_sub(col_start))
            .max(1)
            .min(ncols.max(1));
        let lanes = width.min(ncols.saturating_sub(col_start));
        let colptr = csc.colptr();
        let mut frontier = mem::take_ptr(pooled, lanes);
        frontier.extend((0..lanes).map(|i| colptr[col_start + i] as usize));
        let mut boundary = mem::take_ptr(pooled, lanes);
        boundary.extend((0..lanes).map(|i| colptr[col_start + i + 1] as usize));
        let mut stats = ConversionStats::default();
        // Loading boundary_ptr + frontier_ptr from col_ptr: 2 N-element
        // 4-byte arrays (Figure 14 ❶).
        stats.input_bytes += 2 * width as u64 * 4;
        Self {
            csc,
            strip_id,
            col_start,
            width,
            frontier,
            boundary,
            coords: mem::take_coords(pooled, lanes.max(1)),
            min_scratch: MinScratch::new(),
            pooled,
            // nmt-lint: allow(panic) — lanes is clamped to 1..=64 two lines up, within ComparatorTree's bound
            tree: ComparatorTree::new(lanes.max(1)).expect("lanes clamped to 1..=64"),
            stats,
        }
    }

    /// Return this converter's scratch buffers to the global pools (a
    /// no-op for unpooled converters). The farm calls this after each
    /// strip so the next strip's converter allocates nothing.
    pub fn recycle(self) {
        mem::put_ptr(self.pooled, self.frontier);
        mem::put_ptr(self.pooled, self.boundary);
        mem::put_coords(self.pooled, self.coords);
    }

    /// The strip index this converter serves.
    pub fn strip_id(&self) -> usize {
        self.strip_id
    }

    /// Activity counters so far.
    pub fn stats(&self) -> ConversionStats {
        self.stats
    }

    /// Reposition every lane to the first element with row ≥ `row_start`
    /// (random tile access; binary search per column, §4.1).
    pub fn seek(&mut self, row_start: Index) {
        for i in 0..self.frontier.len() {
            self.frontier[i] = self.csc.col_frontier_at(self.col_start + i, row_start);
        }
    }

    /// Convert the next `tile_h` rows starting at `row_start` into one
    /// DCSR tile (the `GetDCSRTile` operation of Figure 11, minus the
    /// request plumbing). Lanes must already be at or past `row_start`
    /// (they are, after sequential use or `seek`).
    pub fn next_tile(&mut self, row_start: Index, tile_h: usize) -> DcsrTile {
        let nrows = self.csc.shape().nrows;
        let height = tile_h.min(nrows.saturating_sub(row_start as usize)).max(1);
        let row_end = row_start + height as Index;
        // Exact capacity bounds for the pooled buffers: per lane, find the
        // end of this tile's element run (first element at or past
        // `row_end`) by binary search — the hardware analogue is the
        // boundary-pointer computation of Figure 14 ❶. The sum is exactly
        // the element count the pass loop will emit, and emitted rows are
        // bounded by `min(height, elems)`. Exact bounds mean checked-out
        // buffers never grow mid-tile, so steady-state pool reuse performs
        // zero allocations (a grown buffer would reshelve at a new
        // capacity and churn the best-fit pairing forever).
        let rowidx_all = self.csc.rowidx();
        let tile_elems: usize = self
            .frontier
            .iter()
            .zip(&self.boundary)
            .map(|(&f, &b)| rowidx_all[f..b].partition_point(|&r| r < row_end))
            .sum();
        let max_rows = height.min(tile_elems);
        let mut rowptr = mem::take_idx(self.pooled, max_rows + 1);
        rowptr.push(0);
        let mut tile = DcsrTile {
            row_start,
            col_start: self.col_start as Index,
            height,
            width: self.width,
            rowptr,
            rowidx: mem::take_idx(self.pooled, max_rows),
            colidx: mem::take_idx(self.pooled, tile_elems),
            values: mem::take_val(self.pooled, tile_elems),
        };
        let values = self.csc.values();
        loop {
            self.stats.comparator_passes += 1;
            self.stats.lane_slots += self.frontier.len() as u64;
            fill_lane_coords(
                &self.csc,
                &self.frontier,
                &self.boundary,
                row_end,
                &mut self.coords,
            );
            if self.coords.is_empty() {
                self.coords.push(None); // zero-lane converter: always exhausted
            }
            let Some(min) = self.tree.find_min_in(&self.coords, &mut self.min_scratch) else {
                break;
            };
            // Emit one DCSR row: all lanes at the minimum row coordinate,
            // in ascending lane (= column) order.
            tile.rowidx.push(min.min - row_start);
            for lane in 0..self.frontier.len() {
                if min.mask & (1 << lane) != 0 {
                    tile.colidx.push(lane as Index);
                    tile.values.push(values[self.frontier[lane]]);
                    self.frontier[lane] += 1;
                    self.stats.elements += 1;
                    self.stats.input_bytes += INPUT_BYTES_PER_ELEM;
                }
            }
            tile.rowptr.push(tile.colidx.len() as Index);
            self.stats.rows_emitted += 1;
        }
        self.stats.tiles += 1;
        self.stats.output_bytes += (tile.values.len() * 4
            + tile.colidx.len() * 4
            + tile.rowidx.len() * 4
            + tile.rowptr.len() * 4) as u64;
        debug_assert!(tile.validate().is_ok(), "engine produced an invalid tile");
        tile
    }

    /// Convert the whole strip as consecutive `tile_h`-tall tiles.
    pub fn convert_strip(&mut self, tile_h: usize) -> Vec<DcsrTile> {
        let nrows = self.csc.shape().nrows;
        let mut tiles = mem::take_tiles(self.pooled, nrows.div_ceil(tile_h.max(1)));
        let mut row_start = 0;
        while (row_start as usize) < nrows.max(1) {
            tiles.push(self.next_tile(row_start, tile_h));
            row_start += tile_h as Index;
            if nrows == 0 {
                break;
            }
        }
        tiles
    }
}

/// Stage the current lane coordinates (masked to rows below `row_end`)
/// into `coords`, reusing its capacity. A free function over disjoint
/// converter fields so the borrow checker permits in-place reuse.
fn fill_lane_coords(
    csc: &CscView<'_>,
    frontier: &[usize],
    boundary: &[usize],
    row_end: Index,
    coords: &mut Vec<Option<u32>>,
) {
    let rowidx = csc.rowidx();
    coords.clear();
    coords.extend(frontier.iter().zip(boundary).map(|(&f, &b)| {
        if f < b {
            let r = rowidx[f];
            (r < row_end).then_some(r)
        } else {
            None
        }
    }));
}

/// Convert an entire CSC matrix to tiled DCSR through the engine model —
/// the online equivalent of [`nmt_formats::TiledDcsr::from_csr`]. Returns
/// the tiles per strip and the merged hardware-activity counters.
///
/// Strips convert rayon-parallel (each strip's converter is independent
/// state); results come back in strip order and the stats merge walks
/// strips ascending, so the output is identical at any thread count.
pub fn convert_matrix(
    csc: &Csc,
    tile_w: usize,
    tile_h: usize,
) -> (Vec<Vec<DcsrTile>>, ConversionStats) {
    convert_matrix_view(csc.view(), tile_w, tile_h)
}

/// [`convert_matrix`] over a borrowed [`CscView`] — the zero-copy entry
/// point (a CSR image of the transpose converts without materializing an
/// owned `Csc`). Strip converters draw scratch and tile buffers from the
/// global pools; pass the output to [`crate::mem::recycle_strips`] once
/// consumed to make the next conversion allocation-free.
pub fn convert_matrix_view(
    csc: CscView<'_>,
    tile_w: usize,
    tile_h: usize,
) -> (Vec<Vec<DcsrTile>>, ConversionStats) {
    use rayon::prelude::*;
    let ncols = csc.shape().ncols;
    let nstrips = nmt_formats::strip_count(ncols, tile_w);
    let per_strip: Vec<(Vec<DcsrTile>, ConversionStats)> = (0..nstrips)
        .into_par_iter()
        .map(|s| {
            let mut conv = StripConverter::with_view(csc, s, tile_w, true);
            let tiles = conv.convert_strip(tile_h);
            let stats = conv.stats();
            conv.recycle();
            (tiles, stats)
        })
        .collect();
    let mut strips = Vec::with_capacity(nstrips);
    let mut total = ConversionStats::default();
    for (tiles, stats) in per_strip {
        strips.push(tiles);
        total.merge(&stats);
    }
    (strips, total)
}

/// CSR → tiled-**DCSC** conversion "using the same engine" (§4.1).
///
/// A CSR image of `A` is, byte for byte, a CSC image of `Aᵀ`
/// (`rowptr → colptr`, `colidx → rowidx`), so feeding it to the engine
/// produces DCSR tiles of `Aᵀ` — which are exactly DCSC tiles of `A` with
/// the roles of `rowidx`/`colidx` swapped. This is the escape hatch for
/// wide matrices whose CSC `colptr` would dominate storage: keep CSR in
/// memory and let SM-side DCSC kernels consume the engine's output.
///
/// Returns the tiles of `Aᵀ` (strip-major over `A`'s *rows*) plus the
/// engine counters; interpret each [`DcsrTile`]'s `rowidx` as non-empty
/// **columns** of `A` and `colidx` as **rows** of `A`.
pub fn convert_matrix_dcsc(
    csr: &nmt_formats::Csr,
    tile_w: usize,
    tile_h: usize,
) -> (Vec<Vec<DcsrTile>>, ConversionStats) {
    // Reinterpret the CSR arrays as CSC of the transpose — a zero-copy
    // borrow, exactly what the hardware would see (previously this
    // cloned all three arrays into an owned Csc).
    convert_matrix_view(CscView::transpose_of_csr(csr), tile_w, tile_h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmt_formats::{Coo, Csr, SparseMatrix, TiledDcsr};

    /// The Figure 13 walk-through strip: 5 rows x 3 cols,
    /// col0 = {a0@0, a2@2, a4@4}, col1 = {b0@0, b1@1, b4@4},
    /// col2 = {c0@0, c2@2}.
    fn figure13_csc() -> Csc {
        Csc::new(
            5,
            3,
            vec![0, 3, 6, 8],
            vec![0, 2, 4, 0, 1, 4, 0, 2],
            vec![10.0, 12.0, 14.0, 20.0, 21.0, 24.0, 30.0, 32.0],
        )
        .unwrap()
    }

    #[test]
    fn figure13_walkthrough() {
        let csc = figure13_csc();
        let mut conv = StripConverter::new(&csc, 0, 3);
        let tile = conv.next_tile(0, 5);
        // Expected DCSR (Figure 13, bottom right):
        // value  = a0 b0 c0 | b1 | a2 c2 | a4 b4
        // colidx = 0  1  2  | 1  | 0  2  | 0  1
        // rowptr = 0 3 4 6 8 ; rowidx = 0 1 2 4
        assert_eq!(
            tile.values,
            vec![10.0, 20.0, 30.0, 21.0, 12.0, 32.0, 14.0, 24.0]
        );
        assert_eq!(tile.colidx, vec![0, 1, 2, 1, 0, 2, 0, 1]);
        assert_eq!(tile.rowptr, vec![0, 3, 4, 6, 8]);
        assert_eq!(tile.rowidx, vec![0, 1, 2, 4]);
        let st = conv.stats();
        assert_eq!(st.elements, 8);
        assert_eq!(st.rows_emitted, 4);
        // 4 emitting passes + 1 concluding pass.
        assert_eq!(st.comparator_passes, 5);
        // 2 pointer arrays of 3 lanes + 8 elements x 8 bytes.
        assert_eq!(st.input_bytes, 24 + 64);
        // 5 passes x 3 lanes offered, 8 slots emitted.
        assert_eq!(st.lane_slots, 15);
        assert!((st.comparator_occupancy() - 8.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn stats_merge_accumulates_all_fields() {
        let csc = figure13_csc();
        let mut a = StripConverter::new(&csc, 0, 3);
        a.next_tile(0, 5);
        let st = a.stats();
        let mut merged = ConversionStats::default();
        merged.merge(&st);
        merged.merge(&st);
        assert_eq!(merged.elements, 2 * st.elements);
        assert_eq!(merged.comparator_passes, 2 * st.comparator_passes);
        assert_eq!(merged.lane_slots, 2 * st.lane_slots);
        assert_eq!(merged.input_bytes, 2 * st.input_bytes);
        assert_eq!(merged.output_bytes, 2 * st.output_bytes);
        assert_eq!(merged.rows_emitted, 2 * st.rows_emitted);
        assert_eq!(merged.tiles, 2 * st.tiles);
        // Occupancy is scale-invariant under merge of identical runs.
        assert!((merged.comparator_occupancy() - st.comparator_occupancy()).abs() < 1e-12);
        assert_eq!(ConversionStats::default().comparator_occupancy(), 0.0);
    }

    #[test]
    fn publish_conversion_bridges_to_registry() {
        let csc = figure13_csc();
        let (_, stats) = convert_matrix(&csc, 3, 5);
        let obs = nmt_obs::ObsContext::disabled();
        publish_conversion(&obs, &stats);
        assert_eq!(obs.metrics.counter("engine.convert.elements"), 8);
        assert_eq!(obs.metrics.counter("engine.comparator.passes"), 5);
        assert_eq!(
            obs.metrics.gauge("engine.comparator.occupancy"),
            Some(stats.comparator_occupancy())
        );
    }

    fn random_csr(n: usize, nnz: usize, seed: u64) -> Csr {
        // Simple LCG-based deterministic scatter.
        let mut state = seed
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        let mut coo = Coo::new(n, n).unwrap();
        for _ in 0..nnz {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let r = ((state >> 33) as usize) % n;
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let c = ((state >> 33) as usize) % n;
            coo.push(r as u32, c as u32, (r * n + c) as f32 + 0.5)
                .unwrap();
        }
        coo.canonicalize();
        Csr::from_coo(&coo)
    }

    #[test]
    fn online_conversion_matches_offline_tiling() {
        // The engine's output must be bit-identical to offline tiling.
        for &(n, nnz, tile) in &[(60usize, 200usize, 16usize), (100, 50, 32), (64, 64, 64)] {
            let csr = random_csr(n, nnz, n as u64);
            let csc = csr.to_csc();
            let offline = TiledDcsr::from_csr(&csr, tile, tile).unwrap();
            let (online, stats) = convert_matrix(&csc, tile, tile);
            assert_eq!(online.len(), offline.strips().len());
            for (s, strip) in offline.strips().iter().enumerate() {
                assert_eq!(&online[s], strip, "strip {s} differs (n={n})");
            }
            assert_eq!(stats.elements as usize, csr.nnz());
        }
    }

    #[test]
    fn sequential_tiles_share_frontier_state() {
        let csc = figure13_csc();
        let mut conv = StripConverter::new(&csc, 0, 3);
        let t0 = conv.next_tile(0, 2); // rows 0..2
        let t1 = conv.next_tile(2, 2); // rows 2..4
        let t2 = conv.next_tile(4, 2); // row 4
        assert_eq!(t0.rowidx, vec![0, 1]);
        assert_eq!(t1.rowidx, vec![0]); // row 2 local
        assert_eq!(t2.rowidx, vec![0]); // row 4 local
        assert_eq!(
            t0.nnz() + t1.nnz() + t2.nnz(),
            csc.nnz(),
            "tiles must partition the strip"
        );
    }

    #[test]
    fn seek_supports_random_tile_access() {
        let csc = figure13_csc();
        // Jump straight to the tile at rows 2..4 without converting 0..2.
        let mut conv = StripConverter::new(&csc, 0, 3);
        conv.seek(2);
        let tile = conv.next_tile(2, 2);
        assert_eq!(tile.rowidx, vec![0]);
        assert_eq!(tile.values, vec![12.0, 32.0]); // a2, c2
                                                   // Seek back to the top reproduces the first tile.
        conv.seek(0);
        let t0 = conv.next_tile(0, 2);
        assert_eq!(t0.values, vec![10.0, 20.0, 30.0, 21.0]);
    }

    #[test]
    fn second_strip_has_local_columns() {
        let csr = random_csr(40, 120, 9);
        let csc = csr.to_csc();
        let mut conv = StripConverter::new(&csc, 1, 16);
        let tiles = conv.convert_strip(16);
        for t in &tiles {
            assert_eq!(t.col_start, 16);
            t.validate().unwrap();
        }
    }

    #[test]
    fn empty_strip_produces_empty_tiles() {
        // Matrix with entries only in column 0; strip 1 is empty.
        let coo = Coo::from_triplets(8, 8, &[0, 3], &[0, 0], &[1.0, 2.0]).unwrap();
        let csc = Csc::from_coo(&coo);
        let mut conv = StripConverter::new(&csc, 1, 4);
        let tiles = conv.convert_strip(4);
        assert_eq!(tiles.len(), 2);
        assert!(tiles.iter().all(nmt_formats::DcsrTile::is_empty));
        assert_eq!(conv.stats().elements, 0);
        // Still pays the pointer-array load and one concluding pass/tile.
        assert_eq!(conv.stats().comparator_passes, 2);
    }

    #[test]
    fn output_bytes_match_tile_footprint() {
        let csc = figure13_csc();
        let mut conv = StripConverter::new(&csc, 0, 3);
        let tile = conv.next_tile(0, 5);
        let expected = tile.metadata_bytes() + tile.data_bytes();
        assert_eq!(conv.stats().output_bytes as usize, expected);
    }

    #[test]
    fn dcsc_conversion_is_tiling_of_the_transpose() {
        let csr = random_csr(48, 150, 21);
        let (tiles, stats) = convert_matrix_dcsc(&csr, 16, 16);
        let expected = TiledDcsr::from_csr(&csr.transpose(), 16, 16).unwrap();
        assert_eq!(tiles.len(), expected.strips().len());
        for (s, strip) in expected.strips().iter().enumerate() {
            assert_eq!(&tiles[s], strip, "strip {s}");
        }
        assert_eq!(stats.elements as usize, csr.nnz());
        // Reassembling the tiles yields A transposed; its non-empty rows
        // are A's non-empty columns (the DCSC semantics).
        let back = expected.to_csr();
        assert_eq!(back.transpose(), csr);
    }

    #[test]
    fn dcsc_of_wide_matrix() {
        // The §4.1 motivation: a wide matrix whose CSC colptr would be
        // large converts through its compact CSR image instead.
        let coo = Coo::from_triplets(4, 200, &[0, 1, 3], &[5, 150, 5], &[1.0, 2.0, 3.0]).unwrap();
        let csr = Csr::from_coo(&coo);
        let (tiles, stats) = convert_matrix_dcsc(&csr, 4, 64);
        assert_eq!(stats.elements, 3);
        // One strip over A's 4 rows; tiles cover A's 200 columns.
        assert_eq!(tiles.len(), 1);
        assert_eq!(tiles[0].len(), 200usize.div_ceil(64));
        let nnz: usize = tiles[0].iter().map(nmt_formats::DcsrTile::nnz).sum();
        assert_eq!(nnz, 3);
    }

    #[test]
    fn ragged_last_strip() {
        let csr = random_csr(20, 60, 3);
        let csc = csr.to_csc();
        // 20 cols with 16-wide strips: strip 1 is 4 wide.
        let (tiles, _) = convert_matrix(&csc, 16, 16);
        assert_eq!(tiles.len(), 2);
        let offline = TiledDcsr::from_csr(&csr, 16, 16).unwrap();
        assert_eq!(tiles[1], offline.strips()[1]);
    }
}

#[cfg(test)]
mod regression_tests {
    use super::*;
    use nmt_formats::Csc;

    #[test]
    fn zero_column_matrix_converts_to_empty_tiles() {
        // Review regression: a zero-column CSC used to panic initializing
        // the frontier pointers.
        let csc = Csc::new(4, 0, vec![0], vec![], vec![]).unwrap();
        let (tiles, stats) = convert_matrix(&csc, 16, 16);
        assert_eq!(tiles.len(), 1);
        assert!(tiles[0].iter().all(nmt_formats::DcsrTile::is_empty));
        assert_eq!(stats.elements, 0);
    }

    #[test]
    fn zero_row_matrix_converts_to_empty_tiles() {
        let csc = Csc::new(0, 8, vec![0; 9], vec![], vec![]).unwrap();
        let (tiles, stats) = convert_matrix(&csc, 4, 4);
        assert_eq!(tiles.len(), 2);
        assert_eq!(stats.elements, 0);
    }
}
