//! Data layout and load balancing across FB partitions (§6.1, Figure 17).
//!
//! The engine can only transform data resident in its own FB partition, so
//! the layout of the CSC strips determines load balance. Allocating one
//! whole strip per partition "causes a camping problem where multiple SMs
//! pound on the same FB partition". The fix is to split strips into tiles
//! and rotate the tile→partition mapping so consecutive tiles of a strip
//! live in different partitions (Figure 17, right); an SM moving to the
//! next tile pays a small hand-off (`next_fb_ptr` + `col_idx_frontier`).

use serde::{Deserialize, Serialize};

/// Errors from placement queries. These used to be `assert!`s, but a
/// malformed request must not abort a whole corpus sweep — callers turn
/// them into per-matrix error rows instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// A layout query was made with zero FB partitions.
    NoPartitions,
    /// A switch-overhead query with `rows_per_switch == 0` (the overhead
    /// ratio would divide by zero).
    ZeroSwitchGranularity,
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoPartitions => write!(f, "need at least one FB partition"),
            PlacementError::ZeroSwitchGranularity => {
                write!(f, "rows_per_switch must be positive")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// How strip data maps onto FB partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layout {
    /// Naive: strip `s` lives entirely in partition `s % P`
    /// (Figure 17, left — the camping pathology).
    StripPerPartition,
    /// Tiles of each strip rotate across partitions with a per-strip
    /// offset (Figure 17, right).
    TileRotated,
}

impl Layout {
    /// The partition owning tile `t` of strip `s` under this layout.
    ///
    /// Errors with [`PlacementError::NoPartitions`] when
    /// `num_partitions == 0` (previously a panic).
    pub fn partition_of(
        self,
        strip: usize,
        tile: usize,
        num_partitions: usize,
    ) -> Result<usize, PlacementError> {
        if num_partitions == 0 {
            return Err(PlacementError::NoPartitions);
        }
        Ok(self.partition_index(strip, tile, num_partitions))
    }

    /// Infallible core of [`Self::partition_of`]; callers have already
    /// validated `num_partitions > 0`.
    pub(crate) fn partition_index(self, strip: usize, tile: usize, num_partitions: usize) -> usize {
        match self {
            Layout::StripPerPartition => strip % num_partitions,
            Layout::TileRotated => (strip + tile) % num_partitions,
        }
    }
}

/// Cost of advancing from one tile of a strip to the next when the next
/// tile lives in a different FB partition: the current partition returns
/// `next_fb_ptr` (8 bytes) and the live `col_idx_frontier` (4 bytes per
/// engine lane), which must reach the next partition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchCost {
    /// Engine width (columns per strip).
    pub lanes: usize,
}

impl SwitchCost {
    /// Bytes transferred per partition switch.
    pub fn bytes_per_switch(&self) -> u64 {
        8 + 4 * self.lanes as u64
    }

    /// The relative traffic overhead of switching partitions every
    /// `rows_per_switch` non-zero tile rows, when an average non-zero row
    /// carries `avg_row_bytes` of useful DCSR payload (metadata + data).
    ///
    /// §6.1's finding: "the overhead … adds negligible performance impacts
    /// if the number of non-zero tile rows stored in an FB partition is
    /// not less than 64" — i.e. this ratio is ≪ 1 at
    /// `rows_per_switch ≥ 64`.
    ///
    /// Errors with [`PlacementError::ZeroSwitchGranularity`] when
    /// `rows_per_switch == 0` (previously a panic).
    pub fn overhead_fraction(
        &self,
        rows_per_switch: usize,
        avg_row_bytes: f64,
    ) -> Result<f64, PlacementError> {
        if rows_per_switch == 0 {
            return Err(PlacementError::ZeroSwitchGranularity);
        }
        let useful = rows_per_switch as f64 * avg_row_bytes;
        Ok(self.bytes_per_switch() as f64 / useful)
    }
}

/// Assign every `(strip, tile)` of a tiled matrix to a partition and
/// return, per partition, the total bytes it will serve — the quantity
/// whose max/mean ratio measures camping.
pub fn partition_loads(
    layout: Layout,
    tile_bytes: &[Vec<u64>],
    num_partitions: usize,
) -> Result<Vec<u64>, PlacementError> {
    if num_partitions == 0 {
        return Err(PlacementError::NoPartitions);
    }
    let mut loads = vec![0u64; num_partitions];
    for (s, tiles) in tile_bytes.iter().enumerate() {
        for (t, &bytes) in tiles.iter().enumerate() {
            loads[layout.partition_index(s, t, num_partitions)] += bytes;
        }
    }
    Ok(loads)
}

/// Max-over-mean load imbalance of a partition load vector (1.0 = perfect).
pub fn imbalance(loads: &[u64]) -> f64 {
    let total: u64 = loads.iter().sum();
    if total == 0 || loads.is_empty() {
        return 1.0;
    }
    let mean = total as f64 / loads.len() as f64;
    let max = loads.iter().max().copied().unwrap_or(0) as f64;
    max / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_layout_camps_when_few_strips() {
        // 2 hot strips on 4 partitions: half the machine idles.
        let tile_bytes: Vec<Vec<u64>> = vec![vec![100; 8], vec![100; 8]];
        let naive = partition_loads(Layout::StripPerPartition, &tile_bytes, 4).unwrap();
        assert_eq!(naive[2], 0);
        assert_eq!(naive[3], 0);
        assert!(imbalance(&naive) >= 2.0);
        let rotated = partition_loads(Layout::TileRotated, &tile_bytes, 4).unwrap();
        assert!(imbalance(&rotated) < imbalance(&naive));
        assert!(
            rotated.iter().all(|&l| l > 0),
            "rotation spreads every partition"
        );
    }

    #[test]
    fn rotation_balances_skewed_strips() {
        // One heavy strip, three light: rotation spreads the heavy strip's
        // tiles over all partitions.
        let tile_bytes: Vec<Vec<u64>> =
            vec![vec![1000; 16], vec![10; 16], vec![10; 16], vec![10; 16]];
        let naive = imbalance(&partition_loads(Layout::StripPerPartition, &tile_bytes, 4).unwrap());
        let rot = imbalance(&partition_loads(Layout::TileRotated, &tile_bytes, 4).unwrap());
        assert!(naive > 3.0, "naive {naive}");
        assert!(rot < 1.05, "rotated {rot}");
    }

    #[test]
    fn partition_of_is_stable_and_in_range() {
        for layout in [Layout::StripPerPartition, Layout::TileRotated] {
            for s in 0..10 {
                for t in 0..10 {
                    let p = layout.partition_of(s, t, 4).unwrap();
                    assert!(p < 4);
                    assert_eq!(p, layout.partition_of(s, t, 4).unwrap());
                }
            }
        }
    }

    #[test]
    fn degenerate_queries_error_instead_of_panicking() {
        assert_eq!(
            Layout::TileRotated.partition_of(0, 0, 0),
            Err(PlacementError::NoPartitions)
        );
        let tile_bytes: Vec<Vec<u64>> = vec![vec![1]];
        assert_eq!(
            partition_loads(Layout::TileRotated, &tile_bytes, 0),
            Err(PlacementError::NoPartitions)
        );
        let c = SwitchCost { lanes: 64 };
        assert_eq!(
            c.overhead_fraction(0, 24.0),
            Err(PlacementError::ZeroSwitchGranularity)
        );
    }

    #[test]
    fn switch_cost_bytes() {
        // 64-lane engine: 8 + 256 = 264 bytes per hand-off.
        let c = SwitchCost { lanes: 64 };
        assert_eq!(c.bytes_per_switch(), 264);
    }

    #[test]
    fn overhead_negligible_at_64_rows() {
        // A typical non-zero DCSR tile row: rowidx + rowptr entry (8 B) and
        // a couple of elements (2 x 8 B) ≈ 24 B of useful payload.
        let c = SwitchCost { lanes: 64 };
        let at64 = c.overhead_fraction(64, 24.0).unwrap();
        assert!(at64 < 0.2, "overhead at 64 rows should be small: {at64}");
        let at1 = c.overhead_fraction(1, 24.0).unwrap();
        assert!(at1 > 1.0, "switching every row must be expensive: {at1}");
        // Monotone decreasing in the switch granularity.
        assert!(c.overhead_fraction(128, 24.0).unwrap() < at64);
    }

    #[test]
    fn imbalance_degenerate_cases() {
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[0, 0]), 1.0);
        assert!((imbalance(&[5, 5, 5, 5]) - 1.0).abs() < 1e-12);
    }
}
