//! The near-memory CSC → tiled-DCSR transform engine — the paper's core
//! hardware contribution (§4).
//!
//! A conversion unit sits in each FB partition of the GPU memory
//! controller. A kernel running on an SM issues a `GetDCSRTile` request
//! (Figure 11); the unit walks the CSC columns of the requested strip with
//! per-column frontier pointers, finds the minimum row coordinate across
//! lanes with a hierarchical comparator tree, and streams out one tiled
//! DCSR row per pass — converting the storage/bandwidth-efficient format
//! into the compute-efficient one at memory speed, with no preprocessing
//! pass and no tiled-metadata footprint in DRAM.
//!
//! Modules:
//! * [`comparator`] — the 2-input/N-input minimum comparator (Figs 14–15),
//!   functional + structural.
//! * [`convert`] — the stateful strip converter (Fig 13 walk-through),
//!   verified bit-identical to offline tiling.
//! * [`timing`] — pipeline cycle model and prefetch-buffer sizing (§5.3).
//! * [`pipeline`] — cycle-level discrete simulation validating the timing
//!   model and the §5.3 buffer-sizing rule.
//! * [`area_energy`] — TSMC-16 nm-derived area/power model (§5.3).
//! * [`placement`] — FB-partition data layout and the tile-separation
//!   load-balancing scheme (§6.1, Fig 17).
//! * [`farm`] — the parallel engine farm: per-partition converters running
//!   rayon-parallel with a deterministic partition-ordered reduction.
//! * [`artifact`] — reusable conversion artifacts: pre-converted operands
//!   a serve-layer plan cache stores, byte-costed and pool-recyclable.

#![warn(missing_docs)]

pub mod area_energy;
pub mod artifact;
pub mod comparator;
pub mod convert;
pub mod farm;
pub mod mem;
pub mod pipeline;
pub mod placement;
pub mod timing;

pub use area_energy::{conversion_energy_pj, AreaEnergyModel};
pub use artifact::ConversionArtifact;
pub use comparator::{ComparatorError, ComparatorTree, MinResult, MinScratch, TreeStructure};
pub use convert::{
    convert_matrix, convert_matrix_dcsc, convert_matrix_view, publish_conversion, ConversionStats,
    StripConverter,
};
pub use farm::{
    convert_matrix_farm, convert_matrix_farm_obs, publish_farm, FarmConfig, FarmError, FarmRun,
    PartitionWork,
};
pub use pipeline::{publish_pipeline, simulate_strip, PipelineConfig, PipelineResult};
pub use placement::{imbalance, partition_loads, Layout, PlacementError, SwitchCost};
pub use timing::{EngineTiming, PrefetchBuffer};

// The zero-allocation tests in [`comparator`] count through the real
// global allocator, so the engine's test binary installs the counting
// allocator (a pass-through unless counting is switched on).
#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: nmt_obs::CountingAlloc = nmt_obs::CountingAlloc;
