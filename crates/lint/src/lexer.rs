//! A minimal Rust lexer — just enough structure for token-level lint rules.
//!
//! The offline build environment vendors every dependency (see
//! `shims/README.md`), so `syn`/`proc-macro2` are not available and the
//! lint pass carries its own lexer instead. It understands the parts of
//! the language that matter for span-accurate, comment-aware linting:
//! line and nested block comments, string/char/byte/raw-string literals,
//! lifetimes vs. char literals, numbers, identifiers and punctuation.
//! Every token records a 1-based line and column.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`, ...).
    Ident,
    /// Lifetime (`'a`, `'_`, `'static`).
    Lifetime,
    /// String literal (regular, raw or byte); `text` is the inner content.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal.
    Num,
    /// Single punctuation character (delimiters included).
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// Identifier/literal text; for [`TokenKind::Punct`] the character.
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
}

impl Token {
    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }
}

/// A comment with its position (`text` excludes the `//` / `/* */` fences).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line where the comment starts.
    pub line: u32,
    /// Comment body.
    pub text: String,
}

/// The result of lexing one file: code tokens and comments, separately.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lex `src` into tokens and comments. Never fails: malformed input
/// degenerates into punctuation tokens rather than an error, which is the
/// right behavior for a linter (the compiler owns syntax errors).
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => {
                let mut text = String::new();
                cur.bump();
                cur.bump();
                while let Some(c) = cur.peek(0) {
                    if c == '\n' {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                out.comments.push(Comment { line, text });
            }
            '/' if cur.peek(1) == Some('*') => {
                let mut text = String::new();
                let mut depth = 1usize;
                cur.bump();
                cur.bump();
                while depth > 0 {
                    match (cur.peek(0), cur.peek(1)) {
                        (Some('/'), Some('*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some('*'), Some('/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(c), _) => {
                            text.push(c);
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment { line, text });
            }
            '"' => {
                out.tokens.push(lex_string(&mut cur, line, col));
            }
            'r' | 'b' if starts_raw_or_byte_literal(&cur) => {
                out.tokens.push(lex_prefixed_literal(&mut cur, line, col));
            }
            '\'' => {
                out.tokens.push(lex_quote(&mut cur, line, col));
            }
            _ if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(c);
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text,
                    line,
                    col,
                });
            }
            _ if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(c) = cur.peek(0) {
                    if is_ident_continue(c) {
                        text.push(c);
                        cur.bump();
                        // Exponent sign: `1e-3`, `2.5E+7`.
                        if (c == 'e' || c == 'E')
                            && !text.starts_with("0x")
                            && matches!(cur.peek(0), Some('+') | Some('-'))
                            && cur.peek(1).is_some_and(|d| d.is_ascii_digit())
                        {
                            text.push(cur.bump().unwrap_or('+'));
                        }
                    } else if c == '.' && cur.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                        // Decimal point, but not `..` range or method call.
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Num,
                    text,
                    line,
                    col,
                });
            }
            _ => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// Does the cursor sit at `r"`, `r#`, `b"`, `b'`, `br"` or `br#`?
fn starts_raw_or_byte_literal(cur: &Cursor) -> bool {
    match (cur.peek(0), cur.peek(1)) {
        (Some('r'), Some('"')) | (Some('r'), Some('#')) => {
            // `r#ident` is a raw identifier, not a raw string: require the
            // `#`s to be followed by a quote eventually.
            raw_hashes_then_quote(cur, 1)
        }
        (Some('b'), Some('"')) | (Some('b'), Some('\'')) => true,
        (Some('b'), Some('r')) => raw_hashes_then_quote(cur, 2),
        _ => false,
    }
}

fn raw_hashes_then_quote(cur: &Cursor, mut ahead: usize) -> bool {
    while cur.peek(ahead) == Some('#') {
        ahead += 1;
    }
    cur.peek(ahead) == Some('"')
}

/// Lex a literal starting with `r`/`b`/`br` (raw string, byte string or
/// byte char). The prefix characters are still pending at the cursor.
fn lex_prefixed_literal(cur: &mut Cursor, line: u32, col: u32) -> Token {
    // Consume `r` / `b` / `br`.
    let mut prefix = String::new();
    while matches!(cur.peek(0), Some('r') | Some('b')) && prefix.len() < 2 {
        if let Some(c) = cur.bump() {
            prefix.push(c);
        }
    }
    if prefix.ends_with('b') && cur.peek(0) == Some('\'') {
        return lex_quote(cur, line, col);
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        cur.bump();
    }
    if hashes > 0 || prefix.ends_with('r') {
        // Raw (byte) string: ends at `"` followed by `hashes` `#`s.
        cur.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = cur.peek(0) {
            if c == '"' && (1..=hashes).all(|k| cur.peek(k) == Some('#')) {
                cur.bump();
                for _ in 0..hashes {
                    cur.bump();
                }
                break;
            }
            text.push(c);
            cur.bump();
        }
        Token {
            kind: TokenKind::Str,
            text,
            line,
            col,
        }
    } else {
        // `b"..."`
        lex_string(cur, line, col)
    }
}

/// Lex a regular (escaped) string literal; the opening quote is pending.
fn lex_string(cur: &mut Cursor, line: u32, col: u32) -> Token {
    cur.bump(); // opening quote
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => {
                // Keep escapes verbatim; rules only pattern-match names.
                text.push(c);
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            _ => text.push(c),
        }
    }
    Token {
        kind: TokenKind::Str,
        text,
        line,
        col,
    }
}

/// Lex a `'`-introduced token: lifetime or char literal. The quote is
/// pending at the cursor.
fn lex_quote(cur: &mut Cursor, line: u32, col: u32) -> Token {
    cur.bump(); // the quote (or leading `b` was consumed by caller)
    // Lifetime: `'` identifier not closed by another `'` (`'a'` is a char).
    if cur.peek(0).is_some_and(is_ident_start) && cur.peek(1) != Some('\'') {
        let mut text = String::from("'");
        while let Some(c) = cur.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            text.push(c);
            cur.bump();
        }
        return Token {
            kind: TokenKind::Lifetime,
            text,
            line,
            col,
        };
    }
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '\'' => break,
            '\\' => {
                text.push(c);
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            _ => text.push(c),
        }
    }
    Token {
        kind: TokenKind::Char,
        text,
        line,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let toks = kinds("let x = a.b[3] + 0x1F;");
        assert_eq!(toks[0], (TokenKind::Ident, "let".to_string()));
        assert!(toks.contains(&(TokenKind::Num, "3".to_string())));
        assert!(toks.contains(&(TokenKind::Num, "0x1F".to_string())));
        assert!(toks.contains(&(TokenKind::Punct, "[".to_string())));
    }

    #[test]
    fn float_vs_range_vs_method() {
        assert_eq!(
            kinds("1.5 0..n 1.0f32"),
            vec![
                (TokenKind::Num, "1.5".to_string()),
                (TokenKind::Num, "0".to_string()),
                (TokenKind::Punct, ".".to_string()),
                (TokenKind::Punct, ".".to_string()),
                (TokenKind::Ident, "n".to_string()),
                (TokenKind::Num, "1.0f32".to_string()),
            ]
        );
        // Exponents with signs stay one token.
        assert_eq!(kinds("1e-3")[0], (TokenKind::Num, "1e-3".to_string()));
    }

    #[test]
    fn comments_are_separated() {
        let lexed = lex("a // line\n/* block /* nested */ end */ b");
        assert_eq!(lexed.tokens.len(), 2);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].text, " line");
        assert!(lexed.comments[1].text.contains("nested"));
    }

    #[test]
    fn strings_and_escapes() {
        let toks = kinds(r#"m.counter_add("a.b.c", 1); "esc\"aped""#);
        assert!(toks.contains(&(TokenKind::Str, "a.b.c".to_string())));
        assert!(toks.contains(&(TokenKind::Str, "esc\\\"aped".to_string())));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r##"r#"raw "inner" body"# b"bytes" br"rawbytes""##);
        assert_eq!(toks[0], (TokenKind::Str, "raw \"inner\" body".to_string()));
        assert!(toks.contains(&(TokenKind::Str, "bytes".to_string())));
        assert!(toks.contains(&(TokenKind::Str, "rawbytes".to_string())));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(toks.contains(&(TokenKind::Lifetime, "'a".to_string())));
        assert!(toks.contains(&(TokenKind::Char, "x".to_string())));
        assert!(toks.contains(&(TokenKind::Char, "\\n".to_string())));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("a\n  bb");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn unterminated_input_does_not_hang() {
        // Malformed code must still lex (linter runs on whatever is there).
        lex("/* never closed");
        lex("\"never closed");
        lex("r#\"never closed");
    }
}
