//! Intra-crate call-graph construction over the parsed `fn` items.
//!
//! Call sites are extracted syntactically from each function's body
//! token range and resolved *by name* against the crate's own function
//! table. Resolution is deliberately conservative in the over-approximate
//! direction — when the receiver type of a method call is unknown, every
//! same-named method in the crate becomes a candidate callee — because
//! the taint pass that consumes these edges must never *miss* a flow.
//! External calls (`std`, other crates) resolve to nothing and simply
//! do not produce edges; their effects are modeled by the taint pass's
//! source/sink pattern sets instead.

use crate::lexer::{Token, TokenKind};
use crate::parse::FnItem;
use std::collections::BTreeMap;

/// One syntactic call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// The called name: last path segment, method name, or macro name.
    pub callee: String,
    /// Path segments before the callee for qualified calls
    /// (`mem::take_idx` → `["mem"]`, `Self::helper` → `["Self"]`).
    pub path: Vec<String>,
    /// 1-based line of the callee token.
    pub line: u32,
    /// `.callee(...)` — receiver type unknown.
    pub is_method: bool,
    /// `callee!(...)`.
    pub is_macro: bool,
}

/// Keywords that can precede `(` without being calls.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "fn", "let", "move", "as", "in", "loop", "else",
    "unsafe", "box", "mut", "ref", "dyn", "impl", "pub", "use", "mod", "struct", "enum", "where",
    "const", "static", "type", "trait", "break", "continue", "yield", "async", "await",
];

/// Extract every call site in the token range `[start, end)`.
pub fn call_sites(tokens: &[Token], range: (usize, usize)) -> Vec<CallSite> {
    let (start, end) = range;
    let mut out = Vec::new();
    let mut i = start;
    while i < end.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || CALL_KEYWORDS.contains(&t.text.as_str()) {
            i += 1;
            continue;
        }
        let next = tokens.get(i + 1);
        let is_macro = next.map(|n| n.is_punct('!')) == Some(true)
            && tokens
                .get(i + 2)
                .map(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'))
                == Some(true);
        let is_call = next.map(|n| n.is_punct('(')) == Some(true);
        if !is_macro && !is_call {
            i += 1;
            continue;
        }
        // `fn name(` is a declaration, not a call.
        if i > 0 && tokens[i - 1].is_ident("fn") {
            i += 1;
            continue;
        }
        let is_method = !is_macro && i > 0 && tokens[i - 1].is_punct('.');
        // Collect `seg::seg::` path prefix for qualified calls.
        let mut path = Vec::new();
        if !is_method {
            let mut j = i;
            while j >= 3
                && tokens[j - 1].is_punct(':')
                && tokens[j - 2].is_punct(':')
                && tokens[j - 3].kind == TokenKind::Ident
            {
                path.push(tokens[j - 3].text.clone());
                j -= 3;
            }
            path.reverse();
        }
        // Uppercase-initial bare names are type constructors (`Some`,
        // `Ok`, tuple structs) — local fns are snake_case; skip the
        // noise. Qualified/method calls keep their lowercase callee.
        let skip_ctor =
            !is_macro && t.text.starts_with(|c: char| c.is_ascii_uppercase());
        if !skip_ctor {
            out.push(CallSite {
                callee: t.text.clone(),
                path,
                line: t.line,
                is_method,
                is_macro,
            });
        }
        i += 1;
    }
    out
}

/// A function's identity inside a [`CallGraph`]: index into the crate's
/// function table.
pub type FnId = usize;

/// The per-crate call graph: functions plus resolved call edges.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Caller → callees (deduplicated, with the call-site line of the
    /// first occurrence, for chain reporting).
    pub edges: BTreeMap<FnId, Vec<(FnId, u32)>>,
    /// Total resolved edge count.
    pub edge_count: usize,
}

/// Look-up tables over a crate's function list.
pub struct FnTable<'a> {
    by_name: BTreeMap<&'a str, Vec<FnId>>,
    free_by_name: BTreeMap<&'a str, Vec<FnId>>,
    by_qual: BTreeMap<&'a str, Vec<FnId>>,
}

impl<'a> FnTable<'a> {
    /// Index `fns` (one entry per [`FnItem`], same order).
    pub fn new(fns: &'a [FnItem]) -> Self {
        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut free_by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        let mut by_qual: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        for (id, f) in fns.iter().enumerate() {
            by_name.entry(&f.name).or_default().push(id);
            if f.impl_type.is_none() {
                free_by_name.entry(&f.name).or_default().push(id);
            }
            by_qual.entry(&f.qual).or_default().push(id);
        }
        FnTable {
            by_name,
            free_by_name,
            by_qual,
        }
    }

    /// Resolve one call site from inside `caller` to candidate callees.
    pub fn resolve(&self, caller: &FnItem, site: &CallSite) -> Vec<FnId> {
        if site.is_macro {
            return Vec::new();
        }
        if site.is_method {
            // Receiver type unknown: every same-named method or free fn
            // is a candidate (over-approximation, documented).
            return self.by_name.get(site.callee.as_str()).cloned().unwrap_or_default();
        }
        if let Some(last) = site.path.last() {
            let subject = if last == "Self" {
                caller.impl_type.as_deref()
            } else {
                Some(last.as_str())
            };
            if let Some(ty) = subject {
                let qual = format!("{ty}::{}", site.callee);
                if let Some(ids) = self.by_qual.get(qual.as_str()) {
                    return ids.clone();
                }
            }
            // `module::free_fn(...)`: module-like (lowercase) prefixes
            // may target a free fn elsewhere in the crate.
            if last
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                || last == "crate"
                || last == "self"
                || last == "super"
            {
                return self
                    .free_by_name
                    .get(site.callee.as_str())
                    .cloned()
                    .unwrap_or_default();
            }
            // `ExternalType::method(...)` with no local impl: no edge.
            return Vec::new();
        }
        // Bare call: free functions only.
        self.free_by_name
            .get(site.callee.as_str())
            .cloned()
            .unwrap_or_default()
    }
}

/// Build the call graph for one crate. `tokens_of` maps a function to
/// the token stream of its file (functions from several files share one
/// graph; the caller hands each function's tokens back to us).
pub fn build<'a>(
    fns: &'a [FnItem],
    tokens_of: impl Fn(FnId) -> &'a [Token],
) -> (CallGraph, FnTable<'a>) {
    let table = FnTable::new(fns);
    let mut graph = CallGraph::default();
    for (id, f) in fns.iter().enumerate() {
        let Some(body) = f.body else { continue };
        let mut seen: Vec<FnId> = Vec::new();
        let mut edges: Vec<(FnId, u32)> = Vec::new();
        for site in call_sites(tokens_of(id), body) {
            for callee in table.resolve(f, &site) {
                if callee != id && !seen.contains(&callee) {
                    seen.push(callee);
                    edges.push((callee, site.line));
                }
            }
        }
        graph.edge_count += edges.len();
        if !edges.is_empty() {
            graph.edges.insert(id, edges);
        }
    }
    (graph, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_fns;

    fn graph_of(src: &str) -> (Vec<FnItem>, CallGraph, Vec<Token>) {
        let tokens = lex(src).tokens;
        let fns = parse_fns(&tokens);
        let toks = tokens.clone();
        let (g, _) = build(&fns, |_| &toks[..]);
        (fns, g, tokens)
    }

    fn edge(fns: &[FnItem], g: &CallGraph, from: &str, to: &str) -> bool {
        let fi = fns.iter().position(|f| f.qual == from).unwrap();
        let ti = fns.iter().position(|f| f.qual == to).unwrap();
        g.edges
            .get(&fi)
            .is_some_and(|es| es.iter().any(|(c, _)| *c == ti))
    }

    #[test]
    fn bare_and_qualified_calls_resolve() {
        let (fns, g, _) = graph_of(
            "fn leaf() {}\n\
             fn mid() { leaf(); }\n\
             fn top() { crate::mid(); }\n",
        );
        assert!(edge(&fns, &g, "mid", "leaf"));
        assert!(edge(&fns, &g, "top", "mid"));
    }

    #[test]
    fn method_calls_over_approximate() {
        let (fns, g, _) = graph_of(
            "struct A; impl A { fn go(&self) {} }\n\
             struct B; impl B { fn go(&self) {} }\n\
             fn drive(a: &A) { a.go(); }\n",
        );
        // Unknown receiver: both `go` methods become candidates.
        assert!(edge(&fns, &g, "drive", "A::go"));
        assert!(edge(&fns, &g, "drive", "B::go"));
    }

    #[test]
    fn external_type_calls_produce_no_edges() {
        let (fns, g, _) = graph_of(
            "fn with_capacity() {}\n\
             fn f() { let v: Vec<u8> = Vec::with_capacity(4); }\n",
        );
        // `Vec` has no local impl, so the qualified call does NOT fall
        // back onto the unrelated local free fn of the same name.
        assert!(!edge(&fns, &g, "f", "with_capacity"));
    }

    #[test]
    fn self_calls_resolve_to_the_impl_type() {
        let (fns, g, _) = graph_of(
            "struct S; impl S { fn helper() {} fn api(&self) { Self::helper(); } }",
        );
        assert!(edge(&fns, &g, "S::api", "S::helper"));
    }

    #[test]
    fn constructors_are_not_calls() {
        let (_, g, _) = graph_of("fn f() -> Option<u8> { Some(1) }");
        assert!(g.edges.is_empty());
    }

    #[test]
    fn macro_sites_are_extracted_but_unresolved() {
        let tokens = lex("fn f() { writeln!(out, \"x\").ok(); }").tokens;
        let fns = parse_fns(&tokens);
        let sites = call_sites(&tokens, fns[0].body.unwrap());
        assert!(sites.iter().any(|s| s.is_macro && s.callee == "writeln"));
    }
}
