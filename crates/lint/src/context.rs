//! Structural context over the token stream: which tokens live inside
//! test code, inside a function body, and inside a `pub` function body.
//!
//! This is a single linear pass that tracks brace scopes. It recognizes
//! `#[test]` / `#[cfg(test)]` attributes, `mod` items, `fn` items and
//! their visibility (`pub` vs. `pub(crate)`/`pub(super)` vs. private —
//! only *plain* `pub` marks the public API surface the panic rules
//! protect), and propagates that context through nested blocks.

use crate::lexer::{Comment, Token};

/// Context flags for one token.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TokenCtx {
    /// Inside a `#[cfg(test)]` module, `#[test]` fn, or other test-marked
    /// scope. Lint rules skip test code.
    pub in_test: bool,
    /// Inside some function body.
    pub in_fn: bool,
    /// Inside a plain-`pub` function body (nested private fns reset this).
    pub in_pub_fn: bool,
}

#[derive(Debug, Clone, Copy)]
struct Scope {
    /// Cumulative test-ness at this depth.
    test: bool,
    /// Visibility of the innermost enclosing fn (`None` = not in a fn).
    fn_vis: Option<bool>,
}

/// Compute a [`TokenCtx`] for every token, in lockstep with `tokens`.
pub fn contexts(tokens: &[Token]) -> Vec<TokenCtx> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut stack: Vec<Scope> = vec![Scope {
        test: false,
        fn_vis: None,
    }];
    // Pending item state, cleared at `;` / `{` / `}` boundaries.
    let mut pending_pub_plain = false;
    let mut pending_attr_test = false;
    let mut pending_fn: Option<(bool, bool)> = None; // (is_pub, is_test)
    let mut pending_mod_test: Option<bool> = None;

    let mut i = 0usize;
    while i < tokens.len() {
        let top = stack.last().copied().unwrap_or(Scope {
            test: false,
            fn_vis: None,
        });
        let ctx = TokenCtx {
            in_test: top.test,
            in_fn: top.fn_vis.is_some(),
            in_pub_fn: top.fn_vis == Some(true),
        };
        let tok = &tokens[i];
        out.push(ctx);

        if tok.is_punct('#') {
            // Attribute: `#[...]` or `#![...]`. Scan its bracket group for
            // a whole-token `test` (covers `#[test]`, `#[cfg(test)]`,
            // `#[cfg(any(test, ...))]`) and skip past it.
            let mut start = i + 1;
            if tokens.get(start).map(|t| t.is_punct('!')) == Some(true) {
                start += 1;
            }
            if tokens.get(start).map(|t| t.is_punct('[')) == Some(true) {
                let mut depth = 0usize;
                let mut saw_test = false;
                let mut end = start;
                for (j, t) in tokens.iter().enumerate().skip(start) {
                    end = j;
                    if t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if t.is_ident("test") {
                        saw_test = true;
                    }
                }
                // Every skipped token inherits the current context.
                for _ in (i + 1)..=end {
                    out.push(ctx);
                }
                pending_attr_test |= saw_test;
                i = end + 1;
                continue;
            }
        } else if tok.is_ident("pub") {
            pending_pub_plain = tokens.get(i + 1).map(|t| t.is_punct('(')) != Some(true);
        } else if tok.is_ident("fn") {
            pending_fn = Some((pending_pub_plain, pending_attr_test));
            pending_pub_plain = false;
            pending_attr_test = false;
        } else if tok.is_ident("mod") {
            pending_mod_test = Some(pending_attr_test);
            pending_pub_plain = false;
            pending_attr_test = false;
        } else if tok.is_punct('{') {
            let scope = if let Some((is_pub, is_test)) = pending_fn.take() {
                Scope {
                    test: top.test || is_test,
                    fn_vis: Some(is_pub && !(top.test || is_test)),
                }
            } else if let Some(is_test) = pending_mod_test.take() {
                Scope {
                    test: top.test || is_test,
                    fn_vis: None,
                }
            } else {
                // Plain block / impl / struct body / match: inherit, plus
                // any `#[cfg(test)]` attached directly to this item.
                Scope {
                    test: top.test || pending_attr_test,
                    fn_vis: top.fn_vis,
                }
            };
            pending_attr_test = false;
            pending_pub_plain = false;
            stack.push(scope);
        } else if tok.is_punct('}') {
            if stack.len() > 1 {
                stack.pop();
            }
            pending_fn = None;
            pending_mod_test = None;
            pending_pub_plain = false;
            pending_attr_test = false;
        } else if tok.is_punct(';') {
            // `mod foo;`, trait method declarations, statements.
            pending_fn = None;
            pending_mod_test = None;
            pending_pub_plain = false;
            pending_attr_test = false;
        }
        i += 1;
    }
    out
}

/// What a `// nmt-lint: ...` directive asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirectiveKind {
    /// `allow(<rule>)`: suppress a matching diagnostic on the next line.
    Allow,
    /// `sanitize(<rule>)`: the function annotated on the next line
    /// launders taint — dataflow passes stop propagating through it.
    Sanitize,
}

/// One `// nmt-lint: allow(<rule>) — <reason>` (or `sanitize(...)`)
/// escape hatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the directive ends on (equal to `line` unless the
    /// reason continues onto indented follow-up comment lines).
    pub end_line: u32,
    /// Allow or sanitize.
    pub kind: DirectiveKind,
    /// The rule being allowed.
    pub rule: String,
    /// The justification after the separator (may be empty = invalid).
    pub reason: String,
}

/// Parse `nmt-lint: allow(...)` / `nmt-lint: sanitize(...)` directives
/// out of a file's comments.
///
/// A directive must be the *start* of its comment (modulo whitespace), so
/// prose that merely mentions the syntax — including doc comments, whose
/// text begins with an extra `/` — is not treated as a directive.
/// Accepted separators between `allow(rule)` and the reason: `—`, `-`,
/// `:` or just whitespace. A missing reason is reported by the
/// `bad-allow` rule, not here.
///
/// A long reason may continue across lines: a `//` comment on the
/// immediately following line whose text is indented by two or more
/// spaces is appended to the reason, and the directive's `end_line`
/// advances so suppression still anchors to the code below the comment
/// block.
pub fn allow_directives(comments: &[Comment]) -> Vec<AllowDirective> {
    let mut out: Vec<AllowDirective> = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim_start().strip_prefix("nmt-lint:") else {
            // Continuation line? Must directly follow an open directive
            // and be indented like wrapped prose.
            if let Some(last) = out.last_mut() {
                let continues = c.line == last.end_line + 1
                    && c.text.starts_with("  ")
                    && !c.text.trim().is_empty();
                if continues {
                    if !last.reason.is_empty() {
                        last.reason.push(' ');
                    }
                    last.reason.push_str(c.text.trim());
                    last.end_line = c.line;
                }
            }
            continue;
        };
        let malformed = AllowDirective {
            line: c.line,
            end_line: c.line,
            kind: DirectiveKind::Allow,
            rule: String::new(),
            reason: String::new(),
        };
        let rest = rest.trim_start();
        let (kind, body) = if let Some(b) = rest.strip_prefix("allow(") {
            (DirectiveKind::Allow, b)
        } else if let Some(b) = rest.strip_prefix("sanitize(") {
            (DirectiveKind::Sanitize, b)
        } else {
            // `nmt-lint:` with anything else is a malformed directive;
            // surface it as an empty-rule allow so `bad-allow` fires.
            out.push(malformed);
            continue;
        };
        let Some((rule, after)) = body.split_once(')') else {
            out.push(malformed);
            continue;
        };
        let reason = after
            .trim_start()
            .trim_start_matches(['—', '-', ':'])
            .trim()
            .to_string();
        out.push(AllowDirective {
            line: c.line,
            end_line: c.line,
            kind,
            rule: rule.trim().to_string(),
            reason,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_at(src: &str, ident: &str) -> TokenCtx {
        let lexed = lex(src);
        let ctxs = contexts(&lexed.tokens);
        for (t, c) in lexed.tokens.iter().zip(&ctxs) {
            if t.is_ident(ident) {
                return *c;
            }
        }
        panic!("ident {ident} not found in {src}");
    }

    #[test]
    fn pub_fn_bodies_are_marked() {
        let c = ctx_at("pub fn f() { target(); }", "target");
        assert!(c.in_pub_fn && c.in_fn && !c.in_test);
    }

    #[test]
    fn private_and_restricted_fns_are_not_pub() {
        assert!(!ctx_at("fn f() { target(); }", "target").in_pub_fn);
        assert!(!ctx_at("pub(crate) fn f() { target(); }", "target").in_pub_fn);
        assert!(!ctx_at("pub(super) fn f() { target(); }", "target").in_pub_fn);
    }

    #[test]
    fn nested_private_fn_resets_pub() {
        let src = "pub fn outer() { fn inner() { target(); } other(); }";
        assert!(!ctx_at(src, "target").in_pub_fn);
        assert!(ctx_at(src, "other").in_pub_fn);
    }

    #[test]
    fn blocks_inside_fn_inherit() {
        let src = "pub fn f(x: bool) { if x { target(); } }";
        assert!(ctx_at(src, "target").in_pub_fn);
        let src = "pub fn f(x: u8) { match x { _ => target() } }";
        assert!(ctx_at(src, "target").in_pub_fn);
    }

    #[test]
    fn cfg_test_mod_is_test() {
        let src = "#[cfg(test)] mod tests { pub fn f() { target(); } }";
        let c = ctx_at(src, "target");
        assert!(c.in_test && !c.in_pub_fn);
    }

    #[test]
    fn test_fn_attr_is_test() {
        let src = "#[test] fn check() { target(); }";
        assert!(ctx_at(src, "target").in_test);
    }

    #[test]
    fn non_test_mod_is_not_test() {
        let src = "mod inner { pub fn f() { target(); } }";
        let c = ctx_at(src, "target");
        assert!(!c.in_test && c.in_pub_fn);
    }

    #[test]
    fn unrelated_attrs_do_not_mark_test() {
        let src = "#[derive(Debug)] pub struct S; pub fn f() { target(); }";
        assert!(!ctx_at(src, "target").in_test);
    }

    #[test]
    fn impl_methods_track_visibility() {
        let src = "impl S { pub fn api(&self) { target(); } fn helper(&self) { other(); } }";
        assert!(ctx_at(src, "target").in_pub_fn);
        assert!(!ctx_at(src, "other").in_pub_fn);
    }

    #[test]
    fn closures_inherit_enclosing_fn() {
        let src = "pub fn f(v: Vec<u32>) { v.iter().map(|x| { target(x) }); }";
        assert!(ctx_at(src, "target").in_pub_fn);
    }

    #[test]
    fn allow_directive_parsing() {
        let lexed = lex(
            "// nmt-lint: allow(panic) — lock poisoning is unrecoverable\n\
             // nmt-lint: allow(wallclock): trace epoch\n\
             // nmt-lint: allow(slice-index)\n\
             // plain comment\n",
        );
        let d = allow_directives(&lexed.comments);
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].rule, "panic");
        assert_eq!(d[0].reason, "lock poisoning is unrecoverable");
        assert_eq!(d[1].rule, "wallclock");
        assert_eq!(d[1].reason, "trace epoch");
        assert_eq!(d[2].rule, "slice-index");
        assert_eq!(d[2].reason, "");
    }

    #[test]
    fn malformed_directive_yields_empty_rule() {
        let lexed = lex("// nmt-lint: disable(panic)\n");
        let d = allow_directives(&lexed.comments);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "");
    }

    #[test]
    fn split_reason_continues_on_indented_comment_lines() {
        let lexed = lex(
            "// nmt-lint: allow(panic) — the input is validated two\n\
             //   frames up, so the unwrap cannot fire; splitting the\n\
             //   justification keeps lines under the width limit\n\
             x.unwrap();\n",
        );
        let d = allow_directives(&lexed.comments);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
        assert_eq!(d[0].end_line, 3);
        assert!(d[0].reason.starts_with("the input is validated"));
        assert!(d[0].reason.ends_with("width limit"));
    }

    #[test]
    fn unindented_comment_does_not_continue_a_directive() {
        let lexed = lex(
            "// nmt-lint: allow(panic) — checked\n\
             // an ordinary comment, not a continuation\n",
        );
        let d = allow_directives(&lexed.comments);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].end_line, 1);
        assert_eq!(d[0].reason, "checked");
    }

    #[test]
    fn sanitize_directives_are_parsed() {
        let lexed = lex("// nmt-lint: sanitize(determinism-flow) — output is sorted\n");
        let d = allow_directives(&lexed.comments);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].kind, DirectiveKind::Sanitize);
        assert_eq!(d[0].rule, "determinism-flow");
        assert_eq!(d[0].reason, "output is sorted");
    }
}
