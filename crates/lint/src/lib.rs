//! `nmt-lint`: repo-specific static analysis for the determinism and
//! panic-freedom contracts.
//!
//! The workspace's headline guarantees — byte-identical BENCH ledgers and
//! decision audits at any seed or thread count, typed errors instead of
//! panics on the sweep path — are behavioral invariants that one stray
//! `HashMap` iteration or `unwrap()` can silently re-break. This crate
//! enforces them *statically*, before code runs:
//!
//! | rule            | scope                         | severity |
//! |-----------------|-------------------------------|----------|
//! | `unordered-map` | all library sources           | error    |
//! | `wallclock`     | all except `obs` spans        | error    |
//! | `thread-order`  | determinism-scoped modules    | error    |
//! | `panic`         | plain-`pub` fns, lib crates   | error    |
//! | `slice-index`   | plain-`pub` fns, lib crates   | warning (error when determinism-scoped) |
//! | `hot-alloc`     | allocation-hot-path modules   | error    |
//! | `metric-name`   | all library sources           | error    |
//! | `bad-allow`     | allow-comment hygiene         | error    |
//! | `unused-allow`  | allow-comment hygiene         | warning  |
//!
//! Justified exceptions are annotated in source as
//! `// nmt-lint: allow(<rule>) — <reason>`; the reason is mandatory and
//! every suppression is counted in the JSON report.
//!
//! There is no `syn` in the offline dependency set (see `shims/`), so the
//! analysis runs on a purpose-built lexer plus a structural context pass —
//! see [`lexer`] and [`context`]. Run it via `cargo xtask lint`.

pub mod callgraph;
pub mod context;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod rules;
pub mod taint;

pub use report::{Diagnostic, Report, Severity, SuppressionRecord, Summary};
pub use rules::{check_source, rule_info, rules_markdown, FileClass, RulePass, RULES};
pub use taint::{analyze_crate, AnalyzeReport, CrateStats, FileInput, ANALYZE_SCHEMA_VERSION};

use std::fmt;
use std::path::{Path, PathBuf};

/// Modules whose output lands in serialized artifacts (run ledger,
/// decision audit, farm reduction, kernel stats): the determinism rules
/// apply in full here.
pub const DETERMINISM_SCOPED: &[&str] = &[
    "crates/bench/src/ledger.rs",
    "crates/core/src/audit.rs",
    "crates/engine/src/farm.rs",
    "crates/fault/src/lib.rs",
    "crates/serve/src/ledger.rs",
    "crates/serve/src/trace.rs",
    "crates/sim/src/stats.rs",
];

/// The sanctioned wall-clock readers: `obs` span timing, the counting
/// allocator's scope bookkeeping that rides along with it, and the
/// microbench harness's timer core. Everything else must route timing
/// through an [`ObsContext`] span or the harness so the determinism
/// story stays auditable.
///
/// [`ObsContext`]: https://docs.rs/nmt-obs
pub const WALLCLOCK_ALLOWED: &[&str] = &[
    "crates/obs/src/span.rs",
    "crates/obs/src/alloc.rs",
    "crates/bench/src/harness.rs",
];

/// The allocation hot paths: the conversion farm, the strip converter,
/// the comparator tree, and the online B-stationary kernel. These draw
/// their working buffers from the `nmt_engine::mem` pools; the
/// `hot-alloc` rule bans ad-hoc `Vec::new`/`vec![]` here so per-strip
/// allocation churn cannot silently return.
pub const HOT_PATH_SCOPED: &[&str] = &[
    "crates/engine/src/comparator.rs",
    "crates/engine/src/convert.rs",
    "crates/engine/src/farm.rs",
    "crates/kernels/src/bstationary.rs",
];

/// Modules that coordinate across threads with atomics or feed the
/// determinism-scoped set: the `atomic-ordering` rule requires every
/// atomic operation here to carry a `// ordering:` justification
/// comment (`Relaxed` only for monotone counters).
pub const CONCURRENCY_SCOPED: &[&str] = &[
    "crates/bench/src/diff.rs",
    "crates/bench/src/progress.rs",
    "crates/mem/src/lib.rs",
    "crates/obs/src/alloc.rs",
    "crates/obs/src/recorder.rs",
    "crates/obs/src/span.rs",
    "crates/serve/src/cache.rs",
];

/// Errors from driving the linter (I/O and path problems; findings are
/// not errors, they live in the [`Report`]).
#[derive(Debug)]
pub enum LintError {
    /// Reading a source file or directory failed.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error message.
        message: String,
    },
    /// A requested path does not exist or is not lintable.
    BadPath(PathBuf),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Io { path, message } => {
                write!(f, "i/o error at {}: {message}", path.display())
            }
            LintError::BadPath(p) => write!(f, "not a lintable path: {}", p.display()),
        }
    }
}

impl std::error::Error for LintError {}

/// Classify a workspace-relative path for rule scoping.
///
/// Binary targets (anything under a `bin/` directory or named `main.rs`)
/// keep the determinism rules but are exempt from the pub-API panic
/// rules — a CLI may legitimately die with a message. Fixture files with
/// a `scoped_` name prefix are treated as determinism-scoped, and ones
/// with a `hot_` prefix as allocation-hot-path, so the fixture suite can
/// exercise those rules.
pub fn classify(rel_path: &str) -> FileClass {
    let normalized = rel_path.replace('\\', "/");
    let file_name = normalized.rsplit('/').next().unwrap_or(&normalized);
    let is_binary = normalized.contains("/bin/") || file_name == "main.rs";
    let determinism_scoped = DETERMINISM_SCOPED.contains(&normalized.as_str())
        || file_name.starts_with("scoped_");
    FileClass {
        determinism_scoped,
        wallclock_allowed: WALLCLOCK_ALLOWED.contains(&normalized.as_str()),
        panic_checked: !is_binary,
        hot_path: HOT_PATH_SCOPED.contains(&normalized.as_str())
            || file_name.starts_with("hot_"),
        concurrency_scoped: determinism_scoped
            || CONCURRENCY_SCOPED.contains(&normalized.as_str())
            || file_name.starts_with("atomic_"),
    }
}

fn read_to_string(path: &Path) -> Result<String, LintError> {
    std::fs::read_to_string(path).map_err(|e| LintError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    })
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir).map_err(|e| LintError::Io {
        path: dir.to_path_buf(),
        message: e.to_string(),
    })?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| LintError::Io {
            path: dir.to_path_buf(),
            message: e.to_string(),
        })?;
        paths.push(entry.path());
    }
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// The library source roots of the workspace: `src/` of the root crate
/// and of every crate under `crates/`. Shims (vendored third-party API
/// stand-ins), tests, benches and examples are intentionally excluded.
pub fn workspace_sources(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)
            .map_err(|e| LintError::Io {
                path: crates_dir.clone(),
                message: e.to_string(),
            })?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for c in crate_dirs {
            let src = c.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    Ok(files)
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn lint_file_list(root: &Path, files: &[PathBuf]) -> Result<Report, LintError> {
    let mut diagnostics = Vec::new();
    let mut suppressions = Vec::new();
    for path in files {
        let rel = relative(root, path);
        let src = read_to_string(path)?;
        let (diags, used) = check_source(&rel, &src, classify(&rel));
        diagnostics.extend(diags);
        suppressions.extend(used.into_iter().map(|d| SuppressionRecord {
            path: rel.clone(),
            line: d.line,
            rule: d.rule,
            reason: d.reason,
        }));
    }
    Ok(Report::new(files.len() as u64, diagnostics, suppressions))
}

/// Lint the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> Result<Report, LintError> {
    let files = workspace_sources(root)?;
    lint_file_list(root, &files)
}

/// Lint an explicit set of files/directories (e.g. the lint fixtures).
/// Paths are resolved relative to `root`, which also anchors the
/// workspace-relative names used in diagnostics.
pub fn lint_paths(root: &Path, paths: &[PathBuf]) -> Result<Report, LintError> {
    let mut files = Vec::new();
    for p in paths {
        let abs = if p.is_absolute() { p.clone() } else { root.join(p) };
        if abs.is_dir() {
            collect_rs(&abs, &mut files)?;
        } else if abs.is_file() {
            files.push(abs);
        } else {
            return Err(LintError::BadPath(abs));
        }
    }
    lint_file_list(root, &files)
}

/// Which crate a workspace-relative path belongs to, for per-crate
/// call-graph construction. Taint never crosses a crate boundary (the
/// analysis is intra-crate); the root `src/` tree counts as one crate.
fn crate_of(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    if rel.starts_with("src/") {
        return "root".to_string();
    }
    // Fixture and ad-hoc paths group by their parent directory.
    match rel.rsplit_once('/') {
        Some((dir, _)) => dir.rsplit('/').next().unwrap_or(dir).to_string(),
        None => "adhoc".to_string(),
    }
}

fn analyze_file_list(root: &Path, files: &[PathBuf]) -> Result<AnalyzeReport, LintError> {
    use std::collections::BTreeMap;
    let mut by_crate: BTreeMap<String, Vec<FileInput>> = BTreeMap::new();
    for path in files {
        let rel = relative(root, path);
        let src = read_to_string(path)?;
        by_crate.entry(crate_of(&rel)).or_default().push(FileInput {
            class: classify(&rel),
            rel,
            src,
        });
    }
    let mut crates = Vec::new();
    let mut diagnostics = Vec::new();
    let mut suppressions = Vec::new();
    for (name, inputs) in &by_crate {
        let (stats, diags, supp) = analyze_crate(name, inputs);
        crates.push(stats);
        diagnostics.extend(diags);
        suppressions.extend(supp);
    }
    // The atomic-ordering rule rides along: it is token-detectable, so
    // the ordinary per-file pass produces it; analyze surfaces it next
    // to the flow findings so one command owns the concurrency story.
    for inputs in by_crate.values() {
        for f in inputs {
            let (diags, used) = check_source(&f.rel, &f.src, f.class);
            diagnostics.extend(diags.into_iter().filter(|d| d.rule == "atomic-ordering"));
            suppressions.extend(
                used.into_iter()
                    .filter(|d| d.rule == "atomic-ordering")
                    .map(|d| SuppressionRecord {
                        path: f.rel.clone(),
                        line: d.line,
                        rule: d.rule,
                        reason: d.reason,
                    }),
            );
        }
    }
    Ok(AnalyzeReport {
        schema_version: taint::ANALYZE_SCHEMA_VERSION,
        crates,
        report: Report::new(files.len() as u64, diagnostics, suppressions),
    })
}

/// Run the determinism dataflow analysis (plus the `atomic-ordering`
/// rule) over the whole workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> Result<AnalyzeReport, LintError> {
    let files = workspace_sources(root)?;
    analyze_file_list(root, &files)
}

/// Analyze an explicit set of files/directories (e.g. the fixtures
/// under `tests/analyze_fixtures/`).
pub fn analyze_paths(root: &Path, paths: &[PathBuf]) -> Result<AnalyzeReport, LintError> {
    let mut files = Vec::new();
    for p in paths {
        let abs = if p.is_absolute() { p.clone() } else { root.join(p) };
        if abs.is_dir() {
            collect_rs(&abs, &mut files)?;
        } else if abs.is_file() {
            files.push(abs);
        } else {
            return Err(LintError::BadPath(abs));
        }
    }
    analyze_file_list(root, &files)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_scopes_rules() {
        let c = classify("crates/engine/src/farm.rs");
        assert!(c.determinism_scoped && c.panic_checked && !c.wallclock_allowed);
        assert!(c.hot_path, "the farm is an allocation hot path");
        let c = classify("crates/engine/src/convert.rs");
        assert!(c.hot_path && !c.determinism_scoped);
        let c = classify("crates/kernels/src/bstationary.rs");
        assert!(c.hot_path);
        let c = classify("tests/lint_fixtures/hot_alloc.rs");
        assert!(c.hot_path && !c.determinism_scoped);
        let c = classify("crates/engine/src/mem.rs");
        assert!(!c.hot_path, "the pool itself may allocate");
        let c = classify("crates/obs/src/span.rs");
        assert!(c.wallclock_allowed && !c.determinism_scoped);
        let c = classify("crates/obs/src/alloc.rs");
        assert!(c.wallclock_allowed, "alloc scope rides the span clock");
        let c = classify("crates/bench/src/harness.rs");
        assert!(c.wallclock_allowed, "the microbench timer core is sanctioned");
        let c = classify("crates/kernels/src/bstationary.rs");
        assert!(
            !c.wallclock_allowed,
            "kernels must route timing through obs spans"
        );
        let c = classify("src/bin/nmt-cli.rs");
        assert!(!c.panic_checked);
        let c = classify("crates/bench/src/bin/fig05_strip_hist.rs");
        assert!(!c.panic_checked);
        let c = classify("tests/lint_fixtures/scoped_thread_order.rs");
        assert!(c.determinism_scoped);
        let c = classify("crates/formats/src/csc.rs");
        assert!(c.panic_checked && !c.determinism_scoped && !c.wallclock_allowed);
    }

    #[test]
    fn every_scoped_path_is_normalized() {
        for p in DETERMINISM_SCOPED
            .iter()
            .chain(WALLCLOCK_ALLOWED)
            .chain(HOT_PATH_SCOPED)
        {
            assert!(!p.contains('\\'), "{p} must use forward slashes");
            assert!(p.ends_with(".rs"));
        }
    }

    #[test]
    fn lint_paths_rejects_missing() {
        let err = lint_paths(Path::new("/nonexistent-root"), &[PathBuf::from("nope.rs")]);
        assert!(matches!(err, Err(LintError::BadPath(_))));
    }
}
