//! Item-level parsing on top of the lexer: find every `fn` item, its
//! qualified name, visibility, and body token range.
//!
//! This is the structural layer the dataflow passes ([`crate::callgraph`],
//! [`crate::taint`]) build on. It is *not* a grammar-complete parser —
//! there is no `syn` in the offline dependency set — but a single linear
//! walk that tracks brace scopes well enough to answer three questions
//! per function: what is it called (including the `impl` type for
//! methods), where does its body start and end in the token stream, and
//! is it test code.
//!
//! Known approximations, shared with the taint pass's documentation in
//! DESIGN.md §6i:
//!
//! * impl headers with exotic const-generic blocks (`impl Foo where
//!   [(); N]: Sized`) may mis-resolve the subject type;
//! * module paths are not tracked — two `fn helper` items in different
//!   inline modules of one file collide by name (an over-approximation:
//!   the call graph gains edges, never loses them).

use crate::context::contexts;
use crate::lexer::{Token, TokenKind};

/// One `fn` item found in a file's token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Bare function name (`record`, `take`, ...).
    pub name: String,
    /// Qualified name: `Type::name` for methods in an `impl`/`trait`
    /// block, otherwise just `name`.
    pub qual: String,
    /// The `impl`/`trait` subject type, when this is a method.
    pub impl_type: Option<String>,
    /// Plain `pub` (the restricted forms count as private here).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside `#[cfg(test)]` / `#[test]` scope.
    pub in_test: bool,
    /// Token-index range of the signature: `[fn_kw, body_open)` (or up
    /// to the terminating `;` for bodyless declarations).
    pub sig: (usize, usize),
    /// Token-index range of the body, *exclusive* of the braces.
    /// `None` for trait-method declarations and other bodyless items.
    pub body: Option<(usize, usize)>,
}

/// What kind of scope a `{` opened, for the owner stack.
#[derive(Debug, Clone)]
enum Owner {
    /// An `impl Type` / `trait Name` block: methods inside get
    /// `Type::`-qualified names.
    Impl(String),
    /// Anything else (fn body, mod, struct, match, plain block).
    Other,
}

const FN_MODIFIERS: &[&str] = &["const", "unsafe", "extern", "async", "default"];

/// Was the `fn` at token index `i` declared plain-`pub`?
fn fn_is_pub(tokens: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        match t.kind {
            TokenKind::Ident if FN_MODIFIERS.contains(&t.text.as_str()) => continue,
            // `extern "C"` ABI string.
            TokenKind::Str => continue,
            TokenKind::Punct if t.is_punct(')') => {
                // Walk back over a `( ... )` group; if it belongs to a
                // `pub(...)` restriction, the fn is not plain-pub.
                let mut depth = 1usize;
                while j > 0 && depth > 0 {
                    j -= 1;
                    if tokens[j].is_punct(')') {
                        depth += 1;
                    } else if tokens[j].is_punct('(') {
                        depth -= 1;
                    }
                }
                return false;
            }
            TokenKind::Ident if t.text == "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// Scan an `impl`/`trait` header starting after the keyword at `i`;
/// return the subject type's last path segment. For `impl Trait for
/// Type` the subject is `Type`.
fn impl_subject(tokens: &[Token], i: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut subject: Option<String> = None;
    let mut after_for = false;
    let mut j = i + 1;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('{') || t.is_punct(';') {
            break;
        }
        match t.kind {
            TokenKind::Punct if t.is_punct('<') => angle += 1,
            TokenKind::Punct if t.is_punct('>') => angle -= 1,
            TokenKind::Ident if angle == 0 => match t.text.as_str() {
                "where" => break,
                "for" => {
                    after_for = true;
                    subject = None;
                }
                "dyn" | "unsafe" | "const" | "impl" => {}
                _ => {
                    // Keep overwriting: the last segment of the path
                    // before `<`/`{`/`where` is the type name.
                    let _ = after_for;
                    subject = Some(t.text.clone());
                }
            },
            _ => {}
        }
        j += 1;
    }
    subject
}

/// Parse every `fn` item out of a token stream.
pub fn parse_fns(tokens: &[Token]) -> Vec<FnItem> {
    let ctxs = contexts(tokens);
    let mut out = Vec::new();
    let mut stack: Vec<Owner> = Vec::new();
    let mut pending: Option<Owner> = None;

    let mut i = 0usize;
    while i < tokens.len() {
        let tok = &tokens[i];
        if tok.is_ident("impl") {
            pending = Some(match impl_subject(tokens, i) {
                Some(ty) => Owner::Impl(ty),
                None => Owner::Other,
            });
        } else if tok.is_ident("trait") {
            // `trait Name: Bounds {` — the subject is the first ident,
            // not the last (bounds follow the colon).
            pending = Some(match tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) {
                Some(t) => Owner::Impl(t.text.clone()),
                None => Owner::Other,
            });
        } else if tok.is_ident("fn") {
            let name = tokens
                .get(i + 1)
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone());
            if let Some(name) = name {
                let impl_type = match stack.last() {
                    Some(Owner::Impl(ty)) => Some(ty.clone()),
                    _ => None,
                };
                let qual = match &impl_type {
                    Some(ty) => format!("{ty}::{name}"),
                    None => name.clone(),
                };
                // Scan forward for the body-open `{` (or `;`) at
                // paren/bracket depth zero.
                let mut paren = 0i32;
                let mut bracket = 0i32;
                let mut j = i + 1;
                let mut sig_end = tokens.len();
                let mut body: Option<(usize, usize)> = None;
                while j < tokens.len() {
                    let t = &tokens[j];
                    if t.is_punct('(') {
                        paren += 1;
                    } else if t.is_punct(')') {
                        paren -= 1;
                    } else if t.is_punct('[') {
                        bracket += 1;
                    } else if t.is_punct(']') {
                        bracket -= 1;
                    } else if paren == 0 && bracket == 0 {
                        if t.is_punct(';') {
                            sig_end = j;
                            break;
                        }
                        if t.is_punct('{') {
                            sig_end = j;
                            let mut depth = 1usize;
                            let mut k = j + 1;
                            while k < tokens.len() && depth > 0 {
                                if tokens[k].is_punct('{') {
                                    depth += 1;
                                } else if tokens[k].is_punct('}') {
                                    depth -= 1;
                                }
                                k += 1;
                            }
                            body = Some((j + 1, k.saturating_sub(1)));
                            break;
                        }
                    }
                    j += 1;
                }
                out.push(FnItem {
                    is_pub: fn_is_pub(tokens, i),
                    in_test: ctxs.get(i).is_some_and(|c| c.in_test),
                    line: tok.line,
                    name,
                    qual,
                    impl_type,
                    sig: (i, sig_end),
                    body,
                });
                // The walk continues *into* the body so nested fns are
                // still found; the owner stack handles the braces.
            }
            pending = Some(Owner::Other);
        } else if tok.is_punct('{') {
            stack.push(pending.take().unwrap_or(Owner::Other));
        } else if tok.is_punct('}') {
            stack.pop();
            pending = None;
        } else if tok.is_punct(';') {
            pending = None;
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<FnItem> {
        parse_fns(&lex(src).tokens)
    }

    #[test]
    fn free_fns_and_methods_are_qualified() {
        let got = fns(
            "pub fn free() {}\n\
             struct S;\n\
             impl S { pub fn method(&self) {} fn helper() {} }\n\
             impl std::fmt::Display for S {\n\
                 fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { todo!() }\n\
             }\n",
        );
        let quals: Vec<&str> = got.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["free", "S::method", "S::helper", "S::fmt"]);
        assert!(got[0].is_pub && got[1].is_pub && !got[2].is_pub);
        assert_eq!(got[1].impl_type.as_deref(), Some("S"));
    }

    #[test]
    fn generic_impl_headers_resolve_the_subject() {
        let got = fns("impl<T: Clone> Pool<T> where T: Send { fn take(&self) {} }");
        assert_eq!(got[0].qual, "Pool::take");
    }

    #[test]
    fn bodies_span_the_brace_group() {
        let src = "fn f(x: u8) -> u8 { if x > 0 { g(x) } else { 0 } }";
        let got = fns(src);
        assert_eq!(got.len(), 1);
        let toks = lex(src).tokens;
        let (s, e) = got[0].body.expect("has a body");
        // The body range covers everything between the outer braces.
        assert!(toks[s..e].iter().any(|t| t.is_ident("g")));
        assert!(toks[s..e].iter().any(|t| t.is_ident("else")));
        assert_eq!(toks[e].text, "}");
    }

    #[test]
    fn bodyless_trait_methods_have_no_body() {
        let got = fns("trait T { fn required(&self); fn provided(&self) { helper() } }");
        assert_eq!(got.len(), 2);
        assert!(got[0].body.is_none());
        assert!(got[1].body.is_some());
        assert_eq!(got[0].qual, "T::required");
    }

    #[test]
    fn nested_fns_are_found_and_not_method_qualified() {
        let got = fns("impl S { fn outer(&self) { fn inner() {} } }");
        let quals: Vec<&str> = got.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["S::outer", "inner"]);
    }

    #[test]
    fn visibility_modifiers_are_seen_through() {
        let got = fns(
            "pub const unsafe fn a() {}\n\
             pub(crate) fn b() {}\n\
             pub extern \"C\" fn c() {}\n\
             fn d() {}\n",
        );
        let vis: Vec<bool> = got.iter().map(|f| f.is_pub).collect();
        assert_eq!(vis, vec![true, false, true, false]);
    }

    #[test]
    fn test_scope_is_tracked() {
        let got = fns("#[cfg(test)] mod t { fn case() {} } fn live() {}");
        assert!(got[0].in_test);
        assert!(!got[1].in_test);
    }

    #[test]
    fn fn_pointer_types_in_signatures_do_not_confuse_body_detection() {
        let got = fns("fn apply(f: fn(u8) -> u8, x: u8) -> u8 { f(x) }");
        // `fn(u8) -> u8` inside the parameter list is a type, not an
        // item; it has no name token after it that parses as an item,
        // but the *outer* fn must still resolve its body.
        assert_eq!(got.iter().filter(|f| f.name == "apply").count(), 1);
        let apply = got.iter().find(|f| f.name == "apply").unwrap();
        assert!(apply.body.is_some());
    }
}
