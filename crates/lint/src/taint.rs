//! Source→sink determinism taint analysis over the intra-crate call
//! graph.
//!
//! A function is *tainted* when it can observe a nondeterministic value:
//! wall-clock reads, thread identity, `HashMap`/`HashSet` iteration,
//! the return value of an atomic `fetch_*`, environment variables, or
//! parallel-iterator reductions (the proxy for float reduction over a
//! nondeterministic order). Taint propagates from callee to caller along
//! the call graph. A *sink* is a serialization or output-writing call;
//! a sink inside a tainted function is a `determinism-flow` finding,
//! reported with the full call path back to the original source.
//!
//! Two escape hatches, both mandatory-reason and counted in the report:
//!
//! * `// nmt-lint: allow(determinism-flow) — <why>` on/above the sink
//!   line suppresses one finding;
//! * `// nmt-lint: sanitize(determinism-flow) — <why>` above a `fn`
//!   declares that the function erases the nondeterminism it observes
//!   (e.g. a content-ordered sort), stopping propagation through it.
//!
//! Approximations are deliberate and one-sided where possible (see
//! DESIGN.md §6i): method calls resolve to every same-named local
//! method (over-approximate, may report spurious chains), while values
//! flowing through fields, returns or channels without a call edge are
//! not tracked (under-approximate, may miss flows — the token-level
//! rules `thread-order`/`wallclock`/`unordered-map` backstop those).

use crate::callgraph::{self, call_sites, CallSite, FnId};
use crate::context::{allow_directives, AllowDirective, DirectiveKind};
use crate::lexer::{lex, Token, TokenKind};
use crate::parse::{parse_fns, FnItem};
use crate::report::{Diagnostic, Report, Severity, SuppressionRecord};
use crate::rules::FileClass;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Report schema version for the analyze JSON artifact.
pub const ANALYZE_SCHEMA_VERSION: u32 = 1;

/// One file handed to the analyzer.
#[derive(Debug, Clone)]
pub struct FileInput {
    /// Workspace-relative path (used in diagnostics).
    pub rel: String,
    /// Full source text.
    pub src: String,
    /// Rule-scoping classification (binaries are exempt from sinks).
    pub class: FileClass,
}

/// A directly-observed nondeterminism source inside a function body.
#[derive(Debug, Clone)]
pub struct TaintSource {
    /// Source kind: `wallclock`, `thread-id`, `unordered-iter`,
    /// `atomic-rmw`, `env-read`, `parallel-iter`.
    pub kind: &'static str,
    /// 1-based line of the observing token.
    pub line: u32,
    /// The observing expression's head token text (`Instant`,
    /// `fetch_add`, ...).
    pub what: String,
}

const ENV_READERS: &[&str] = &["var", "var_os", "vars", "vars_os"];

/// Serialization / output-writing functions and methods.
const SINK_FNS: &[&str] = &[
    "serialize",
    "to_json",
    "to_value",
    "to_writer",
    "to_string_pretty",
    "write",
    "write_all",
    "write_fmt",
    "write_str",
];

/// Output-writing macros. `eprint!`/`eprintln!` are deliberately absent:
/// stderr is human diagnostics, never a determinism artifact.
const SINK_MACROS: &[&str] = &["write", "writeln", "print", "println"];

/// Scan a body token range for direct nondeterminism sources.
pub fn scan_sources(tokens: &[Token], range: (usize, usize)) -> Vec<TaintSource> {
    let (start, end) = range;
    let end = end.min(tokens.len());
    let mut out = Vec::new();
    let mut push = |kind: &'static str, t: &Token| {
        out.push(TaintSource {
            kind,
            line: t.line,
            what: t.text.clone(),
        });
    };
    for i in start..end {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev_dot = i > start && tokens[i - 1].is_punct('.');
        let next_paren = tokens.get(i + 1).map(|n| n.is_punct('(')) == Some(true);
        match t.text.as_str() {
            "Instant" | "SystemTime" => push("wallclock", t),
            "elapsed" if prev_dot && next_paren => push("wallclock", t),
            "HashMap" | "HashSet" => push("unordered-iter", t),
            "ThreadId" => push("thread-id", t),
            "thread"
                if tokens.get(i + 1).map(|n| n.is_punct(':')) == Some(true)
                    && tokens.get(i + 2).map(|n| n.is_punct(':')) == Some(true)
                    && tokens.get(i + 3).map(|n| n.is_ident("current")) == Some(true) =>
            {
                push("thread-id", t);
            }
            "env"
                if tokens.get(i + 1).map(|n| n.is_punct(':')) == Some(true)
                    && tokens.get(i + 2).map(|n| n.is_punct(':')) == Some(true)
                    && tokens
                        .get(i + 3)
                        .map(|n| {
                            n.kind == TokenKind::Ident
                                && ENV_READERS.contains(&n.text.as_str())
                        })
                        == Some(true) =>
            {
                push("env-read", t);
            }
            name if name.starts_with("fetch_")
                && prev_dot
                && next_paren
                && rmw_result_used(tokens, start, i) =>
            {
                push("atomic-rmw", t);
            }
            name if name.starts_with("par_") && prev_dot && next_paren => {
                push("parallel-iter", t);
            }
            _ => {}
        }
    }
    out
}

/// Is the return value of the `fetch_*` call at token `i` consumed?
/// A statement-position call whose value is dropped (`x.fetch_add(n, O);`)
/// is a plain counter bump, not a nondeterminism observation.
fn rmw_result_used(tokens: &[Token], body_start: usize, i: usize) -> bool {
    // Token after the call's closing paren.
    let mut j = i + 1;
    let mut depth = 0i32;
    while j < tokens.len() {
        if tokens[j].is_punct('(') {
            depth += 1;
        } else if tokens[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j += 1;
    }
    let followed_by_semi = tokens.get(j + 1).map(|t| t.is_punct(';')) == Some(true);
    if !followed_by_semi {
        return true;
    }
    // Walk back over the receiver chain to the statement's first token.
    let stop_keywords = ["let", "return", "break", "yield", "match", "if", "while", "in"];
    let mut k = i.saturating_sub(1); // the `.`
    while k > body_start {
        let t = &tokens[k - 1];
        let chain = match t.kind {
            TokenKind::Ident => !stop_keywords.contains(&t.text.as_str()),
            TokenKind::Punct => {
                if t.is_punct(')') || t.is_punct(']') {
                    // Skip the balanced group.
                    let close = if t.is_punct(')') { ')' } else { ']' };
                    let open = if close == ')' { '(' } else { '[' };
                    let mut d = 1i32;
                    let mut m = k - 1;
                    while m > body_start && d > 0 {
                        m -= 1;
                        if tokens[m].is_punct(close) {
                            d += 1;
                        } else if tokens[m].is_punct(open) {
                            d -= 1;
                        }
                    }
                    k = m;
                    continue;
                }
                t.is_punct('.') || t.is_punct(':')
            }
            _ => false,
        };
        if !chain {
            break;
        }
        k -= 1;
    }
    // Statement position (`;`/`{`/`}` or body start before the chain)
    // plus a dropped result: the value is unused.
    let statement_position = if k > body_start {
        let t = &tokens[k - 1];
        t.is_punct(';') || t.is_punct('{') || t.is_punct('}')
    } else {
        true
    };
    !statement_position
}

/// One serialization sink call site.
#[derive(Debug, Clone)]
pub struct SinkSite {
    /// Sink name (`write_all`, `writeln`, ...).
    pub name: String,
    /// 1-based line.
    pub line: u32,
}

/// Scan a body token range for serialization/output sinks.
pub fn scan_sinks(tokens: &[Token], range: (usize, usize)) -> Vec<SinkSite> {
    call_sites(tokens, range)
        .into_iter()
        .filter(is_sink)
        .map(|s| SinkSite {
            name: s.callee,
            line: s.line,
        })
        .collect()
}

fn is_sink(site: &CallSite) -> bool {
    if site.is_macro {
        return SINK_MACROS.contains(&site.callee.as_str());
    }
    SINK_FNS.contains(&site.callee.as_str())
        || (site.callee == "to_string"
            && site.path.last().is_some_and(|p| p == "serde_json"))
}

/// Per-crate call-graph and taint statistics for the JSON artifact.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrateStats {
    /// Crate name (directory under `crates/`, or `root`).
    pub name: String,
    /// Files analyzed.
    pub files: u64,
    /// `fn` items found.
    pub functions: u64,
    /// Resolved intra-crate call edges.
    pub call_edges: u64,
    /// Direct nondeterminism sources observed.
    pub taint_sources: u64,
    /// Functions tainted after propagation (sanitizers excluded).
    pub tainted_functions: u64,
    /// Serialization sink call sites.
    pub sink_sites: u64,
    /// Sanitizer annotations honored.
    pub sanitizers: u64,
}

/// The `cargo xtask analyze` result: per-crate stats plus a standard
/// diagnostics report (rules: `determinism-flow`, `atomic-ordering`,
/// `unused-allow` hygiene for stale analysis-pass directives).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalyzeReport {
    /// JSON schema version ([`ANALYZE_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Per-crate call-graph statistics, sorted by crate name.
    pub crates: Vec<CrateStats>,
    /// Diagnostics and suppression accounting.
    pub report: Report,
}

impl AnalyzeReport {
    /// True when the run should fail.
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.report.failed(deny_warnings)
    }

    /// Human rendering: stats table, then the diagnostics.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:>5} {:>5} {:>6} {:>8} {:>8} {:>6} {:>5}",
            "crate", "files", "fns", "edges", "sources", "tainted", "sinks", "sani"
        );
        for c in &self.crates {
            let _ = writeln!(
                out,
                "{:<10} {:>5} {:>5} {:>6} {:>8} {:>8} {:>6} {:>5}",
                c.name,
                c.files,
                c.functions,
                c.call_edges,
                c.taint_sources,
                c.tainted_functions,
                c.sink_sites,
                c.sanitizers
            );
        }
        out.push('\n');
        out.push_str(&self.report.render());
        out
    }

    /// Serialize as pretty JSON (the CI artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|e| format!("{{\"error\":\"analyze serialization failed: {e}\"}}"))
    }
}

struct AnalyzedFile {
    rel: String,
    lines: Vec<String>,
    tokens: Vec<Token>,
    directives: Vec<AllowDirective>,
    class: FileClass,
}

struct AFn {
    item: FnItem,
    file: usize,
}

/// How a function became tainted.
#[derive(Debug, Clone)]
enum Taint {
    /// Observes a source directly.
    Direct(TaintSource),
    /// Calls a tainted function (callee id, call-site line).
    Via(FnId, u32),
}

/// Analyze one crate's files; returns stats, surviving diagnostics and
/// used-suppression records.
pub fn analyze_crate(
    name: &str,
    files: &[FileInput],
) -> (CrateStats, Vec<Diagnostic>, Vec<SuppressionRecord>) {
    let analyzed: Vec<AnalyzedFile> = files
        .iter()
        .map(|f| {
            let lexed = lex(&f.src);
            AnalyzedFile {
                rel: f.rel.clone(),
                lines: f.src.lines().map(ToString::to_string).collect(),
                directives: allow_directives(&lexed.comments),
                tokens: lexed.tokens,
                class: f.class,
            }
        })
        .collect();

    // The combined function table (file-attributed).
    let mut afns: Vec<AFn> = Vec::new();
    for (fi, file) in analyzed.iter().enumerate() {
        for item in parse_fns(&file.tokens) {
            afns.push(AFn { item, file: fi });
        }
    }
    let items: Vec<FnItem> = afns.iter().map(|a| a.item.clone()).collect();
    let (graph, _table) = callgraph::build(&items, |id| &analyzed[afns[id].file].tokens[..]);

    // Sanitizer directives attach to the next `fn` within 3 lines
    // (attributes may sit between the comment and the item).
    let mut sanitized = vec![false; afns.len()];
    let mut sanitizer_used = Vec::new(); // (file, directive idx)
    for (fi, file) in analyzed.iter().enumerate() {
        for (di, dir) in file.directives.iter().enumerate() {
            if dir.kind != DirectiveKind::Sanitize
                || dir.rule != "determinism-flow"
                || dir.reason.is_empty()
            {
                continue;
            }
            let target = afns
                .iter()
                .enumerate()
                .filter(|(_, a)| a.file == fi && a.item.line > dir.end_line)
                .min_by_key(|(_, a)| a.item.line);
            if let Some((id, a)) = target {
                if a.item.line <= dir.end_line + 3 {
                    sanitized[id] = true;
                    sanitizer_used.push((fi, di));
                }
            }
        }
    }

    // Direct sources, then propagate callee→caller to a fixpoint.
    let mut taint: Vec<Option<Taint>> = vec![None; afns.len()];
    let mut source_count = 0u64;
    let mut worklist: Vec<FnId> = Vec::new();
    for (id, a) in afns.iter().enumerate() {
        let Some(body) = a.item.body else { continue };
        if a.item.in_test {
            continue;
        }
        let sources = scan_sources(&analyzed[a.file].tokens, body);
        source_count += sources.len() as u64;
        if let Some(first) = sources.into_iter().next() {
            taint[id] = Some(Taint::Direct(first));
            worklist.push(id);
        }
    }
    // Reverse edges for propagation.
    let mut callers: Vec<Vec<(FnId, u32)>> = vec![Vec::new(); afns.len()];
    for (caller, edges) in &graph.edges {
        for (callee, line) in edges {
            callers[*callee].push((*caller, *line));
        }
    }
    let mut qi = 0usize;
    while qi < worklist.len() {
        let id = worklist[qi];
        qi += 1;
        if sanitized[id] {
            continue; // taint stops here
        }
        for &(caller, line) in &callers[id] {
            if taint[caller].is_none() && !afns[caller].item.in_test {
                taint[caller] = Some(Taint::Via(id, line));
                worklist.push(caller);
            }
        }
    }

    // Sinks inside tainted, unsanitized functions become findings.
    let mut diagnostics = Vec::new();
    let mut sink_count = 0u64;
    let mut allow_used: Vec<(usize, usize)> = Vec::new(); // (file, directive idx)
    for (id, a) in afns.iter().enumerate() {
        let Some(body) = a.item.body else { continue };
        let file = &analyzed[a.file];
        if a.item.in_test || !file.class.panic_checked {
            // Test code and binary targets may print what they like.
            continue;
        }
        let sinks = scan_sinks(&file.tokens, body);
        sink_count += sinks.len() as u64;
        if taint[id].is_none() || sanitized[id] {
            continue;
        }
        let chain = render_chain(id, &afns, &analyzed, &taint);
        for sink in sinks {
            // An allow(determinism-flow) on the sink line or directly
            // above suppresses the finding (and is counted).
            let suppressed = file.directives.iter().enumerate().find(|(_, dir)| {
                dir.kind == DirectiveKind::Allow
                    && dir.rule == "determinism-flow"
                    && !dir.reason.is_empty()
                    && (dir.line..=dir.end_line + 1).contains(&sink.line)
            });
            if let Some((di, _)) = suppressed {
                allow_used.push((a.file, di));
                continue;
            }
            diagnostics.push(Diagnostic {
                rule: "determinism-flow".to_string(),
                severity: Severity::Error,
                path: file.rel.clone(),
                line: sink.line,
                col: 1,
                message: format!(
                    "nondeterminism can reach sink `{}` in `{}`: {chain}; make the \
                     flow deterministic, add a sanitize comment on the laundering \
                     fn, or justify with an allow comment",
                    sink.name, a.item.qual
                ),
                snippet: file
                    .lines
                    .get(sink.line as usize - 1)
                    .map(|l| l.trim_end().to_string())
                    .unwrap_or_default(),
            });
        }
    }

    // Hygiene: stale analysis-pass directives.
    for (fi, file) in analyzed.iter().enumerate() {
        for (di, dir) in file.directives.iter().enumerate() {
            if dir.rule != "determinism-flow" || dir.reason.is_empty() {
                continue;
            }
            let used = match dir.kind {
                DirectiveKind::Allow => allow_used.contains(&(fi, di)),
                DirectiveKind::Sanitize => sanitizer_used
                    .iter()
                    .any(|&(sf, sd)| sf == fi && sd == di),
            };
            if !used {
                diagnostics.push(Diagnostic {
                    rule: "unused-allow".to_string(),
                    severity: Severity::Warning,
                    path: file.rel.clone(),
                    line: dir.line,
                    col: 1,
                    message: format!(
                        "{} comment for `determinism-flow` matches nothing here; remove it",
                        match dir.kind {
                            DirectiveKind::Allow => "allow",
                            DirectiveKind::Sanitize => "sanitize",
                        }
                    ),
                    snippet: file
                        .lines
                        .get(dir.line as usize - 1)
                        .map(|l| l.trim_end().to_string())
                        .unwrap_or_default(),
                });
            }
        }
    }

    let suppressions: Vec<SuppressionRecord> = allow_used
        .iter()
        .chain(sanitizer_used.iter())
        .map(|&(fi, di)| {
            let dir = &analyzed[fi].directives[di];
            SuppressionRecord {
                path: analyzed[fi].rel.clone(),
                line: dir.line,
                rule: match dir.kind {
                    DirectiveKind::Allow => "determinism-flow".to_string(),
                    DirectiveKind::Sanitize => "determinism-flow (sanitize)".to_string(),
                },
                reason: dir.reason.clone(),
            }
        })
        .collect();

    let stats = CrateStats {
        name: name.to_string(),
        files: files.len() as u64,
        functions: afns.len() as u64,
        call_edges: graph.edge_count as u64,
        taint_sources: source_count,
        tainted_functions: taint
            .iter()
            .zip(&sanitized)
            .filter(|(t, s)| t.is_some() && !**s)
            .count() as u64,
        sink_sites: sink_count,
        sanitizers: sanitizer_used.len() as u64,
    };
    (stats, diagnostics, suppressions)
}

/// Render the sink→…→source call path for a tainted function.
fn render_chain(
    mut id: FnId,
    afns: &[AFn],
    files: &[AnalyzedFile],
    taint: &[Option<Taint>],
) -> String {
    let mut hops: Vec<String> = Vec::new();
    loop {
        let a = &afns[id];
        match &taint[id] {
            Some(Taint::Via(callee, line)) => {
                hops.push(format!(
                    "`{}` ({}:{})",
                    a.item.qual, files[a.file].rel, line
                ));
                id = *callee;
            }
            Some(Taint::Direct(src)) => {
                hops.push(format!(
                    "`{}` reads {} `{}` at {}:{}",
                    a.item.qual, src.kind, src.what, files[a.file].rel, src.line
                ));
                break;
            }
            None => break, // unreachable for tainted fns
        }
        if hops.len() > 16 {
            hops.push("…".to_string());
            break;
        }
    }
    hops.join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class() -> FileClass {
        FileClass {
            panic_checked: true,
            ..FileClass::default()
        }
    }

    fn run(src: &str) -> (CrateStats, Vec<Diagnostic>, Vec<SuppressionRecord>) {
        analyze_crate(
            "t",
            &[FileInput {
                rel: "t.rs".to_string(),
                src: src.to_string(),
                class: class(),
            }],
        )
    }

    #[test]
    fn direct_flow_is_found_with_chain() {
        let (stats, diags, _) = run(
            "use std::time::Instant;\n\
             fn stamp() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n\
             pub fn emit(out: &mut Vec<u8>) { let t = stamp(); out.write_all(&t.to_le_bytes()).ok(); }\n",
        );
        assert_eq!(stats.tainted_functions, 2, "{stats:?}");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "determinism-flow");
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains("wallclock"), "{}", diags[0].message);
        assert!(diags[0].message.contains("`emit`"));
        assert!(diags[0].message.contains("`stamp` reads"));
    }

    #[test]
    fn untainted_sinks_are_clean() {
        let (_, diags, _) = run(
            "pub fn emit(out: &mut Vec<u8>, x: u64) { out.write_all(&x.to_le_bytes()).ok(); }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn discarded_fetch_result_is_not_a_source() {
        let (stats, _, _) = run(
            "use std::sync::atomic::{AtomicU64, Ordering};\n\
             fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n\
             fn take(c: &AtomicU64) -> u64 { c.fetch_add(1, Ordering::Relaxed) }\n\
             fn assign(c: &AtomicU64) { let _x = c.fetch_add(1, Ordering::Relaxed); }\n",
        );
        // `bump` drops the value; `take` and `assign` observe it.
        assert_eq!(stats.taint_sources, 2, "{stats:?}");
    }

    #[test]
    fn sanitize_stops_propagation_and_is_counted() {
        let (stats, diags, supp) = run(
            "use std::time::Instant;\n\
             fn stamp() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n\
             // nmt-lint: sanitize(determinism-flow) — buckets are sorted, timings quantized away\n\
             fn normalize() -> u64 { stamp(); 0 }\n\
             pub fn emit(out: &mut Vec<u8>) { let t = normalize(); out.write_all(&t.to_le_bytes()).ok(); }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(stats.sanitizers, 1);
        assert_eq!(supp.len(), 1);
        assert!(supp[0].rule.contains("sanitize"));
    }

    #[test]
    fn allow_on_sink_suppresses_and_unused_allow_warns() {
        let (_, diags, supp) = run(
            "use std::time::Instant;\n\
             fn stamp() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n\
             pub fn emit(out: &mut Vec<u8>) {\n\
                 let t = stamp();\n\
                 // nmt-lint: allow(determinism-flow) — timing header is a measurement by design\n\
                 out.write_all(&t.to_le_bytes()).ok();\n\
             }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(supp.len(), 1);

        let (_, diags, _) = run(
            "// nmt-lint: allow(determinism-flow) — nothing here\n\
             pub fn quiet() {}\n",
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "unused-allow");
    }

    #[test]
    fn env_and_thread_and_map_sources_are_seen() {
        let (stats, _, _) = run(
            "fn a() -> String { std::env::var(\"X\").unwrap_or_default() }\n\
             fn b() { let _ = std::thread::current(); }\n\
             fn c() { use std::collections::HashMap; let _m: HashMap<u8, u8>; }\n",
        );
        // `HashMap` counts at both mentions inside `c`.
        assert_eq!(stats.taint_sources, 4, "{stats:?}");
        assert_eq!(stats.tainted_functions, 3, "{stats:?}");
    }

    #[test]
    fn binaries_and_tests_do_not_sink() {
        let (_, diags, _) = analyze_crate(
            "t",
            &[FileInput {
                rel: "src/bin/tool.rs".to_string(),
                src: "use std::time::Instant;\n\
                      fn stamp() -> u128 { Instant::now().elapsed().as_nanos() }\n\
                      pub fn report() { println!(\"{}\", stamp()); }\n"
                    .to_string(),
                class: FileClass::default(), // panic_checked = false
            }],
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
