//! Diagnostics, human rendering and the machine-readable JSON report.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Report schema version; bump on breaking changes to the JSON shape.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

/// Diagnostic severity. `Error` fails the run; `Warning` is reported and
/// counted (and fails under `--deny-warnings`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Reported, fails only under `--deny-warnings`.
    Warning,
    /// Fails the lint run.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding, anchored to a file/line/column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Rule name (see [`crate::rules::RULES`]).
    pub rule: String,
    /// Error or warning.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The offending source line, trimmed of trailing whitespace.
    pub snippet: String,
}

impl Diagnostic {
    /// Render rustc-style:
    ///
    /// ```text
    /// error[nmt::panic]: `.unwrap()` in a pub fn can panic; ...
    ///   --> crates/core/src/api.rs:91:14
    ///    |
    /// 91 |         .expect("...")
    ///    |              ^
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}[nmt::{}]: {}",
            self.severity, self.rule, self.message
        );
        let _ = writeln!(out, "  --> {}:{}:{}", self.path, self.line, self.col);
        let gutter = self.line.to_string().len().max(2);
        let _ = writeln!(out, "{:gutter$} |", "");
        let _ = writeln!(out, "{:>gutter$} | {}", self.line, self.snippet);
        let caret_pad = (self.col as usize).saturating_sub(1);
        let _ = writeln!(out, "{:gutter$} | {:caret_pad$}^", "", "");
        out
    }
}

/// One allow comment that suppressed a diagnostic, for accounting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuppressionRecord {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line of the allow comment.
    pub line: u32,
    /// The rule it suppresses.
    pub rule: String,
    /// The stated justification.
    pub reason: String,
}

/// Aggregated counts for the report.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Summary {
    /// Files scanned.
    pub files_scanned: u64,
    /// Error-severity diagnostics.
    pub errors: u64,
    /// Warning-severity diagnostics.
    pub warnings: u64,
    /// Diagnostics suppressed by valid allow comments.
    pub suppressed: u64,
    /// Diagnostic count per rule (post-suppression).
    pub per_rule: BTreeMap<String, u64>,
}

/// The whole lint run: every diagnostic plus suppression accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// JSON schema version ([`REPORT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Diagnostics, sorted by (path, line, col).
    pub diagnostics: Vec<Diagnostic>,
    /// Allow comments that suppressed something.
    pub suppressions: Vec<SuppressionRecord>,
    /// Aggregate counts.
    pub summary: Summary,
}

impl Report {
    /// Assemble a report from raw findings.
    pub fn new(
        files_scanned: u64,
        mut diagnostics: Vec<Diagnostic>,
        suppressions: Vec<SuppressionRecord>,
    ) -> Self {
        diagnostics.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.col, a.rule.as_str())
                .cmp(&(b.path.as_str(), b.line, b.col, b.rule.as_str()))
        });
        let mut summary = Summary {
            files_scanned,
            suppressed: suppressions.len() as u64,
            ..Summary::default()
        };
        for d in &diagnostics {
            match d.severity {
                Severity::Error => summary.errors += 1,
                Severity::Warning => summary.warnings += 1,
            }
            *summary.per_rule.entry(d.rule.clone()).or_insert(0) += 1;
        }
        Report {
            schema_version: REPORT_SCHEMA_VERSION,
            diagnostics,
            suppressions,
            summary,
        }
    }

    /// True when the run should fail.
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.summary.errors > 0 || (deny_warnings && self.summary.warnings > 0)
    }

    /// Render every diagnostic plus a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "nmt-lint: {} file(s), {} error(s), {} warning(s), {} suppressed by allow comments",
            self.summary.files_scanned,
            self.summary.errors,
            self.summary.warnings,
            self.summary.suppressed
        );
        out
    }

    /// Serialize as pretty JSON (the CI artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
            .unwrap_or_else(|e| format!("{{\"error\":\"report serialization failed: {e}\"}}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &str, sev: Severity, path: &str, line: u32) -> Diagnostic {
        Diagnostic {
            rule: rule.to_string(),
            severity: sev,
            path: path.to_string(),
            line,
            col: 3,
            message: "msg".to_string(),
            snippet: "  let x = 1;".to_string(),
        }
    }

    #[test]
    fn report_counts_and_sorts() {
        let r = Report::new(
            4,
            vec![
                diag("panic", Severity::Error, "b.rs", 9),
                diag("slice-index", Severity::Warning, "a.rs", 2),
                diag("panic", Severity::Error, "a.rs", 1),
            ],
            vec![],
        );
        assert_eq!(r.summary.errors, 2);
        assert_eq!(r.summary.warnings, 1);
        assert_eq!(r.summary.per_rule["panic"], 2);
        assert_eq!(r.diagnostics[0].path, "a.rs");
        assert_eq!(r.diagnostics[0].line, 1);
        assert!(r.failed(false));
    }

    #[test]
    fn warnings_fail_only_when_denied() {
        let r = Report::new(1, vec![diag("slice-index", Severity::Warning, "a.rs", 2)], vec![]);
        assert!(!r.failed(false));
        assert!(r.failed(true));
    }

    #[test]
    fn render_is_rustc_style() {
        let text = diag("panic", Severity::Error, "crates/x/src/lib.rs", 12).render();
        assert!(text.contains("error[nmt::panic]"));
        assert!(text.contains("--> crates/x/src/lib.rs:12:3"));
        assert!(text.contains("12 |   let x = 1;"));
        assert!(text.contains("^"));
    }

    #[test]
    fn json_roundtrips() {
        let r = Report::new(
            2,
            vec![diag("wallclock", Severity::Error, "a.rs", 5)],
            vec![SuppressionRecord {
                path: "a.rs".to_string(),
                line: 4,
                rule: "panic".to_string(),
                reason: "checked".to_string(),
            }],
        );
        let back: Report = serde_json::from_str(&r.to_json()).expect("parses");
        assert_eq!(back, r);
    }
}
