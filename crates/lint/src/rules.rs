//! The lint rule catalogue and the per-file checking pass.
//!
//! Rules operate on the lexed token stream with structural context (see
//! [`crate::context`]) — close enough to an AST walk for these patterns
//! while staying dependency-free. Each rule is documented in DESIGN.md
//! ("Invariants & static analysis"); keep the two in sync.

use crate::context::{allow_directives, contexts, AllowDirective, DirectiveKind, TokenCtx};
use crate::lexer::{lex, Comment, Token, TokenKind};
use crate::report::{Diagnostic, Severity};

/// How a file is classified for rule scoping.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// Feeds serialized artifacts (ledger/audit/farm/stats): the
    /// determinism rules (`thread-order`) apply, and `slice-index`
    /// escalates from warning to error.
    pub determinism_scoped: bool,
    /// The one sanctioned wall-clock user (`obs` spans).
    pub wallclock_allowed: bool,
    /// Library source: the `panic` rule guards plain-`pub` functions.
    /// Binary targets (`src/bin`, `benches`) are exempt.
    pub panic_checked: bool,
    /// Allocation hot path (conversion farm, comparator, online kernel):
    /// the `hot-alloc` rule bans per-call `Vec::new`/`vec![]` in favor of
    /// the `nmt_engine::mem` pools.
    pub hot_path: bool,
    /// Cross-thread coordination module: the `atomic-ordering` rule
    /// requires a `// ordering:` justification on every atomic op.
    pub concurrency_scoped: bool,
}

/// Which analysis pass produces a rule's diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RulePass {
    /// The per-file token/context pass (`cargo xtask lint`).
    Token,
    /// The call-graph dataflow pass (`cargo xtask analyze`).
    Dataflow,
}

impl RulePass {
    /// Lowercase label for tables and reports.
    pub fn label(self) -> &'static str {
        match self {
            RulePass::Token => "token",
            RulePass::Dataflow => "dataflow",
        }
    }
}

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule name as used in diagnostics and allow comments.
    pub name: &'static str,
    /// Which pass emits it.
    pub pass: RulePass,
    /// Default severity, as prose (`slice-index` escalates by scope).
    pub severity: &'static str,
    /// Where the rule applies.
    pub scope: &'static str,
    /// One-line rationale.
    pub rationale: &'static str,
}

/// Every rule the passes know about, in reporting order. This table is
/// the single source of truth: the DESIGN.md §6d catalogue is generated
/// from it (`cargo xtask lint --rules-md`) and a drift test keeps the
/// committed copy in sync.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "unordered-map",
        pass: RulePass::Token,
        severity: "error",
        scope: "all library sources",
        rationale: "HashMap/HashSet iteration order is seed-randomized; \
                    serialized artifacts must be byte-identical, use BTreeMap/BTreeSet",
    },
    RuleInfo {
        name: "wallclock",
        pass: RulePass::Token,
        severity: "error",
        scope: "all except sanctioned clock readers",
        rationale: "Instant/SystemTime readings differ per run; only obs spans \
                    may observe wall-clock time",
    },
    RuleInfo {
        name: "thread-order",
        pass: RulePass::Token,
        severity: "error",
        scope: "determinism-scoped modules",
        rationale: "atomic read-modify-write and channel drains commit results in \
                    scheduling order; reductions on serialized paths must be index-ordered",
    },
    RuleInfo {
        name: "panic",
        pass: RulePass::Token,
        severity: "error",
        scope: "plain-pub fns, lib crates",
        rationale: "pub APIs on the sweep path return typed errors instead of \
                    panicking (unwrap/expect/panic!/unreachable!/todo!)",
    },
    RuleInfo {
        name: "slice-index",
        pass: RulePass::Token,
        severity: "warning (error when determinism-scoped)",
        scope: "plain-pub fns, lib crates",
        rationale: "direct indexing can panic; prefer get()/iterators in pub APIs \
                    (error-level on determinism-scoped modules)",
    },
    RuleInfo {
        name: "hot-alloc",
        pass: RulePass::Token,
        severity: "error",
        scope: "allocation-hot-path modules",
        rationale: "hot-path modules must draw buffers from the `nmt_engine::mem` \
                    pools; a per-call `Vec::new`/`vec![]` reintroduces the per-strip \
                    allocation churn the pools exist to remove",
    },
    RuleInfo {
        name: "metric-name",
        pass: RulePass::Token,
        severity: "error",
        scope: "all library sources",
        rationale: "obs metric names must be lowercase dotted `crate.subsystem.name` \
                    so the Prometheus export stays stable",
    },
    RuleInfo {
        name: "atomic-ordering",
        pass: RulePass::Token,
        severity: "error",
        scope: "concurrency-scoped modules",
        rationale: "every atomic op must justify its memory ordering with a \
                    `// ordering:` comment; `Relaxed` is reserved for monotone \
                    counters whose value never gates cross-thread data visibility",
    },
    RuleInfo {
        name: "determinism-flow",
        pass: RulePass::Dataflow,
        severity: "error",
        scope: "library sources (cargo xtask analyze)",
        rationale: "a nondeterminism source (wall clock, thread id, unordered \
                    iteration, observed atomic RMW, env read, parallel reduction) \
                    must not reach a serialization sink; sanitize or justify",
    },
    RuleInfo {
        name: "bad-allow",
        pass: RulePass::Token,
        severity: "error",
        scope: "allow-comment hygiene",
        rationale: "nmt-lint allow comments must name a known rule and give a reason",
    },
    RuleInfo {
        name: "unused-allow",
        pass: RulePass::Token,
        severity: "warning",
        scope: "allow-comment hygiene",
        rationale: "an allow comment that suppresses nothing is stale and should be removed",
    },
];

/// Look up a rule by name.
pub fn rule_info(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// Render the rule catalogue as the markdown table embedded in
/// DESIGN.md §6d (between the `nmt-lint:rules-table` markers).
pub fn rules_markdown() -> String {
    let mut out = String::new();
    out.push_str("| rule | pass | severity | scope | rationale |\n");
    out.push_str("|------|------|----------|-------|-----------|\n");
    for r in RULES {
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} |\n",
            r.name,
            r.pass.label(),
            r.severity,
            r.scope,
            r.rationale
        ));
    }
    out
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`&mut [f32]`, `dyn [..]`-ish positions, `return [..]`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "ref", "dyn", "as", "in", "return", "break", "continue", "else", "match", "if",
    "while", "for", "loop", "move", "unsafe", "const", "static", "where", "impl", "box", "let",
    "yield",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const METRIC_METHODS: &[&str] = &["counter_add", "gauge_set", "histogram_record"];

/// Atomic operations that take a `Ordering` argument. `fetch_*` is
/// matched by prefix.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
    "fetch_update",
];

const ORDERING_VARIANTS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Is `name` a valid dotted metric name: `[a-z][a-z0-9_]*(\.[a-z0-9_]+)+`
/// with at least two segments, each starting with a letter?
fn valid_metric_name(name: &str) -> bool {
    let segments: Vec<&str> = name.split('.').collect();
    segments.len() >= 2
        && segments.iter().all(|s| {
            s.starts_with(|c: char| c.is_ascii_lowercase())
                && s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

struct FileCheck<'a> {
    path: &'a str,
    tokens: &'a [Token],
    ctxs: &'a [TokenCtx],
    comments: &'a [Comment],
    lines: Vec<&'a str>,
    class: FileClass,
    diags: Vec<Diagnostic>,
}

impl FileCheck<'_> {
    fn tok(&self, i: usize) -> Option<&Token> {
        self.tokens.get(i)
    }

    fn ctx(&self, i: usize) -> TokenCtx {
        self.ctxs.get(i).copied().unwrap_or_default()
    }

    fn emit(&mut self, rule: &'static str, severity: Severity, tok: &Token, message: String) {
        let snippet = self
            .lines
            .get(tok.line as usize - 1)
            .map(|l| l.trim_end().to_string())
            .unwrap_or_default();
        self.diags.push(Diagnostic {
            rule: rule.to_string(),
            severity,
            path: self.path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            snippet,
        });
    }

    fn check_token(&mut self, i: usize) {
        let ctx = self.ctx(i);
        if ctx.in_test {
            return;
        }
        let Some(tok) = self.tok(i) else { return };
        let tok = tok.clone();
        match tok.kind {
            TokenKind::Ident => self.check_ident(i, &tok, ctx),
            TokenKind::Punct if tok.is_punct('[') => self.check_open_bracket(i, &tok, ctx),
            _ => {}
        }
    }

    fn check_ident(&mut self, i: usize, tok: &Token, ctx: TokenCtx) {
        let prev_dot = i > 0 && self.tok(i - 1).map(|t| t.is_punct('.')) == Some(true);
        let next_paren = self.tok(i + 1).map(|t| t.is_punct('(')) == Some(true);
        let next_bang = self.tok(i + 1).map(|t| t.is_punct('!')) == Some(true);

        // unordered-map: naming the type at all is the violation — even a
        // non-iterated HashMap invites order-dependent code later.
        if tok.text == "HashMap" || tok.text == "HashSet" {
            self.emit(
                "unordered-map",
                Severity::Error,
                tok,
                format!(
                    "`{}` has seed-randomized iteration order; use `BTreeMap`/`BTreeSet` \
                     so serialized artifacts stay byte-identical",
                    tok.text
                ),
            );
        }

        // wallclock: obs spans are the sole sanctioned clock reader.
        if !self.class.wallclock_allowed && (tok.text == "Instant" || tok.text == "SystemTime") {
            self.emit(
                "wallclock",
                Severity::Error,
                tok,
                format!(
                    "`{}` readings differ per run; route timing through `nmt_obs` spans",
                    tok.text
                ),
            );
        }

        // thread-order: only on determinism-scoped modules.
        if self.class.determinism_scoped {
            if tok.text.starts_with("fetch_") && prev_dot && next_paren {
                self.emit(
                    "thread-order",
                    Severity::Error,
                    tok,
                    format!(
                        "atomic `{}` commits updates in scheduling order; reduce \
                         per-worker results in index order instead",
                        tok.text
                    ),
                );
            }
            if tok.text == "mpsc" {
                self.emit(
                    "thread-order",
                    Severity::Error,
                    tok,
                    "channel receive order depends on thread scheduling; collect \
                     per-worker results by index instead"
                        .to_string(),
                );
            }
        }

        // panic: plain-pub fns of library crates must not panic.
        if self.class.panic_checked && ctx.in_pub_fn {
            if (tok.text == "unwrap" || tok.text == "expect") && prev_dot && next_paren {
                self.emit(
                    "panic",
                    Severity::Error,
                    tok,
                    format!(
                        "`.{}()` in a pub fn can panic; return a typed error \
                         (or justify with an nmt-lint allow comment)",
                        tok.text
                    ),
                );
            }
            if PANIC_MACROS.contains(&tok.text.as_str()) && next_bang {
                self.emit(
                    "panic",
                    Severity::Error,
                    tok,
                    format!("`{}!` in a pub fn; return a typed error instead", tok.text),
                );
            }
        }

        // hot-alloc: hot-path modules must take buffers from the pools.
        // `Vec::new` is the token run `Vec` `:` `:` `new` `(`; the `vec!`
        // macro is `vec` `!`. `with_capacity` is deliberately exempt —
        // a right-sized once-per-call reservation is not churn.
        if self.class.hot_path {
            let vec_new = tok.text == "Vec"
                && self.tok(i + 1).map(|t| t.is_punct(':')) == Some(true)
                && self.tok(i + 2).map(|t| t.is_punct(':')) == Some(true)
                && self.tok(i + 3).map(|t| t.is_ident("new")) == Some(true)
                && self.tok(i + 4).map(|t| t.is_punct('(')) == Some(true);
            let vec_macro = tok.text == "vec" && next_bang;
            if vec_new || vec_macro {
                self.emit(
                    "hot-alloc",
                    Severity::Error,
                    tok,
                    format!(
                        "`{}` on an allocation hot path; draw the buffer from the \
                         `nmt_engine::mem` pools (or justify a cold site with an \
                         nmt-lint allow comment)",
                        if vec_new { "Vec::new()" } else { "vec![]" }
                    ),
                );
            }
        }

        // atomic-ordering: every atomic op in a concurrency-scoped file
        // must justify its memory ordering in a `// ordering:` comment.
        if self.class.concurrency_scoped && prev_dot && next_paren {
            let is_atomic = ATOMIC_METHODS.contains(&tok.text.as_str())
                || tok.text.starts_with("fetch_");
            if is_atomic {
                if let Some(orderings) = self.call_orderings(i) {
                    self.check_atomic_ordering(tok, &orderings);
                }
            }
        }

        // metric-name: literal names handed to the obs registry.
        if METRIC_METHODS.contains(&tok.text.as_str()) && prev_dot && next_paren {
            if let Some(arg) = self.tok(i + 2) {
                if arg.kind == TokenKind::Str && !valid_metric_name(&arg.text) {
                    let arg = arg.clone();
                    self.emit(
                        "metric-name",
                        Severity::Error,
                        &arg,
                        format!(
                            "metric name `{}` does not match the lowercase dotted \
                             `crate.subsystem.name` convention",
                            arg.text
                        ),
                    );
                }
            }
        }
    }

    /// For the method call at ident `i`, scan its balanced argument list
    /// for `Ordering` variants. Returns `None` when no variant appears —
    /// the callee is then a same-named non-atomic method (`map.load(..)`,
    /// `serde` `serialize`-adjacent `store(..)`, `cmp::Ordering` uses)
    /// and the rule stays silent.
    fn call_orderings(&self, i: usize) -> Option<Vec<String>> {
        let mut depth = 0i32;
        let mut found = Vec::new();
        for t in self.tokens.iter().skip(i + 1) {
            if t.is_punct('(') {
                depth += 1;
            } else if t.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == TokenKind::Ident && ORDERING_VARIANTS.contains(&t.text.as_str())
            {
                found.push(t.text.clone());
            }
        }
        (!found.is_empty()).then_some(found)
    }

    /// Find the `// ordering:` justification for an atomic op on `line`:
    /// a trailing comment on the op's own line, or an `ordering:` opener
    /// anywhere in the contiguous comment block directly above it (so
    /// multi-line justifications work), with the block's following lines
    /// appended as continuation text.
    fn ordering_justification(&self, line: u32) -> Option<String> {
        let text_at = |l: u32| {
            self.comments
                .iter()
                .find(|c| c.line == l)
                .map(|c| c.text.trim().to_string())
        };
        if let Some(t) = text_at(line) {
            if let Some(rest) = t.strip_prefix("ordering:") {
                return Some(rest.trim().to_string());
            }
        }
        // Collect the contiguous comment block ending on `line - 1`.
        let mut block = Vec::new();
        let mut l = line.checked_sub(1)?;
        while let Some(t) = text_at(l) {
            block.push(t);
            match l.checked_sub(1) {
                Some(prev) => l = prev,
                None => break,
            }
        }
        block.reverse(); // top-to-bottom order
        let opener = block
            .iter()
            .rposition(|t| t.starts_with("ordering:"))?;
        let mut reason = block[opener]
            .strip_prefix("ordering:")
            .unwrap_or("")
            .trim()
            .to_string();
        for cont in &block[opener + 1..] {
            if !reason.is_empty() {
                reason.push(' ');
            }
            reason.push_str(cont);
        }
        Some(reason)
    }

    fn check_atomic_ordering(&mut self, tok: &Token, orderings: &[String]) {
        let justification = self.ordering_justification(tok.line);
        let relaxed = orderings.iter().any(|o| o == "Relaxed");
        match justification {
            None => self.emit(
                "atomic-ordering",
                Severity::Error,
                tok,
                format!(
                    "atomic `{}` with `{}` has no `// ordering:` justification; \
                     state why this memory ordering is sufficient",
                    tok.text,
                    orderings.join("`/`")
                ),
            ),
            Some(reason) if reason.is_empty() => self.emit(
                "atomic-ordering",
                Severity::Error,
                tok,
                format!(
                    "empty `// ordering:` justification on atomic `{}`",
                    tok.text
                ),
            ),
            Some(reason) if relaxed && !reason.to_ascii_lowercase().contains("monotone") => {
                self.emit(
                    "atomic-ordering",
                    Severity::Error,
                    tok,
                    format!(
                        "`Relaxed` on atomic `{}` is reserved for monotone counters; \
                         say \"monotone\" in the ordering comment or use an \
                         acquire/release ordering",
                        tok.text
                    ),
                );
            }
            Some(_) => {}
        }
    }

    fn check_open_bracket(&mut self, i: usize, tok: &Token, ctx: TokenCtx) {
        // slice-index: an index expression is `[` directly preceded by an
        // identifier (not a keyword), `)`, or `]`.
        if !(self.class.panic_checked && ctx.in_pub_fn) {
            return;
        }
        let Some(prev) = (i > 0).then(|| self.tok(i - 1)).flatten() else {
            return;
        };
        let indexes = match prev.kind {
            TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
            TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
            _ => false,
        };
        if indexes {
            let severity = if self.class.determinism_scoped {
                Severity::Error
            } else {
                Severity::Warning
            };
            self.emit(
                "slice-index",
                severity,
                tok,
                "direct indexing in a pub fn can panic; prefer `get()`, iterators, \
                 or justify with an nmt-lint allow comment"
                    .to_string(),
            );
        }
    }
}

/// Lint one file's source text. `path` is used only for reporting.
///
/// Returns the surviving diagnostics plus the allow directives that were
/// actually used (for the report's suppression accounting).
pub fn check_source(
    path: &str,
    src: &str,
    class: FileClass,
) -> (Vec<Diagnostic>, Vec<AllowDirective>) {
    let lexed = lex(src);
    let ctxs = contexts(&lexed.tokens);
    let mut fc = FileCheck {
        path,
        tokens: &lexed.tokens,
        ctxs: &ctxs,
        comments: &lexed.comments,
        lines: src.lines().collect(),
        class,
        diags: Vec::new(),
    };
    for i in 0..lexed.tokens.len() {
        fc.check_token(i);
    }
    let mut diags = std::mem::take(&mut fc.diags);

    // Apply allow directives: a directive spanning lines L..=E (the
    // reason may continue across indented comment lines) suppresses
    // matching diagnostics on any of those lines (trailing comment) or
    // on E + 1 (comment block on its own lines above the code).
    let directives = allow_directives(&lexed.comments);
    let mut used = vec![false; directives.len()];
    diags.retain(|d| {
        for (dir, used_flag) in directives.iter().zip(used.iter_mut()) {
            if dir.kind == DirectiveKind::Allow
                && dir.rule == d.rule
                && !dir.reason.is_empty()
                && (dir.line..=dir.end_line + 1).contains(&d.line)
            {
                *used_flag = true;
                return false;
            }
        }
        true
    });

    // Directive hygiene: unknown rules / missing reasons are themselves
    // violations; clean-but-unused directives are stale.
    let snippet_of = |line: u32| {
        src.lines()
            .nth(line as usize - 1)
            .map(|l| l.trim_end().to_string())
            .unwrap_or_default()
    };
    let mut used_dirs = Vec::new();
    for (dir, &was_used) in directives.iter().zip(used.iter()) {
        let info = rule_info(&dir.rule);
        if info.is_none() {
            diags.push(Diagnostic {
                rule: "bad-allow".to_string(),
                severity: Severity::Error,
                path: path.to_string(),
                line: dir.line,
                col: 1,
                message: format!(
                    "{} comment names unknown rule `{}` (known: {})",
                    match dir.kind {
                        DirectiveKind::Allow => "allow",
                        DirectiveKind::Sanitize => "sanitize",
                    },
                    dir.rule,
                    RULES
                        .iter()
                        .map(|r| r.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                snippet: snippet_of(dir.line),
            });
        } else if dir.kind == DirectiveKind::Sanitize
            && info.is_some_and(|r| r.pass != RulePass::Dataflow)
        {
            diags.push(Diagnostic {
                rule: "bad-allow".to_string(),
                severity: Severity::Error,
                path: path.to_string(),
                line: dir.line,
                col: 1,
                message: format!(
                    "`sanitize({})` is invalid: sanitize comments only apply to \
                     dataflow rules (use `allow({})` instead)",
                    dir.rule, dir.rule
                ),
                snippet: snippet_of(dir.line),
            });
        } else if dir.reason.is_empty() {
            diags.push(Diagnostic {
                rule: "bad-allow".to_string(),
                severity: Severity::Error,
                path: path.to_string(),
                line: dir.line,
                col: 1,
                message: format!(
                    "allow comment for `{}` has no reason; write \
                     `// nmt-lint: allow({}) — <why this is sound>`",
                    dir.rule, dir.rule
                ),
                snippet: snippet_of(dir.line),
            });
        } else if !was_used {
            // Directives consumed by the dataflow pass (`cargo xtask
            // analyze`) are invisible to this token pass; analyze does
            // its own staleness accounting for them.
            let dataflow_owned = dir.kind == DirectiveKind::Sanitize
                || info.is_some_and(|r| r.pass == RulePass::Dataflow);
            if !dataflow_owned {
                diags.push(Diagnostic {
                    rule: "unused-allow".to_string(),
                    severity: Severity::Warning,
                    path: path.to_string(),
                    line: dir.line,
                    col: 1,
                    message: format!(
                        "allow comment for `{}` suppresses nothing here; remove it",
                        dir.rule
                    ),
                    snippet: snippet_of(dir.line),
                });
            }
        } else {
            used_dirs.push(dir.clone());
        }
    }
    diags.sort_by(|a, b| (a.line, a.col, a.rule.as_str()).cmp(&(b.line, b.col, b.rule.as_str())));
    (diags, used_dirs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn errs(src: &str) -> Vec<(String, u32)> {
        let (diags, _) = check_source(
            "test.rs",
            src,
            FileClass {
                panic_checked: true,
                ..FileClass::default()
            },
        );
        diags.into_iter().map(|d| (d.rule, d.line)).collect()
    }

    fn scoped_errs(src: &str) -> Vec<(String, u32)> {
        let (diags, _) = check_source(
            "test.rs",
            src,
            FileClass {
                determinism_scoped: true,
                panic_checked: true,
                ..FileClass::default()
            },
        );
        diags.into_iter().map(|d| (d.rule, d.line)).collect()
    }

    #[test]
    fn hashmap_flagged_everywhere_but_tests() {
        assert_eq!(
            errs("use std::collections::HashMap;"),
            vec![("unordered-map".to_string(), 1)]
        );
        assert!(errs("#[cfg(test)]\nmod t { use std::collections::HashMap; }").is_empty());
    }

    #[test]
    fn wallclock_flagged_unless_allowlisted() {
        assert_eq!(
            errs("fn f() { let t = std::time::Instant::now(); }"),
            vec![("wallclock".to_string(), 1)]
        );
        let (diags, _) = check_source(
            "span.rs",
            "fn f() { let t = std::time::Instant::now(); }",
            FileClass {
                wallclock_allowed: true,
                ..FileClass::default()
            },
        );
        assert!(diags.is_empty());
    }

    #[test]
    fn thread_order_only_in_scope() {
        let src = "fn f(x: &std::sync::atomic::AtomicU64) { x.fetch_add(1, O); }";
        assert!(errs(src).is_empty());
        assert_eq!(scoped_errs(src), vec![("thread-order".to_string(), 1)]);
    }

    #[test]
    fn panic_rules_respect_visibility() {
        assert_eq!(
            errs("pub fn f(x: Option<u8>) -> u8 { x.unwrap() }"),
            vec![("panic".to_string(), 1)]
        );
        assert!(errs("fn f(x: Option<u8>) -> u8 { x.unwrap() }").is_empty());
        assert!(errs("pub(crate) fn f(x: Option<u8>) -> u8 { x.unwrap() }").is_empty());
        assert_eq!(
            errs("pub fn f() { panic!(\"boom\") }"),
            vec![("panic".to_string(), 1)]
        );
        // unwrap_or_else is fine; field named unwrap is fine.
        assert!(errs("pub fn f(x: Option<u8>) -> u8 { x.unwrap_or_default() }").is_empty());
    }

    #[test]
    fn slice_index_severity_depends_on_scope() {
        let src = "pub fn f(v: &[u8], i: usize) -> u8 { v[i] }";
        let (diags, _) = check_source("t.rs", src, FileClass {
            panic_checked: true,
            ..FileClass::default()
        });
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
        let got = scoped_errs(src);
        assert_eq!(got, vec![("slice-index".to_string(), 1)]);
        // Slice *types* are not index expressions.
        assert!(errs("pub fn f(v: &mut [u8]) {}").is_empty());
    }

    #[test]
    fn hot_alloc_only_on_hot_paths() {
        let hot = |src: &str| {
            let (diags, _) = check_source(
                "hot.rs",
                src,
                FileClass {
                    hot_path: true,
                    ..FileClass::default()
                },
            );
            diags
                .into_iter()
                .map(|d| (d.rule, d.line))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            hot("fn f() { let v: Vec<u32> = Vec::new(); }"),
            vec![("hot-alloc".to_string(), 1)]
        );
        assert_eq!(
            hot("fn f() -> Vec<f32> { vec![0.0; 8] }"),
            vec![("hot-alloc".to_string(), 1)]
        );
        // Right-sized reservations and pool takes are fine; so is test code.
        assert!(hot("fn f() { let v: Vec<u32> = Vec::with_capacity(8); }").is_empty());
        assert!(hot("fn f(p: bool) { let v = mem::take_idx(p, 8); }").is_empty());
        assert!(hot("#[cfg(test)] mod t { fn f() { let v = vec![1]; } }").is_empty());
        // Off the hot path the same code is untouched.
        assert!(errs("fn f() { let v: Vec<u32> = Vec::new(); }").is_empty());
    }

    #[test]
    fn metric_names_must_be_dotted_lowercase() {
        assert_eq!(
            errs("fn f(m: &M) { m.counter_add(\"Bad.Name\", 1); }"),
            vec![("metric-name".to_string(), 1)]
        );
        assert_eq!(
            errs("fn f(m: &M) { m.gauge_set(\"single\", 1.0); }"),
            vec![("metric-name".to_string(), 1)]
        );
        assert!(errs("fn f(m: &M) { m.histogram_record(\"engine.farm.bytes\", 1); }").is_empty());
        // Dynamic names are not checked (the registry sanitizes at export).
        assert!(errs("fn f(m: &M) { m.counter_add(&format!(\"{p}.x\"), 1); }").is_empty());
    }

    #[test]
    fn allow_comment_suppresses_and_is_counted() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n\
                   \x20   // nmt-lint: allow(panic) — input validated above\n\
                   \x20   x.unwrap()\n\
                   }\n";
        let (diags, used) = check_source("t.rs", src, FileClass {
            panic_checked: true,
            ..FileClass::default()
        });
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(used.len(), 1);
        assert_eq!(used[0].rule, "panic");
    }

    #[test]
    fn trailing_allow_comment_works() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() } \
                   // nmt-lint: allow(panic) — caller checked";
        assert!(errs(src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_bad() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n\
                   \x20   // nmt-lint: allow(panic)\n\
                   \x20   x.unwrap()\n\
                   }\n";
        let got = errs(src);
        assert!(got.contains(&("bad-allow".to_string(), 2)), "{got:?}");
        assert!(got.contains(&("panic".to_string(), 3)), "{got:?}");
    }

    #[test]
    fn unknown_rule_allow_is_bad() {
        let got = errs("// nmt-lint: allow(no-such-rule) — because\n");
        assert_eq!(got, vec![("bad-allow".to_string(), 1)]);
    }

    fn conc_errs(src: &str) -> Vec<(String, u32)> {
        let (diags, _) = check_source(
            "conc.rs",
            src,
            FileClass {
                concurrency_scoped: true,
                ..FileClass::default()
            },
        );
        diags.into_iter().map(|d| (d.rule, d.line)).collect()
    }

    #[test]
    fn atomic_ops_require_ordering_comments() {
        assert_eq!(
            conc_errs("fn f(x: &AtomicU64) { x.load(Ordering::Acquire); }"),
            vec![("atomic-ordering".to_string(), 1)]
        );
        assert!(conc_errs(
            "fn f(x: &AtomicU64) {\n\
             \x20   // ordering: pairs with the Release store in put()\n\
             \x20   x.load(Ordering::Acquire);\n\
             }"
        )
        .is_empty());
        // Trailing same-line comments work too.
        assert!(conc_errs(
            "fn f(x: &AtomicU64) { x.store(1, Ordering::Release); // ordering: publishes the buffer\n}"
        )
        .is_empty());
    }

    #[test]
    fn relaxed_needs_a_monotone_justification() {
        let src = "fn f(x: &AtomicU64) {\n\
                   \x20   // ordering: just a counter\n\
                   \x20   x.fetch_add(1, Ordering::Relaxed);\n\
                   }";
        assert_eq!(conc_errs(src), vec![("atomic-ordering".to_string(), 3)]);
        let ok = "fn f(x: &AtomicU64) {\n\
                  \x20   // ordering: monotone event counter, value never gates visibility\n\
                  \x20   x.fetch_add(1, Ordering::Relaxed);\n\
                  }";
        assert!(conc_errs(ok).is_empty());
    }

    #[test]
    fn non_atomic_same_named_methods_are_ignored() {
        // `cmp::Ordering` and a `load` without an Ordering argument must
        // not trip the rule.
        assert!(conc_errs("fn f(a: u8, b: u8) { a.cmp(&b); }").is_empty());
        assert!(conc_errs("fn f(m: &Loader) { m.load(\"path\"); }").is_empty());
        assert!(conc_errs("fn f(x: Ordering) { take(Ordering::Equal); }").is_empty());
    }

    #[test]
    fn atomic_rule_is_scope_gated() {
        let src = "fn f(x: &AtomicU64) { x.load(Ordering::Acquire); }";
        assert!(errs(src).is_empty(), "off-scope files are exempt");
    }

    #[test]
    fn split_allow_comment_suppresses_code_below_the_block() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n\
                   \x20   // nmt-lint: allow(panic) — the caller pre-validates this\n\
                   \x20   //   input, so the unwrap cannot fire in practice\n\
                   \x20   x.unwrap()\n\
                   }\n";
        let (diags, used) = check_source(
            "t.rs",
            src,
            FileClass {
                panic_checked: true,
                ..FileClass::default()
            },
        );
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(used.len(), 1);
        assert!(used[0].reason.contains("cannot fire"));
    }

    #[test]
    fn sanitize_of_token_rule_is_bad_allow() {
        let got = errs("// nmt-lint: sanitize(panic) — nope\n");
        assert_eq!(got, vec![("bad-allow".to_string(), 1)]);
    }

    #[test]
    fn dataflow_allows_are_not_flagged_unused_by_the_token_pass() {
        let (diags, _) = check_source(
            "t.rs",
            "// nmt-lint: allow(determinism-flow) — timing header is a measurement\n\
             pub fn emit() {}\n\
             // nmt-lint: sanitize(determinism-flow) — sorted output\n\
             pub fn normalize() {}\n",
            FileClass {
                panic_checked: true,
                ..FileClass::default()
            },
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn rules_markdown_lists_every_rule() {
        let md = rules_markdown();
        for r in RULES {
            assert!(md.contains(&format!("| `{}` |", r.name)), "{} missing", r.name);
        }
        assert!(md.starts_with("| rule | pass | severity | scope | rationale |"));
    }

    #[test]
    fn unused_allow_is_stale() {
        let (diags, _) = check_source(
            "t.rs",
            "// nmt-lint: allow(panic) — nothing here panics\nfn quiet() {}\n",
            FileClass {
                panic_checked: true,
                ..FileClass::default()
            },
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "unused-allow");
        assert_eq!(diags[0].severity, Severity::Warning);
    }
}
