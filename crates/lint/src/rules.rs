//! The lint rule catalogue and the per-file checking pass.
//!
//! Rules operate on the lexed token stream with structural context (see
//! [`crate::context`]) — close enough to an AST walk for these patterns
//! while staying dependency-free. Each rule is documented in DESIGN.md
//! ("Invariants & static analysis"); keep the two in sync.

use crate::context::{allow_directives, contexts, AllowDirective, TokenCtx};
use crate::lexer::{lex, Token, TokenKind};
use crate::report::{Diagnostic, Severity};

/// How a file is classified for rule scoping.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// Feeds serialized artifacts (ledger/audit/farm/stats): the
    /// determinism rules (`thread-order`) apply, and `slice-index`
    /// escalates from warning to error.
    pub determinism_scoped: bool,
    /// The one sanctioned wall-clock user (`obs` spans).
    pub wallclock_allowed: bool,
    /// Library source: the `panic` rule guards plain-`pub` functions.
    /// Binary targets (`src/bin`, `benches`) are exempt.
    pub panic_checked: bool,
    /// Allocation hot path (conversion farm, comparator, online kernel):
    /// the `hot-alloc` rule bans per-call `Vec::new`/`vec![]` in favor of
    /// the `nmt_engine::mem` pools.
    pub hot_path: bool,
}

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule name as used in diagnostics and allow comments.
    pub name: &'static str,
    /// One-line rationale.
    pub rationale: &'static str,
}

/// Every rule the pass knows about, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "unordered-map",
        rationale: "HashMap/HashSet iteration order is seed-randomized; \
                    serialized artifacts must be byte-identical, use BTreeMap/BTreeSet",
    },
    RuleInfo {
        name: "wallclock",
        rationale: "Instant/SystemTime readings differ per run; only obs spans \
                    may observe wall-clock time",
    },
    RuleInfo {
        name: "thread-order",
        rationale: "atomic read-modify-write and channel drains commit results in \
                    scheduling order; reductions on serialized paths must be index-ordered",
    },
    RuleInfo {
        name: "panic",
        rationale: "pub APIs on the sweep path return typed errors instead of \
                    panicking (unwrap/expect/panic!/unreachable!/todo!)",
    },
    RuleInfo {
        name: "slice-index",
        rationale: "direct indexing can panic; prefer get()/iterators in pub APIs \
                    (error-level on determinism-scoped modules)",
    },
    RuleInfo {
        name: "hot-alloc",
        rationale: "hot-path modules must draw buffers from the `nmt_engine::mem` \
                    pools; a per-call `Vec::new`/`vec![]` reintroduces the per-strip \
                    allocation churn the pools exist to remove",
    },
    RuleInfo {
        name: "metric-name",
        rationale: "obs metric names must be lowercase dotted `crate.subsystem.name` \
                    so the Prometheus export stays stable",
    },
    RuleInfo {
        name: "bad-allow",
        rationale: "nmt-lint allow comments must name a known rule and give a reason",
    },
    RuleInfo {
        name: "unused-allow",
        rationale: "an allow comment that suppresses nothing is stale and should be removed",
    },
];

/// Look up a rule by name.
pub fn rule_info(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// Keywords that can directly precede `[` without forming an index
/// expression (`&mut [f32]`, `dyn [..]`-ish positions, `return [..]`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "ref", "dyn", "as", "in", "return", "break", "continue", "else", "match", "if",
    "while", "for", "loop", "move", "unsafe", "const", "static", "where", "impl", "box", "let",
    "yield",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const METRIC_METHODS: &[&str] = &["counter_add", "gauge_set", "histogram_record"];

/// Is `name` a valid dotted metric name: `[a-z][a-z0-9_]*(\.[a-z0-9_]+)+`
/// with at least two segments, each starting with a letter?
fn valid_metric_name(name: &str) -> bool {
    let segments: Vec<&str> = name.split('.').collect();
    segments.len() >= 2
        && segments.iter().all(|s| {
            s.starts_with(|c: char| c.is_ascii_lowercase())
                && s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

struct FileCheck<'a> {
    path: &'a str,
    tokens: &'a [Token],
    ctxs: &'a [TokenCtx],
    lines: Vec<&'a str>,
    class: FileClass,
    diags: Vec<Diagnostic>,
}

impl FileCheck<'_> {
    fn tok(&self, i: usize) -> Option<&Token> {
        self.tokens.get(i)
    }

    fn ctx(&self, i: usize) -> TokenCtx {
        self.ctxs.get(i).copied().unwrap_or_default()
    }

    fn emit(&mut self, rule: &'static str, severity: Severity, tok: &Token, message: String) {
        let snippet = self
            .lines
            .get(tok.line as usize - 1)
            .map(|l| l.trim_end().to_string())
            .unwrap_or_default();
        self.diags.push(Diagnostic {
            rule: rule.to_string(),
            severity,
            path: self.path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            snippet,
        });
    }

    fn check_token(&mut self, i: usize) {
        let ctx = self.ctx(i);
        if ctx.in_test {
            return;
        }
        let Some(tok) = self.tok(i) else { return };
        let tok = tok.clone();
        match tok.kind {
            TokenKind::Ident => self.check_ident(i, &tok, ctx),
            TokenKind::Punct if tok.is_punct('[') => self.check_open_bracket(i, &tok, ctx),
            _ => {}
        }
    }

    fn check_ident(&mut self, i: usize, tok: &Token, ctx: TokenCtx) {
        let prev_dot = i > 0 && self.tok(i - 1).map(|t| t.is_punct('.')) == Some(true);
        let next_paren = self.tok(i + 1).map(|t| t.is_punct('(')) == Some(true);
        let next_bang = self.tok(i + 1).map(|t| t.is_punct('!')) == Some(true);

        // unordered-map: naming the type at all is the violation — even a
        // non-iterated HashMap invites order-dependent code later.
        if tok.text == "HashMap" || tok.text == "HashSet" {
            self.emit(
                "unordered-map",
                Severity::Error,
                tok,
                format!(
                    "`{}` has seed-randomized iteration order; use `BTreeMap`/`BTreeSet` \
                     so serialized artifacts stay byte-identical",
                    tok.text
                ),
            );
        }

        // wallclock: obs spans are the sole sanctioned clock reader.
        if !self.class.wallclock_allowed && (tok.text == "Instant" || tok.text == "SystemTime") {
            self.emit(
                "wallclock",
                Severity::Error,
                tok,
                format!(
                    "`{}` readings differ per run; route timing through `nmt_obs` spans",
                    tok.text
                ),
            );
        }

        // thread-order: only on determinism-scoped modules.
        if self.class.determinism_scoped {
            if tok.text.starts_with("fetch_") && prev_dot && next_paren {
                self.emit(
                    "thread-order",
                    Severity::Error,
                    tok,
                    format!(
                        "atomic `{}` commits updates in scheduling order; reduce \
                         per-worker results in index order instead",
                        tok.text
                    ),
                );
            }
            if tok.text == "mpsc" {
                self.emit(
                    "thread-order",
                    Severity::Error,
                    tok,
                    "channel receive order depends on thread scheduling; collect \
                     per-worker results by index instead"
                        .to_string(),
                );
            }
        }

        // panic: plain-pub fns of library crates must not panic.
        if self.class.panic_checked && ctx.in_pub_fn {
            if (tok.text == "unwrap" || tok.text == "expect") && prev_dot && next_paren {
                self.emit(
                    "panic",
                    Severity::Error,
                    tok,
                    format!(
                        "`.{}()` in a pub fn can panic; return a typed error \
                         (or justify with an nmt-lint allow comment)",
                        tok.text
                    ),
                );
            }
            if PANIC_MACROS.contains(&tok.text.as_str()) && next_bang {
                self.emit(
                    "panic",
                    Severity::Error,
                    tok,
                    format!("`{}!` in a pub fn; return a typed error instead", tok.text),
                );
            }
        }

        // hot-alloc: hot-path modules must take buffers from the pools.
        // `Vec::new` is the token run `Vec` `:` `:` `new` `(`; the `vec!`
        // macro is `vec` `!`. `with_capacity` is deliberately exempt —
        // a right-sized once-per-call reservation is not churn.
        if self.class.hot_path {
            let vec_new = tok.text == "Vec"
                && self.tok(i + 1).map(|t| t.is_punct(':')) == Some(true)
                && self.tok(i + 2).map(|t| t.is_punct(':')) == Some(true)
                && self.tok(i + 3).map(|t| t.is_ident("new")) == Some(true)
                && self.tok(i + 4).map(|t| t.is_punct('(')) == Some(true);
            let vec_macro = tok.text == "vec" && next_bang;
            if vec_new || vec_macro {
                self.emit(
                    "hot-alloc",
                    Severity::Error,
                    tok,
                    format!(
                        "`{}` on an allocation hot path; draw the buffer from the \
                         `nmt_engine::mem` pools (or justify a cold site with an \
                         nmt-lint allow comment)",
                        if vec_new { "Vec::new()" } else { "vec![]" }
                    ),
                );
            }
        }

        // metric-name: literal names handed to the obs registry.
        if METRIC_METHODS.contains(&tok.text.as_str()) && prev_dot && next_paren {
            if let Some(arg) = self.tok(i + 2) {
                if arg.kind == TokenKind::Str && !valid_metric_name(&arg.text) {
                    let arg = arg.clone();
                    self.emit(
                        "metric-name",
                        Severity::Error,
                        &arg,
                        format!(
                            "metric name `{}` does not match the lowercase dotted \
                             `crate.subsystem.name` convention",
                            arg.text
                        ),
                    );
                }
            }
        }
    }

    fn check_open_bracket(&mut self, i: usize, tok: &Token, ctx: TokenCtx) {
        // slice-index: an index expression is `[` directly preceded by an
        // identifier (not a keyword), `)`, or `]`.
        if !(self.class.panic_checked && ctx.in_pub_fn) {
            return;
        }
        let Some(prev) = (i > 0).then(|| self.tok(i - 1)).flatten() else {
            return;
        };
        let indexes = match prev.kind {
            TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
            TokenKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
            _ => false,
        };
        if indexes {
            let severity = if self.class.determinism_scoped {
                Severity::Error
            } else {
                Severity::Warning
            };
            self.emit(
                "slice-index",
                severity,
                tok,
                "direct indexing in a pub fn can panic; prefer `get()`, iterators, \
                 or justify with an nmt-lint allow comment"
                    .to_string(),
            );
        }
    }
}

/// Lint one file's source text. `path` is used only for reporting.
///
/// Returns the surviving diagnostics plus the allow directives that were
/// actually used (for the report's suppression accounting).
pub fn check_source(
    path: &str,
    src: &str,
    class: FileClass,
) -> (Vec<Diagnostic>, Vec<AllowDirective>) {
    let lexed = lex(src);
    let ctxs = contexts(&lexed.tokens);
    let mut fc = FileCheck {
        path,
        tokens: &lexed.tokens,
        ctxs: &ctxs,
        lines: src.lines().collect(),
        class,
        diags: Vec::new(),
    };
    for i in 0..lexed.tokens.len() {
        fc.check_token(i);
    }
    let mut diags = std::mem::take(&mut fc.diags);

    // Apply allow directives: a directive on line L suppresses matching
    // diagnostics on line L (trailing comment) or line L + 1 (comment on
    // its own line above the code).
    let directives = allow_directives(&lexed.comments);
    let mut used = vec![false; directives.len()];
    diags.retain(|d| {
        for (dir, used_flag) in directives.iter().zip(used.iter_mut()) {
            if dir.rule == d.rule
                && !dir.reason.is_empty()
                && (dir.line == d.line || dir.line + 1 == d.line)
            {
                *used_flag = true;
                return false;
            }
        }
        true
    });

    // Directive hygiene: unknown rules / missing reasons are themselves
    // violations; clean-but-unused directives are stale.
    let snippet_of = |line: u32| {
        src.lines()
            .nth(line as usize - 1)
            .map(|l| l.trim_end().to_string())
            .unwrap_or_default()
    };
    let mut used_dirs = Vec::new();
    for (dir, &was_used) in directives.iter().zip(used.iter()) {
        if rule_info(&dir.rule).is_none() {
            diags.push(Diagnostic {
                rule: "bad-allow".to_string(),
                severity: Severity::Error,
                path: path.to_string(),
                line: dir.line,
                col: 1,
                message: format!(
                    "allow comment names unknown rule `{}` (known: {})",
                    dir.rule,
                    RULES
                        .iter()
                        .map(|r| r.name)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                snippet: snippet_of(dir.line),
            });
        } else if dir.reason.is_empty() {
            diags.push(Diagnostic {
                rule: "bad-allow".to_string(),
                severity: Severity::Error,
                path: path.to_string(),
                line: dir.line,
                col: 1,
                message: format!(
                    "allow comment for `{}` has no reason; write \
                     `// nmt-lint: allow({}) — <why this is sound>`",
                    dir.rule, dir.rule
                ),
                snippet: snippet_of(dir.line),
            });
        } else if !was_used {
            diags.push(Diagnostic {
                rule: "unused-allow".to_string(),
                severity: Severity::Warning,
                path: path.to_string(),
                line: dir.line,
                col: 1,
                message: format!(
                    "allow comment for `{}` suppresses nothing here; remove it",
                    dir.rule
                ),
                snippet: snippet_of(dir.line),
            });
        } else {
            used_dirs.push(dir.clone());
        }
    }
    diags.sort_by(|a, b| (a.line, a.col, a.rule.as_str()).cmp(&(b.line, b.col, b.rule.as_str())));
    (diags, used_dirs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn errs(src: &str) -> Vec<(String, u32)> {
        let (diags, _) = check_source(
            "test.rs",
            src,
            FileClass {
                panic_checked: true,
                ..FileClass::default()
            },
        );
        diags.into_iter().map(|d| (d.rule, d.line)).collect()
    }

    fn scoped_errs(src: &str) -> Vec<(String, u32)> {
        let (diags, _) = check_source(
            "test.rs",
            src,
            FileClass {
                determinism_scoped: true,
                panic_checked: true,
                ..FileClass::default()
            },
        );
        diags.into_iter().map(|d| (d.rule, d.line)).collect()
    }

    #[test]
    fn hashmap_flagged_everywhere_but_tests() {
        assert_eq!(
            errs("use std::collections::HashMap;"),
            vec![("unordered-map".to_string(), 1)]
        );
        assert!(errs("#[cfg(test)]\nmod t { use std::collections::HashMap; }").is_empty());
    }

    #[test]
    fn wallclock_flagged_unless_allowlisted() {
        assert_eq!(
            errs("fn f() { let t = std::time::Instant::now(); }"),
            vec![("wallclock".to_string(), 1)]
        );
        let (diags, _) = check_source(
            "span.rs",
            "fn f() { let t = std::time::Instant::now(); }",
            FileClass {
                wallclock_allowed: true,
                ..FileClass::default()
            },
        );
        assert!(diags.is_empty());
    }

    #[test]
    fn thread_order_only_in_scope() {
        let src = "fn f(x: &std::sync::atomic::AtomicU64) { x.fetch_add(1, O); }";
        assert!(errs(src).is_empty());
        assert_eq!(scoped_errs(src), vec![("thread-order".to_string(), 1)]);
    }

    #[test]
    fn panic_rules_respect_visibility() {
        assert_eq!(
            errs("pub fn f(x: Option<u8>) -> u8 { x.unwrap() }"),
            vec![("panic".to_string(), 1)]
        );
        assert!(errs("fn f(x: Option<u8>) -> u8 { x.unwrap() }").is_empty());
        assert!(errs("pub(crate) fn f(x: Option<u8>) -> u8 { x.unwrap() }").is_empty());
        assert_eq!(
            errs("pub fn f() { panic!(\"boom\") }"),
            vec![("panic".to_string(), 1)]
        );
        // unwrap_or_else is fine; field named unwrap is fine.
        assert!(errs("pub fn f(x: Option<u8>) -> u8 { x.unwrap_or_default() }").is_empty());
    }

    #[test]
    fn slice_index_severity_depends_on_scope() {
        let src = "pub fn f(v: &[u8], i: usize) -> u8 { v[i] }";
        let (diags, _) = check_source("t.rs", src, FileClass {
            panic_checked: true,
            ..FileClass::default()
        });
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].severity, Severity::Warning);
        let got = scoped_errs(src);
        assert_eq!(got, vec![("slice-index".to_string(), 1)]);
        // Slice *types* are not index expressions.
        assert!(errs("pub fn f(v: &mut [u8]) {}").is_empty());
    }

    #[test]
    fn hot_alloc_only_on_hot_paths() {
        let hot = |src: &str| {
            let (diags, _) = check_source(
                "hot.rs",
                src,
                FileClass {
                    hot_path: true,
                    ..FileClass::default()
                },
            );
            diags
                .into_iter()
                .map(|d| (d.rule, d.line))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            hot("fn f() { let v: Vec<u32> = Vec::new(); }"),
            vec![("hot-alloc".to_string(), 1)]
        );
        assert_eq!(
            hot("fn f() -> Vec<f32> { vec![0.0; 8] }"),
            vec![("hot-alloc".to_string(), 1)]
        );
        // Right-sized reservations and pool takes are fine; so is test code.
        assert!(hot("fn f() { let v: Vec<u32> = Vec::with_capacity(8); }").is_empty());
        assert!(hot("fn f(p: bool) { let v = mem::take_idx(p, 8); }").is_empty());
        assert!(hot("#[cfg(test)] mod t { fn f() { let v = vec![1]; } }").is_empty());
        // Off the hot path the same code is untouched.
        assert!(errs("fn f() { let v: Vec<u32> = Vec::new(); }").is_empty());
    }

    #[test]
    fn metric_names_must_be_dotted_lowercase() {
        assert_eq!(
            errs("fn f(m: &M) { m.counter_add(\"Bad.Name\", 1); }"),
            vec![("metric-name".to_string(), 1)]
        );
        assert_eq!(
            errs("fn f(m: &M) { m.gauge_set(\"single\", 1.0); }"),
            vec![("metric-name".to_string(), 1)]
        );
        assert!(errs("fn f(m: &M) { m.histogram_record(\"engine.farm.bytes\", 1); }").is_empty());
        // Dynamic names are not checked (the registry sanitizes at export).
        assert!(errs("fn f(m: &M) { m.counter_add(&format!(\"{p}.x\"), 1); }").is_empty());
    }

    #[test]
    fn allow_comment_suppresses_and_is_counted() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n\
                   \x20   // nmt-lint: allow(panic) — input validated above\n\
                   \x20   x.unwrap()\n\
                   }\n";
        let (diags, used) = check_source("t.rs", src, FileClass {
            panic_checked: true,
            ..FileClass::default()
        });
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(used.len(), 1);
        assert_eq!(used[0].rule, "panic");
    }

    #[test]
    fn trailing_allow_comment_works() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() } \
                   // nmt-lint: allow(panic) — caller checked";
        assert!(errs(src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_bad() {
        let src = "pub fn f(x: Option<u8>) -> u8 {\n\
                   \x20   // nmt-lint: allow(panic)\n\
                   \x20   x.unwrap()\n\
                   }\n";
        let got = errs(src);
        assert!(got.contains(&("bad-allow".to_string(), 2)), "{got:?}");
        assert!(got.contains(&("panic".to_string(), 3)), "{got:?}");
    }

    #[test]
    fn unknown_rule_allow_is_bad() {
        let got = errs("// nmt-lint: allow(no-such-rule) — because\n");
        assert_eq!(got, vec![("bad-allow".to_string(), 1)]);
    }

    #[test]
    fn unused_allow_is_stale() {
        let (diags, _) = check_source(
            "t.rs",
            "// nmt-lint: allow(panic) — nothing here panics\nfn quiet() {}\n",
            FileClass {
                panic_checked: true,
                ..FileClass::default()
            },
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "unused-allow");
        assert_eq!(diags[0].severity, Severity::Warning);
    }
}
