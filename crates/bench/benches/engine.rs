//! Criterion microbenches: the conversion engine's functional model.
//!
//! §5.3's feasibility argument is throughput: the engine must convert at
//! least one element per channel-cycle. These benches measure the software
//! model's element throughput and the comparator tree in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nmt_engine::{convert_matrix, ComparatorTree, StripConverter};
use nmt_formats::SparseMatrix;
use nmt_matgen::{generators, GenKind, MatrixDesc};
use std::hint::black_box;

fn bench_comparator(c: &mut Criterion) {
    let mut group = c.benchmark_group("comparator_tree");
    for &lanes in &[16usize, 64] {
        let tree = ComparatorTree::new(lanes).expect("lanes within 1..=64");
        let coords: Vec<Option<u32>> = (0..lanes)
            .map(|i| {
                if i % 5 == 0 {
                    None
                } else {
                    Some((i * 37 % 100) as u32)
                }
            })
            .collect();
        group.throughput(Throughput::Elements(lanes as u64));
        group.bench_with_input(BenchmarkId::new("find_min", lanes), &coords, |b, cs| {
            b.iter(|| black_box(tree.find_min(cs)));
        });
    }
    group.finish();
}

fn bench_conversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("csc_to_dcsr");
    for &(n, density) in &[(1024usize, 0.01f64), (4096, 0.003)] {
        let csr = generators::generate(&MatrixDesc::new(
            "bench",
            n,
            GenKind::Uniform { density },
            7,
        ));
        let csc = csr.to_csc();
        group.throughput(Throughput::Elements(csc.nnz() as u64));
        group.bench_with_input(BenchmarkId::new("convert_matrix_64x64", n), &csc, |b, m| {
            b.iter(|| black_box(convert_matrix(m, 64, 64)));
        });
        group.bench_with_input(BenchmarkId::new("single_strip", n), &csc, |b, m| {
            b.iter(|| {
                let mut conv = StripConverter::new(m, 0, 64);
                black_box(conv.convert_strip(64))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_comparator, bench_conversion);
criterion_main!(benches);
