//! Criterion microbenches: host reference kernels and simulated kernels.
//!
//! The host benches measure real CPU SpMM throughput per format; the
//! simulated benches measure the *simulator's* wall-clock cost (how fast
//! experiments sweep), not GPU time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nmt_formats::{Dcsr, SparseMatrix, TiledDcsr};
use nmt_kernels::{bstat_tiled_dcsr_online, csrmm_row_per_warp, host};
use nmt_matgen::{generators, random_dense, GenKind, MatrixDesc};
use nmt_sim::{Gpu, GpuConfig};
use std::hint::black_box;

fn bench_host_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("host_spmm");
    let n = 2048;
    let k = 32;
    let a = generators::generate(&MatrixDesc::new(
        "bench",
        n,
        GenKind::Uniform { density: 0.005 },
        11,
    ));
    let b = random_dense(n, k, 13);
    let flops = 2 * a.nnz() as u64 * k as u64;
    group.throughput(Throughput::Elements(flops));

    group.bench_function(BenchmarkId::new("csr", n), |bch| {
        bch.iter(|| black_box(host::spmm_csr(&a, &b)));
    });
    let csc = a.to_csc();
    group.bench_function(BenchmarkId::new("csc", n), |bch| {
        bch.iter(|| black_box(host::spmm_csc(&csc, &b)));
    });
    let dcsr = Dcsr::from_csr(&a);
    group.bench_function(BenchmarkId::new("dcsr", n), |bch| {
        bch.iter(|| black_box(host::spmm_dcsr(&dcsr, &b)));
    });
    let tiled = TiledDcsr::from_csr(&a, 64, 64).unwrap();
    group.bench_function(BenchmarkId::new("tiled_dcsr", n), |bch| {
        bch.iter(|| black_box(host::spmm_tiled_dcsr(&tiled, &b)));
    });
    group.finish();
}

fn bench_simulated_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulated_spmm");
    group.sample_size(10);
    let n = 1024;
    let k = 32;
    let a = generators::generate(&MatrixDesc::new(
        "bench",
        n,
        GenKind::Uniform { density: 0.005 },
        17,
    ));
    let b = random_dense(n, k, 19);
    group.throughput(Throughput::Elements(a.nnz() as u64));

    group.bench_function("baseline_csr_row_per_warp", |bch| {
        bch.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
            black_box(csrmm_row_per_warp(&mut gpu, &a, &b).unwrap())
        });
    });
    let csc = a.to_csc();
    group.bench_function("online_tiled_dcsr", |bch| {
        bch.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
            black_box(bstat_tiled_dcsr_online(&mut gpu, &csc, &b, 16, 16).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_host_kernels, bench_simulated_kernels);
criterion_main!(benches);
