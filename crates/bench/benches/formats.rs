//! Criterion microbenches: format construction and conversion throughput.
//!
//! §3.3 motivates *online* conversion partly by the offline
//! format-transformation cost ("it often takes more time than the main
//! SpMM kernel"); these benches quantify the host-side conversion costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nmt_formats::{Csr, Dcsr, SparseMatrix, TiledCsr, TiledDcsr};
use nmt_matgen::{generators, GenKind, MatrixDesc};
use std::hint::black_box;

fn test_matrix(n: usize, density: f64) -> Csr {
    generators::generate(&MatrixDesc::new(
        "bench",
        n,
        GenKind::Uniform { density },
        42,
    ))
}

fn bench_conversions(c: &mut Criterion) {
    let mut group = c.benchmark_group("format_conversion");
    for &n in &[1024usize, 4096] {
        let csr = test_matrix(n, 0.01);
        let nnz = csr.nnz() as u64;
        group.throughput(Throughput::Elements(nnz));

        group.bench_with_input(BenchmarkId::new("csr_to_csc", n), &csr, |b, m| {
            b.iter(|| black_box(m.to_csc()));
        });
        group.bench_with_input(BenchmarkId::new("csr_to_dcsr", n), &csr, |b, m| {
            b.iter(|| black_box(Dcsr::from_csr(m)));
        });
        group.bench_with_input(BenchmarkId::new("csr_to_tiled_csr64", n), &csr, |b, m| {
            b.iter(|| black_box(TiledCsr::from_csr(m, 64).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("csr_to_tiled_dcsr64", n), &csr, |b, m| {
            b.iter(|| black_box(TiledDcsr::from_csr(m, 64, 64).unwrap()));
        });
        let coo = csr.to_coo();
        group.bench_with_input(BenchmarkId::new("coo_to_csr", n), &coo, |b, m| {
            b.iter(|| black_box(Csr::from_coo(m)));
        });
    }
    group.finish();
}

fn bench_strip_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("strip_analysis");
    let csr = test_matrix(4096, 0.01);
    group.throughput(Throughput::Elements(csr.nnz() as u64));
    group.bench_function("strip_nonzero_fraction_w64", |b| {
        b.iter(|| black_box(nmt_formats::strip_nonzero_row_fraction(&csr, 64)));
    });
    group.finish();
}

criterion_group!(benches, bench_conversions, bench_strip_stats);
criterion_main!(benches);
