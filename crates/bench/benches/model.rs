//! Criterion microbenches: the analytical models and the SSF profiler.
//!
//! The paper argues SSF profiling can be amortized/sampled (§3.1.4); this
//! quantifies the full-scan cost of profiling a matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nmt_formats::SparseMatrix;
use nmt_matgen::{generators, GenKind, MatrixDesc};
use nmt_model::ssf::SsfProfile;
use nmt_model::{learn_threshold, normalized_entropy, TrafficModel};
use std::hint::black_box;

fn bench_profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssf_profiling");
    for &n in &[1024usize, 4096] {
        let a = generators::generate(&MatrixDesc::new(
            "bench",
            n,
            GenKind::ZipfRows {
                density: 0.005,
                exponent: 1.1,
            },
            23,
        ));
        group.throughput(Throughput::Elements(a.nnz() as u64));
        group.bench_with_input(BenchmarkId::new("ssf_profile_w64", n), &a, |b, m| {
            b.iter(|| black_box(SsfProfile::compute(m, 64)));
        });
        group.bench_with_input(BenchmarkId::new("entropy_w64", n), &a, |b, m| {
            b.iter(|| black_box(normalized_entropy(m, 64)));
        });
    }
    group.finish();
}

fn bench_threshold_learning(c: &mut Criterion) {
    let points: Vec<(f64, f64)> = (0..4000)
        .map(|i| {
            let ssf = (i as f64 + 1.0) * 10.0;
            let ratio = if ssf > 20_000.0 { 2.0 } else { 0.5 };
            (ssf, ratio)
        })
        .collect();
    c.bench_function("learn_threshold_4000pts", |b| {
        b.iter(|| black_box(learn_threshold(&points)));
    });
}

fn bench_traffic_model(c: &mut Criterion) {
    let a = generators::generate(&MatrixDesc::new(
        "bench",
        2048,
        GenKind::Uniform { density: 0.01 },
        29,
    ));
    c.bench_function("traffic_model_measure", |b| {
        b.iter(|| black_box(TrafficModel::measure(&a, 64)));
    });
}

criterion_group!(
    benches,
    bench_profiling,
    bench_threshold_learning,
    bench_traffic_model
);
criterion_main!(benches);
