//! Table 1 — compulsory memory traffic of the A-/B-/C-stationary
//! dataflows, analytical model vs. simulator-measured requested traffic.

use nmt_bench::{banner, experiment_k, experiment_scale, experiment_tile, print_table};
use nmt_formats::{SparseMatrix, TiledCsr, TiledDcsr};
use nmt_kernels::{astat_tiled, bstat_tiled_dcsr_offline, csrmm_row_per_warp};
use nmt_matgen::{generators, random_dense, GenKind, MatrixDesc};
use nmt_model::{Dataflow, TrafficModel};
use nmt_sim::{Gpu, TrafficClass};

fn main() {
    banner(
        "table1_traffic",
        "Table 1: compulsory memory traffic comparison",
    );
    let scale = experiment_scale();
    let tile = experiment_tile(scale);
    let k = experiment_k(scale);
    let dims: &[usize] = match scale {
        nmt_matgen::SuiteScale::Small => &[512, 1024],
        nmt_matgen::SuiteScale::Medium => &[1024, 2048],
        nmt_matgen::SuiteScale::Paper => &[4096, 8192],
    };

    println!("\n--- analytical model (uniform density, bytes, B/C as n x n) ---");
    let mut rows = Vec::new();
    for &n in dims {
        for &d in &[0.001f64, 0.01] {
            let m = TrafficModel::uniform(n, tile, d);
            for df in Dataflow::ALL {
                let e = m.estimate(df);
                rows.push(vec![
                    format!("{n}"),
                    format!("{d}"),
                    format!("{df:?}"),
                    format!("{:.2e}", e.a_bytes),
                    format!("{:.2e}", e.b_bytes),
                    format!("{:.2e}", e.c_bytes),
                    format!("{:.2e}", e.total()),
                ]);
            }
        }
    }
    print_table(
        &[
            "n", "density", "dataflow", "A bytes", "B bytes", "C bytes", "total",
        ],
        &rows,
    );

    println!("\n--- simulator-measured requested traffic (K = {k} vectors) ---");
    let mut rows = Vec::new();
    for &n in dims {
        let desc = MatrixDesc::new("t1", n, GenKind::Uniform { density: 0.005 }, 3);
        let a = generators::generate(&desc);
        let b = random_dense(n, k, 5);
        let runs: Vec<(&str, nmt_sim::KernelStats, u64)> = {
            let mut out = Vec::new();
            let mut gpu =
                Gpu::new(nmt_bench::experiment_gpu(experiment_scale())).expect("valid preset");
            let r = astat_tiled(&mut gpu, &a, &b, tile).expect("astat runs");
            out.push(("A-stationary", r.stats.clone(), r.stats.atomics));
            let mut gpu =
                Gpu::new(nmt_bench::experiment_gpu(experiment_scale())).expect("valid preset");
            let tiled = TiledDcsr::from_csr(&a, tile, tile).expect("tiling");
            let r = bstat_tiled_dcsr_offline(&mut gpu, &tiled, &b).expect("bstat runs");
            out.push(("B-stationary", r.stats.clone(), r.stats.atomics));
            let mut gpu =
                Gpu::new(nmt_bench::experiment_gpu(experiment_scale())).expect("valid preset");
            let r = csrmm_row_per_warp(&mut gpu, &a, &b).expect("cstat runs");
            out.push(("C-stationary", r.stats.clone(), r.stats.atomics));
            out
        };
        for (name, stats, atomics) in runs {
            rows.push(vec![
                format!("{n}"),
                name.into(),
                format!(
                    "{:.2e}",
                    stats.requested_traffic.get(TrafficClass::MatA) as f64
                ),
                format!(
                    "{:.2e}",
                    stats.requested_traffic.get(TrafficClass::MatB) as f64
                ),
                format!(
                    "{:.2e}",
                    stats.requested_traffic.get(TrafficClass::MatC) as f64
                ),
                format!("{atomics}"),
                format!("{:.0}", stats.total_ns),
            ]);
        }
        let _ = TiledCsr::from_csr(&a, tile); // ensure tiled CSR also builds at this scale
        let _ = a.nnz();
    }
    print_table(
        &[
            "n", "dataflow", "A req B", "B req B", "C req B", "atomics", "time ns",
        ],
        &rows,
    );
    println!();
    println!("expected shape (Table 1 / §3.1): A-stationary maximizes B+C traffic;");
    println!("B-stationary fetches B once but pays atomics on C; C-stationary");
    println!("fetches B per non-zero but writes C once with no atomics.");
}
