//! Figure 4 — performance vs. SSF value, and the learned threshold.
//!
//! For every suite matrix, run both algorithms (C-stationary untiled DCSR,
//! B-stationary online-tiled DCSR), plot `t_C / t_B` against the SSF value,
//! learn the split threshold, and report the classification accuracy
//! (paper: >93 %).

use nmt::planner::{PlannerConfig, SpmmPlanner};
use nmt_bench::{
    banner, build_suite, experiment_k, experiment_scale, experiment_tile, par_map_suite,
    print_table,
};
use nmt_formats::SparseMatrix;
use nmt_matgen::random_dense;
use nmt_model::ssf::SsfProfile;
use nmt_model::{classify, learn_threshold};

fn main() {
    banner(
        "fig04_ssf_scatter",
        "Figure 4: performance vs SSF value + learned SSF_th",
    );
    let suite = build_suite();
    let scale = experiment_scale();
    let tile = experiment_tile(scale);
    let k = experiment_k(scale);

    let points = par_map_suite(&suite, |desc, a| {
        let profile = SsfProfile::compute(a, tile);
        let b = random_dense(a.shape().ncols, k, desc.seed ^ 0x4);
        let planner = SpmmPlanner::new(PlannerConfig {
            gpu: nmt_bench::experiment_gpu(experiment_scale()),
            tile_w: tile,
            tile_h: tile,
            threshold: nmt::DEFAULT_SSF_THRESHOLD,
            fault: None,
        });
        let (tc, tb) = planner.profile_both(a, &b).expect("both kernels run");
        (desc.name.clone(), profile, tc / tb)
    });

    let mut rows: Vec<Vec<String>> = points
        .iter()
        .map(|(name, p, ratio)| {
            vec![
                name.clone(),
                format!("{:.3e}", p.ssf),
                format!("{:.3}", p.h_norm),
                format!("{:.3}", ratio),
                if *ratio > 1.0 { "B-stat" } else { "C-stat" }.into(),
            ]
        })
        .collect();
    rows.sort_by(|a, b| {
        let av: f64 = a[1].parse().unwrap_or(0.0);
        let bv: f64 = b[1].parse().unwrap_or(0.0);
        av.partial_cmp(&bv).expect("finite SSF")
    });
    print_table(&["matrix", "SSF", "H_norm", "t_C/t_B", "winner"], &rows);

    let samples: Vec<(f64, f64)> = points.iter().map(|(_, p, r)| (p.ssf, *r)).collect();
    let th = learn_threshold(&samples);
    let correct = samples
        .iter()
        .filter(|&&(ssf, ratio)| {
            let predicted_b = classify(ssf, &th) == nmt_model::ssf::Choice::BStationary;
            predicted_b == (ratio > 1.0)
        })
        .count();
    println!();
    println!("matrices profiled      : {}", samples.len());
    println!("learned SSF_th         : {:.4e}", th.threshold);
    println!(
        "classification accuracy: {:.1}% ({} / {})",
        th.accuracy * 100.0,
        correct,
        samples.len()
    );
    println!(
        "paper                  : >93% correctly categorized (Fig. 4), ~96% with online tiling"
    );
}
