//! `microbench` — statistical microbenchmarks for the three hot paths the
//! profiler attributes most time to: the parallel conversion farm, the
//! B-stationary online kernel, and the comparator tree's frontier
//! min-scan. Each target runs through the harness (warmup, fixed
//! iteration count, MAD outlier rejection, bootstrap CIs) and prints one
//! table row; CI runs the reduced `--iters`/`--warmup` variant as a
//! smoke check.
//!
//! Besides wall time, every target is measured for **steady-state
//! allocation pressure**: pools are reset, one warm iteration shelves its
//! buffers, then a second iteration's process-wide `alloc.count` /
//! `alloc.bytes` delta (all threads — the farm's workers included) lands
//! in the table. With `--budgets <file>` the measured numbers gate
//! against the committed per-target ceilings and the run fails on any
//! increase; `--write-budgets <file>` regenerates the file with headroom.
//!
//! ```text
//! microbench [--iters N] [--warmup N] [--n N] [--k N] [--tile N]
//!            [--budgets <ALLOC_BUDGETS.json>] [--write-budgets <file>]
//! ```

use nmt_bench::harness::{run, BenchConfig};
use nmt_bench::{print_table, EXPERIMENT_SEED};
use nmt_engine::{convert_matrix_farm, ComparatorTree, FarmConfig, MinScratch};
use nmt_formats::SparseMatrix;
use nmt_kernels::bstat_tiled_dcsr_online;
use nmt_matgen::{random_dense, GenKind, MatrixDesc};
use nmt_sim::{Gpu, GpuConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// The measured alloc numbers see every thread, so the binary must own
/// the real global allocator.
#[global_allocator]
static ALLOC: nmt_obs::CountingAlloc = nmt_obs::CountingAlloc;

/// One target's committed allocation ceiling (already includes headroom).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct AllocBudget {
    /// Max allocations per steady-state iteration.
    count: u64,
    /// Max bytes requested per steady-state iteration.
    bytes: u64,
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value {v:?} for {name}")),
    }
}

/// Steady-state allocation delta of one iteration of `f`, across all
/// threads: reset the engine pools to a reproducible empty state, then
/// run warm iterations until the delta stops shrinking and report the
/// last one. Several warm passes are needed because pooled buffers grow
/// toward their steady-state capacities over the first few runs (a
/// checked-out buffer smaller than its eventual need reallocs once, then
/// reshelves at the grown capacity — shelf capacities only ratchet up).
fn measure_alloc(mut f: impl FnMut()) -> (u64, u64) {
    const MAX_WARM: usize = 8;
    nmt_engine::mem::reset_pools();
    let prev = nmt_obs::alloc::enable_counting(true);
    f();
    let mut best = (u64::MAX, u64::MAX);
    for _ in 0..MAX_WARM {
        let (c0, b0) = nmt_obs::alloc::process_totals();
        f();
        let (c1, b1) = nmt_obs::alloc::process_totals();
        let delta = (c1.saturating_sub(c0), b1.saturating_sub(b0));
        if delta.0 >= best.0 {
            best = best.min(delta);
            break;
        }
        best = delta;
    }
    nmt_obs::alloc::enable_counting(prev);
    best
}

fn main() -> ExitCode {
    match run_benches() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_benches() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = BenchConfig::default();
    cfg.iters = parse_flag(&args, "--iters", cfg.iters)?;
    cfg.warmup = parse_flag(&args, "--warmup", cfg.warmup)?;
    if cfg.iters == 0 {
        return Err("--iters must be at least 1".into());
    }
    let n: usize = parse_flag(&args, "--n", 512)?;
    let k: usize = parse_flag(&args, "--k", 32)?;
    let tile: usize = parse_flag(&args, "--tile", 16)?;
    if tile == 0 || tile > 64 {
        return Err("--tile must be in 1..=64 (the engine is 64 lanes wide)".into());
    }
    let budgets_path = flag(&args, "--budgets");
    let write_budgets_path = flag(&args, "--write-budgets");

    // One deterministic operand set shared by every target.
    let a = nmt_matgen::generate(&MatrixDesc::new(
        "microbench",
        n,
        GenKind::ZipfRows {
            density: 0.01,
            exponent: 1.1,
        },
        EXPERIMENT_SEED,
    ));
    let csc = a.to_csc();
    let b = random_dense(a.shape().ncols, k, EXPERIMENT_SEED ^ 0x16);

    println!(
        "microbench: n = {n}, nnz = {}, k = {k}, tile = {tile}, {} iters after {} warmup",
        a.nnz(),
        cfg.iters,
        cfg.warmup
    );

    let mut rows = Vec::new();
    let mut measured: BTreeMap<String, AllocBudget> = BTreeMap::new();
    let mut add_row =
        |name: &str, stats: nmt_bench::BenchStats, alloc: (u64, u64)| {
            rows.push(vec![
                name.to_string(),
                format!("{:.1}", stats.median_ns / 1e3),
                format!("{:.1}", stats.ci_lo_ns / 1e3),
                format!("{:.1}", stats.ci_hi_ns / 1e3),
                format!("{:.1}", stats.mad_ns / 1e3),
                format!("{}", stats.samples),
                format!("{}", stats.rejected),
                format!("{}", alloc.0),
                format!("{:.1}", alloc.1 as f64 / 1024.0),
            ]);
            measured.insert(
                name.to_string(),
                AllocBudget {
                    count: alloc.0,
                    bytes: alloc.1,
                },
            );
        };

    // 1. The conversion farm: CSC -> tiled DCSR across FB partitions.
    // The alloc pass recycles each run's output so the pools reach their
    // steady state — exactly how the online kernel consumes the farm.
    let farm_cfg = FarmConfig::paper_default();
    let stats = run(&cfg, || {
        let farm = convert_matrix_farm(&csc, tile, tile, farm_cfg)
            .expect("clean farm conversion cannot fail");
        std::hint::black_box(farm.stats.elements);
    });
    let alloc = measure_alloc(|| {
        let farm = convert_matrix_farm(&csc, tile, tile, farm_cfg)
            .expect("clean farm conversion cannot fail");
        std::hint::black_box(farm.stats.elements);
        nmt_engine::mem::recycle_strips(farm.strips);
    });
    add_row("farm_convert", stats, alloc);

    // 2. The B-stationary online kernel (engine + kernel pipeline).
    let stats = run(&cfg, || {
        let mut gpu = Gpu::new(GpuConfig::test_small()).expect("test GPU config is valid");
        let out = bstat_tiled_dcsr_online(&mut gpu, &csc, &b, tile, tile)
            .expect("online kernel runs on a clean matrix");
        std::hint::black_box(out.run.stats.total_ns);
    });
    let alloc = measure_alloc(|| {
        let mut gpu = Gpu::new(GpuConfig::test_small()).expect("test GPU config is valid");
        let out = bstat_tiled_dcsr_online(&mut gpu, &csc, &b, tile, tile)
            .expect("online kernel runs on a clean matrix");
        std::hint::black_box(out.run.stats.total_ns);
    });
    add_row("bstat_online", stats, alloc);

    // 3. The comparator tree's frontier min-scan, the engine's inner loop.
    let tree = ComparatorTree::new(tile).map_err(|e| e.to_string())?;
    let coords: Vec<Option<u32>> = (0..tile)
        .map(|i| (i % 3 != 0).then_some(((i * 37) % 101) as u32))
        .collect();
    let stats = run(&cfg, || {
        let mut scratch = MinScratch::new();
        for _ in 0..1024 {
            std::hint::black_box(
                tree.find_min_in(std::hint::black_box(&coords), &mut scratch),
            );
        }
    });
    let alloc = measure_alloc(|| {
        let mut scratch = MinScratch::new();
        for _ in 0..1024 {
            std::hint::black_box(
                tree.find_min_in(std::hint::black_box(&coords), &mut scratch),
            );
        }
    });
    add_row("find_min_x1024", stats, alloc);

    print_table(
        &[
            "target", "median_us", "ci_lo_us", "ci_hi_us", "mad_us", "kept", "rejected",
            "alloc_n", "alloc_kb",
        ],
        &rows,
    );

    if let Some(path) = write_budgets_path {
        // Headroom: 50% relative + small absolute slack, so pool shelving
        // wobble and allocator-internal variance never flake the gate.
        let with_headroom: BTreeMap<String, AllocBudget> = measured
            .iter()
            .map(|(name, m)| {
                (
                    name.clone(),
                    AllocBudget {
                        count: m.count + m.count / 2 + 64,
                        bytes: m.bytes + m.bytes / 2 + 65_536,
                    },
                )
            })
            .collect();
        let json = serde_json::to_string_pretty(&with_headroom)
            .map_err(|e| format!("cannot serialize budgets: {e:?}"))?;
        std::fs::write(&path, json + "\n")
            .map_err(|e| format!("cannot write budgets to {path}: {e}"))?;
        eprintln!("wrote allocation budgets (with headroom) to {path}");
    }

    if let Some(path) = budgets_path {
        let json = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read budgets from {path}: {e}"))?;
        let budgets: BTreeMap<String, AllocBudget> =
            serde_json::from_str(&json).map_err(|e| format!("malformed budgets file: {e:?}"))?;
        let mut failures = Vec::new();
        for (name, budget) in &budgets {
            let Some(m) = measured.get(name) else {
                failures.push(format!(
                    "budgeted target '{name}' was not measured — refresh the budgets file"
                ));
                continue;
            };
            if m.count > budget.count {
                failures.push(format!(
                    "{name}: allocation count {} exceeds budget {}",
                    m.count, budget.count
                ));
            }
            if m.bytes > budget.bytes {
                failures.push(format!(
                    "{name}: allocation bytes {} exceed budget {}",
                    m.bytes, budget.bytes
                ));
            }
        }
        if failures.is_empty() {
            eprintln!(
                "allocation budgets OK: {} targets within {path}",
                budgets.len()
            );
        } else {
            return Err(format!(
                "allocation budget exceeded:\n  {}",
                failures.join("\n  ")
            ));
        }
    }
    Ok(())
}
