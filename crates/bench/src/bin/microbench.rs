//! `microbench` — statistical microbenchmarks for the three hot paths the
//! profiler attributes most time to: the parallel conversion farm, the
//! B-stationary online kernel, and the comparator tree's frontier
//! min-scan. Each target runs through the harness (warmup, fixed
//! iteration count, MAD outlier rejection, bootstrap CIs) and prints one
//! table row; CI runs the reduced `--iters`/`--warmup` variant as a
//! smoke check.
//!
//! ```text
//! microbench [--iters N] [--warmup N] [--n N] [--k N] [--tile N]
//! ```

use nmt_bench::harness::{run, BenchConfig};
use nmt_bench::{print_table, EXPERIMENT_SEED};
use nmt_engine::{convert_matrix_farm, ComparatorTree, FarmConfig};
use nmt_formats::SparseMatrix;
use nmt_kernels::bstat_tiled_dcsr_online;
use nmt_matgen::{random_dense, GenKind, MatrixDesc};
use nmt_sim::{Gpu, GpuConfig};
use std::process::ExitCode;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value {v:?} for {name}")),
    }
}

fn main() -> ExitCode {
    match run_benches() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_benches() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = BenchConfig::default();
    cfg.iters = parse_flag(&args, "--iters", cfg.iters)?;
    cfg.warmup = parse_flag(&args, "--warmup", cfg.warmup)?;
    if cfg.iters == 0 {
        return Err("--iters must be at least 1".into());
    }
    let n: usize = parse_flag(&args, "--n", 512)?;
    let k: usize = parse_flag(&args, "--k", 32)?;
    let tile: usize = parse_flag(&args, "--tile", 16)?;
    if tile == 0 || tile > 64 {
        return Err("--tile must be in 1..=64 (the engine is 64 lanes wide)".into());
    }

    // One deterministic operand set shared by every target.
    let a = nmt_matgen::generate(&MatrixDesc::new(
        "microbench",
        n,
        GenKind::ZipfRows {
            density: 0.01,
            exponent: 1.1,
        },
        EXPERIMENT_SEED,
    ));
    let csc = a.to_csc();
    let b = random_dense(a.shape().ncols, k, EXPERIMENT_SEED ^ 0x16);

    println!(
        "microbench: n = {n}, nnz = {}, k = {k}, tile = {tile}, {} iters after {} warmup",
        a.nnz(),
        cfg.iters,
        cfg.warmup
    );

    let mut rows = Vec::new();
    let mut add_row = |name: &str, stats: nmt_bench::BenchStats| {
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", stats.median_ns / 1e3),
            format!("{:.1}", stats.ci_lo_ns / 1e3),
            format!("{:.1}", stats.ci_hi_ns / 1e3),
            format!("{:.1}", stats.mad_ns / 1e3),
            format!("{}", stats.samples),
            format!("{}", stats.rejected),
        ]);
    };

    // 1. The conversion farm: CSC -> tiled DCSR across FB partitions.
    let farm_cfg = FarmConfig::paper_default();
    let stats = run(&cfg, || {
        let farm = convert_matrix_farm(&csc, tile, tile, farm_cfg)
            .expect("clean farm conversion cannot fail");
        std::hint::black_box(farm.stats.elements);
    });
    add_row("farm_convert", stats);

    // 2. The B-stationary online kernel (engine + kernel pipeline).
    let stats = run(&cfg, || {
        let mut gpu = Gpu::new(GpuConfig::test_small()).expect("test GPU config is valid");
        let out = bstat_tiled_dcsr_online(&mut gpu, &csc, &b, tile, tile)
            .expect("online kernel runs on a clean matrix");
        std::hint::black_box(out.run.stats.total_ns);
    });
    add_row("bstat_online", stats);

    // 3. The comparator tree's frontier min-scan, the engine's inner loop.
    let tree = ComparatorTree::new(tile);
    let coords: Vec<Option<u32>> = (0..tile)
        .map(|i| (i % 3 != 0).then_some(((i * 37) % 101) as u32))
        .collect();
    let stats = run(&cfg, || {
        for _ in 0..1024 {
            std::hint::black_box(tree.find_min(std::hint::black_box(&coords)));
        }
    });
    add_row("find_min_x1024", stats);

    print_table(
        &[
            "target", "median_us", "ci_lo_us", "ci_hi_us", "mad_us", "kept", "rejected",
        ],
        &rows,
    );
    Ok(())
}
