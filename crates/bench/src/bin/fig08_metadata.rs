//! Figure 8 — metadata storage of tiled DCSR normalized to tiled CSR.
//!
//! Tiled DCSR should be orders of magnitude smaller than tiled CSR in
//! metadata (log-scale y-axis in the paper), with exceptions for matrices
//! whose strips contain many non-zero row segments.

use nmt_bench::{
    banner, build_suite, experiment_scale, experiment_tile, geomean, par_map_suite, print_table,
};
use nmt_formats::{size_ratio, StorageSize, TiledCsr, TiledDcsr};

fn main() {
    banner(
        "fig08_metadata",
        "Figure 8: metadata size of tiled DCSR vs tiled CSR",
    );
    let suite = build_suite();
    let tile = experiment_tile(experiment_scale());

    let results = par_map_suite(&suite, |desc, a| {
        let tcsr = TiledCsr::from_csr(a, tile).expect("tiling");
        let tdcsr = TiledDcsr::from_csr(a, tile, tile).expect("tiling");
        let meta = size_ratio(tcsr.metadata_bytes(), tdcsr.metadata_bytes());
        let total = size_ratio(tcsr.storage_bytes(), tdcsr.storage_bytes());
        (desc.name.clone(), meta, total, tdcsr.total_row_segments())
    });

    let mut rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, meta, total, segs)| {
            vec![
                name.clone(),
                format!("{meta:.1}x"),
                format!("{total:.1}x"),
                format!("{segs}"),
            ]
        })
        .collect();
    rows.sort_by(|a, b| {
        let av: f64 = a[1].trim_end_matches('x').parse().unwrap_or(0.0);
        let bv: f64 = b[1].trim_end_matches('x').parse().unwrap_or(0.0);
        bv.partial_cmp(&av).expect("finite ratios")
    });
    print_table(
        &[
            "matrix",
            "tiledCSR/tiledDCSR metadata",
            "meta+data",
            "row segments",
        ],
        &rows,
    );

    let metas: Vec<f64> = results.iter().map(|r| r.1).collect();
    println!();
    println!("geomean metadata ratio (CSR/DCSR): {:.1}x", geomean(&metas));
    println!(
        "max                              : {:.1}x",
        metas.iter().copied().fold(0.0, f64::max)
    );
    println!(
        "min                              : {:.2}x",
        metas.iter().copied().fold(f64::INFINITY, f64::min)
    );
    println!("paper: tiled DCSR commonly has orders-of-magnitude smaller");
    println!("footprint than tiled CSR, except matrices with many non-zero");
    println!("row segments per strip.");
}
