//! Ablation: L2 capacity. §3.1 ("Data Access Locality") rests on what the
//! LLC can and cannot keep resident: C-stationary's repeated B fetches are
//! only cheap while B reuse survives in the L2. This sweep grows the L2
//! across the B footprint to locate the crossover where tiling stops
//! mattering — the reason the experiment harness scales the L2 with the
//! suite (DESIGN.md §2).

use nmt_bench::{banner, print_table};
use nmt_formats::{Dcsr, SparseMatrix};
use nmt_kernels::{bstat_tiled_dcsr_online, dcsrmm_row_per_warp};
use nmt_matgen::{generators, random_dense, GenKind, MatrixDesc};
use nmt_sim::{Gpu, GpuConfig, TrafficClass};

fn main() {
    banner(
        "ablate_l2_capacity",
        "substrate choice: L2 scaled below the B footprint",
    );
    let k = 64;
    let tile = 16;
    let a = generators::generate(&MatrixDesc::new(
        "rowburst",
        1024,
        GenKind::RowBursts {
            density: 0.01,
            burst_len: 16,
        },
        11,
    ));
    let b = random_dense(a.shape().ncols, k, 13);
    let b_bytes = (a.shape().ncols * k * 4) as u64;
    println!("B footprint: {} KB\n", b_bytes / 1024);

    let mut rows = Vec::new();
    for &l2_kb in &[128usize, 256, 512, 1024, 6144] {
        let mut cfg = GpuConfig::gv100();
        cfg.l2_bytes = l2_kb * 1024;
        cfg.kernel_overhead_ns = 200.0;
        let mut g1 = Gpu::new(cfg.clone()).expect("valid config");
        let cstat = dcsrmm_row_per_warp(&mut g1, &Dcsr::from_csr(&a), &b).expect("cstat");
        let mut g2 = Gpu::new(cfg).expect("valid config");
        let online = bstat_tiled_dcsr_online(&mut g2, &a.to_csc(), &b, tile, tile).expect("online");
        rows.push(vec![
            format!("{l2_kb} KB"),
            format!("{:.2}", l2_kb as f64 * 1024.0 / b_bytes as f64),
            format!("{:.0}", cstat.stats.total_ns),
            format!("{:.1}%", cstat.stats.l2_hit_rate() * 100.0),
            format!(
                "{}",
                cstat.stats.dram_traffic.get(TrafficClass::MatB) / 1024
            ),
            format!("{:.0}", online.run.stats.total_ns),
            format!("{:.2}", cstat.stats.total_ns / online.run.stats.total_ns),
        ]);
    }
    print_table(
        &[
            "L2",
            "L2/B",
            "t_C ns",
            "C-stat L2 hit",
            "C-stat B KB (DRAM)",
            "t_B ns",
            "t_C/t_B",
        ],
        &rows,
    );
    println!();
    println!("expected: once the L2 swallows B (L2/B >= 1), C-stationary's");
    println!("refetches become hits, its DRAM B traffic collapses, and the");
    println!("tiling advantage (t_C/t_B) shrinks toward 1. The paper's regime is");
    println!("the opposite corner: B up to 7.7 GB against a 6 MB L2.");
}
