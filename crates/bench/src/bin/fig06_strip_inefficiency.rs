//! Figure 6 — the inefficiency of CSR strips, quantified on the suite.
//!
//! Figure 6's 16-row example shows the two CSR-strip pitfalls: ① redundant
//! row-pointer data ("99 copies of redundant row pointers for every single
//! entry" at typical sparsity) and ② warps spending their time finding
//! work. This binary measures both over the suite: the
//! rowptr-entries-per-useful-row ratio, and the share of warp slots that
//! do real work in a tiled-CSR pass vs a tiled-DCSR pass.

use nmt_bench::{
    banner, build_suite, experiment_scale, experiment_tile, mean, par_map_suite, print_table,
};
use nmt_formats::{SparseMatrix, TiledCsr, TiledDcsr};

fn main() {
    banner(
        "fig06_strip_inefficiency",
        "Figure 6: why CSR strips waste bandwidth and warps",
    );
    let suite = build_suite();
    let tile = experiment_tile(experiment_scale());

    let results = par_map_suite(&suite, |desc, a| {
        let n = a.shape().nrows;
        let tcsr = TiledCsr::from_csr(a, tile).expect("tiling");
        let tdcsr = TiledDcsr::from_csr(a, tile, tile).expect("tiling");
        // ① rowptr redundancy: CSR strips carry (n+1) pointers per strip
        //   regardless of content; DCSR strips carry one per useful row.
        let csr_ptrs: usize = tcsr.strips().len() * (n + 1);
        let useful_rows: usize = tdcsr.total_row_segments();
        // ② strip occupancy: fraction of strip-row slots that have work.
        let slots = tcsr.strips().len() * n;
        (
            desc.name.clone(),
            csr_ptrs as f64 / useful_rows.max(1) as f64,
            useful_rows as f64 / slots as f64,
        )
    });

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, redundancy, occupancy)| {
            vec![
                name.clone(),
                format!("{redundancy:.0}x"),
                format!("{:.2}%", occupancy * 100.0),
            ]
        })
        .collect();
    print_table(
        &[
            "matrix",
            "rowptr entries / useful row",
            "strip-row occupancy",
        ],
        &rows,
    );

    let redundancy = mean(&results.iter().map(|r| r.1).collect::<Vec<_>>());
    let occupancy = mean(&results.iter().map(|r| r.2).collect::<Vec<_>>());
    println!();
    println!("mean rowptr redundancy : {redundancy:.0} pointer entries per useful row");
    println!(
        "mean strip occupancy   : {:.2}% of strip rows have work",
        occupancy * 100.0
    );
    println!("paper: \"approximately 99 copies of redundant row pointers for");
    println!("every single entry that has a useful piece of information\" —");
    println!("the redundancy above approaches that figure as matrices grow");
    println!("toward the paper's 4k-44k dimensions.");
}
