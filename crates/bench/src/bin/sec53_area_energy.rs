//! §5.3 — area and energy consumption of the transform units, regenerated
//! from the circuit-model constants (TSMC 16 nm comparator stage, CACTI
//! buffer) for GV100 and TU116.

use nmt_bench::{banner, print_table};
use nmt_engine::area_energy::GV100_IDLE_WATTS;
use nmt_engine::{AreaEnergyModel, ComparatorTree, EngineTiming, PrefetchBuffer};
use nmt_sim::GpuConfig;

fn main() {
    banner(
        "sec53_area_energy",
        "Section 5.3: engine area, energy, throughput, buffer sizing",
    );

    // --- Throughput demand ---
    let tree = ComparatorTree::new(64).expect("64 lanes is the engine width").structure();
    let t32 = EngineTiming::fp32(13.6, &tree);
    let t64 = EngineTiming::fp64(13.6, &tree);
    println!("--- throughput demand (one HBM2 pseudo channel = 13.6 GB/s) ---");
    println!(
        "fp32: 8-byte element every {:.3} ns (paper: 0.588 ns)",
        t32.cycle_ns
    );
    println!(
        "fp64: 12-byte element every {:.3} ns (paper: 0.882 ns)",
        t64.cycle_ns
    );
    println!(
        "longest pipeline stage: {:.3} ns (paper: 0.339 ns) -> fits: {}",
        t32.max_stage_ns,
        t32.meets_throughput()
    );
    println!(
        "comparator tree: {} two-input units, depth {} (64-wide strip)",
        tree.two_input_units, tree.depth
    );

    // --- Prefetch buffer ---
    println!();
    println!("--- internal buffer demand ---");
    let buf = PrefetchBuffer::paper_default();
    println!(
        "latency to hide: {:.1} ns (3.3 ns column bookkeeping + 15 ns DRAM CL)",
        PrefetchBuffer::required_hide_ns()
    );
    let sized = PrefetchBuffer::sized_to_hide(PrefetchBuffer::required_hide_ns(), &t32, 64);
    println!(
        "required buffer: {} B/column -> paper config {} B/column, {} KB/unit",
        sized.bytes_per_column,
        buf.bytes_per_column,
        buf.total_bytes() / 1024
    );
    println!(
        "hideable with 256 B/column: fp32 {:.1} ns, fp64 {:.1} ns (paper: 18.8 ns)",
        buf.hideable_ns(&t32),
        buf.hideable_ns(&t64)
    );

    // --- Area & energy ---
    println!();
    println!("--- area and energy ---");
    let mut rows = Vec::new();
    for gpu in [GpuConfig::gv100(), GpuConfig::tu116()] {
        let m = AreaEnergyModel::for_gpu(&gpu);
        rows.push(vec![
            gpu.name.clone(),
            format!("{}", m.units),
            format!("{:.2} mm2", m.total_area_mm2),
            format!("{:.2}%", m.area_fraction * 100.0),
            format!("{:.2} W", m.peak_power_fp32_w),
            format!("{:.2} W", m.peak_power_fp64_w),
            format!("{:.2}%", m.power_fraction_tdp * 100.0),
        ]);
    }
    print_table(
        &[
            "gpu",
            "units",
            "engine area",
            "% die",
            "peak W (fp32)",
            "peak W (fp64)",
            "% TDP",
        ],
        &rows,
    );
    let gv = AreaEnergyModel::for_gpu(&GpuConfig::gv100());
    println!();
    println!("paper: GV100 64 units, 4.9 mm2 = 0.6% of 815 mm2; 0.68 W (0.51 W fp64)");
    println!("       = 0.27% of 250 W TDP and 2.96% of idle power");
    println!("       TU116 24 units, 1.85 mm2 = 0.65% of 284 mm2");
    println!(
        "measured idle-power share: {:.2}% (assuming {:.0} W idle)",
        gv.peak_power_fp32_w / GV100_IDLE_WATTS * 100.0,
        GV100_IDLE_WATTS
    );
    println!(
        "in-SM alternative placement (\u{a7}6.1): {:.1} mm2 (2x the FB placement)",
        AreaEnergyModel::in_sm_alternative(&GpuConfig::gv100())
    );
}
