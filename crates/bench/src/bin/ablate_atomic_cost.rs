//! Ablation: the atomic-bandwidth assumption. Table 1's footnote fixes
//! "atomic bandwidth = 2× memory access"; §3.1.2 then argues B-stationary
//! "suffers from the atomic bandwidth" on uniform matrices. This sweep
//! varies the factor to show how strongly the B-/C-stationary crossover
//! depends on it.

use nmt_bench::{banner, experiment_gpu, experiment_scale, print_table};
use nmt_formats::{Dcsr, SparseMatrix};
use nmt_kernels::{bstat_tiled_dcsr_online, dcsrmm_row_per_warp};
use nmt_matgen::{generators, random_dense, GenKind, MatrixDesc};
use nmt_sim::Gpu;

fn main() {
    banner(
        "ablate_atomic_cost",
        "design assumption: atomics cost 2x (Table 1 footnote)",
    );
    let scale = experiment_scale();
    let k = 32;
    let tile = 16;
    let matrices: Vec<_> = [
        ("uniform (atomic-heavy)", GenKind::Uniform { density: 0.01 }),
        (
            "rowburst (atomic-light)",
            GenKind::RowBursts {
                density: 0.01,
                burst_len: 16,
            },
        ),
    ]
    .into_iter()
    .map(|(name, kind)| {
        (
            name,
            generators::generate(&MatrixDesc::new(name, 1024, kind, 9)),
        )
    })
    .collect();

    let mut rows = Vec::new();
    for &factor in &[1.0f64, 2.0, 4.0, 8.0] {
        let mut cells = vec![format!("{factor}x")];
        for (_, a) in &matrices {
            let b = random_dense(a.shape().ncols, k, 7);
            let mut gpu_cfg = experiment_gpu(scale);
            gpu_cfg.atomic_cost_factor = factor;
            // t_C / t_B > 1 means B-stationary wins at this atomic cost.
            let mut g1 = Gpu::new(gpu_cfg.clone()).expect("preset");
            let tc = dcsrmm_row_per_warp(&mut g1, &Dcsr::from_csr(a), &b)
                .expect("cstat")
                .stats
                .total_ns;
            let mut g2 = Gpu::new(gpu_cfg).expect("preset");
            let tb = bstat_tiled_dcsr_online(&mut g2, &a.to_csc(), &b, tile, tile)
                .expect("online")
                .run
                .stats
                .total_ns;
            cells.push(format!("{:.2}", tc / tb));
        }
        rows.push(cells);
    }
    let mut headers = vec!["atomic cost"];
    headers.extend(matrices.iter().map(|(n, _)| *n));
    print_table(&headers, &rows);
    println!();
    println!("cells show t_C/t_B (>1 = B-stationary wins). Expected: raising the");
    println!("atomic cost erodes B-stationary fastest on the uniform matrix");
    println!("(every non-zero is its own row segment -> maximal atomic rounds),");
    println!("while the clustered matrix amortizes atomics over long segments —");
    println!("the exact §3.1.2 argument for the SSF heuristic.");
}
