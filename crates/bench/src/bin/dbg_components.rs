//! Developer diagnostic: per-kernel time components for one matrix.
//! Not part of the paper reproduction; kept for tuning the timing model.

use nmt_bench::{experiment_gpu, experiment_k, experiment_scale, experiment_tile};
use nmt_formats::{Dcsr, SparseMatrix, TiledDcsr};
use nmt_kernels::{
    bstat_tiled_dcsr_offline, bstat_tiled_dcsr_online, csrmm_row_per_warp, dcsrmm_row_per_warp,
};
use nmt_matgen::{generators, random_dense, GenKind, MatrixDesc};
use nmt_sim::{Gpu, TrafficClass};

fn show(name: &str, s: &nmt_sim::KernelStats) {
    println!(
        "{name:22} total {:>12.0}ns  comp {:>12.0}  mem {:>12.0}  lat {:>12.0}  atomics {:>8}  dramA {:>10}  dramB {:>10}  dramC {:>10}  l2hit {:.2}",
        s.total_ns, s.t_compute_ns, s.t_memory_ns, s.t_latency_ns, s.atomics,
        s.dram_traffic.get(TrafficClass::MatA),
        s.dram_traffic.get(TrafficClass::MatB),
        s.dram_traffic.get(TrafficClass::MatC),
        s.l2_hit_rate(),
    );
}

fn main() {
    let scale = experiment_scale();
    let tile = experiment_tile(scale);
    let k = experiment_k(scale);
    let kinds: Vec<(&str, GenKind)> = vec![
        (
            "banded",
            GenKind::Banded {
                bandwidth: 10,
                fill: 0.5,
            },
        ),
        (
            "rowburst",
            GenKind::RowBursts {
                density: 0.01,
                burst_len: 16,
            },
        ),
        (
            "rowburst_dense",
            GenKind::RowBursts {
                density: 0.03,
                burst_len: 32,
            },
        ),
        ("uniform", GenKind::Uniform { density: 0.01 }),
        (
            "zipf",
            GenKind::ZipfRows {
                density: 0.01,
                exponent: 1.4,
            },
        ),
    ];
    for (label, kind) in kinds {
        let n = 1024;
        let a = generators::generate(&MatrixDesc::new(label, n, kind, 3));
        let b = random_dense(n, k, 5);
        println!("--- {label} n={n} nnz={} tile={tile} K={k} ---", a.nnz());
        let gpu = || Gpu::new(experiment_gpu(scale)).expect("preset");
        let r = csrmm_row_per_warp(&mut gpu(), &a, &b).unwrap();
        show("baseline csr", &r.stats);
        let r = dcsrmm_row_per_warp(&mut gpu(), &Dcsr::from_csr(&a), &b).unwrap();
        show("cstat dcsr", &r.stats);
        let tiled = TiledDcsr::from_csr(&a, tile, tile).unwrap();
        let r = bstat_tiled_dcsr_offline(&mut gpu(), &tiled, &b).unwrap();
        show("bstat offline", &r.stats);
        let r = bstat_tiled_dcsr_online(&mut gpu(), &a.to_csc(), &b, tile, tile).unwrap();
        show("bstat online", &r.run.stats);
    }
}
