//! Figure 7 — reduced inactive thread executions by introducing DCSR.
//!
//! Runs the B-stationary kernel with tiled-CSR strips and with tiled-DCSR
//! tiles over the suite and prints the execution-count breakdown (Integer /
//! Control Flow / Inactive, as a share of all thread-slot executions).
//! The paper observes ~90 % reduction of inactive executions.

use nmt_bench::{
    banner, build_suite, experiment_k, experiment_scale, experiment_tile, mean, par_map_suite,
    print_table,
};
use nmt_formats::SparseMatrix;
use nmt_formats::{TiledCsr, TiledDcsr};
use nmt_kernels::{bstat_tiled_csr, bstat_tiled_dcsr_offline};
use nmt_matgen::random_dense;
use nmt_sim::{Gpu, InstrClass, WarpExecStats};

fn breakdown(w: &WarpExecStats) -> (f64, f64, f64) {
    let total = w.total_slots().max(1) as f64;
    (
        w.active_for(InstrClass::Integer) as f64 / total,
        w.active_for(InstrClass::ControlFlow) as f64 / total,
        w.inactive as f64 / total,
    )
}

fn main() {
    banner(
        "fig07_inactive",
        "Figure 7: inactive thread executions, tiled CSR vs tiled DCSR",
    );
    let suite = build_suite();
    let scale = experiment_scale();
    let tile = experiment_tile(scale);
    let k = experiment_k(scale);

    let results = par_map_suite(&suite, |desc, a| {
        let b = random_dense(a.shape().ncols, k, desc.seed ^ 0x7);
        let tcsr = TiledCsr::from_csr(a, tile).expect("tiling");
        let tdcsr = TiledDcsr::from_csr(a, tile, tile).expect("tiling");
        let mut g1 = Gpu::new(nmt_bench::experiment_gpu(experiment_scale())).expect("preset");
        let csr_run = bstat_tiled_csr(&mut g1, &tcsr, &b, tile).expect("kernel");
        let mut g2 = Gpu::new(nmt_bench::experiment_gpu(experiment_scale())).expect("preset");
        let dcsr_run = bstat_tiled_dcsr_offline(&mut g2, &tdcsr, &b).expect("kernel");
        (
            desc.name.clone(),
            csr_run.stats.warp_exec,
            dcsr_run.stats.warp_exec,
        )
    });

    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, wc, wd)| {
            let (ci, cc, cin) = breakdown(wc);
            let (di, dc, din) = breakdown(wd);
            vec![
                name.clone(),
                format!("{:.1}/{:.1}/{:.1}", ci * 100.0, cc * 100.0, cin * 100.0),
                format!("{:.1}/{:.1}/{:.1}", di * 100.0, dc * 100.0, din * 100.0),
            ]
        })
        .collect();
    print_table(
        &[
            "matrix",
            "tiledCSR int/cf/inact %",
            "tiledDCSR int/cf/inact %",
        ],
        &rows,
    );

    let csr_inact: Vec<f64> = results.iter().map(|(_, w, _)| w.inactive as f64).collect();
    let dcsr_inact: Vec<f64> = results.iter().map(|(_, _, w)| w.inactive as f64).collect();
    let reduction = 1.0 - mean(&dcsr_inact) / mean(&csr_inact).max(1.0);
    let csr_frac = mean(
        &results
            .iter()
            .map(|(_, w, _)| w.inactive_fraction())
            .collect::<Vec<_>>(),
    );
    let dcsr_frac = mean(
        &results
            .iter()
            .map(|(_, _, w)| w.inactive_fraction())
            .collect::<Vec<_>>(),
    );
    println!();
    println!(
        "mean inactive share  : tiled CSR {:.1}%  ->  tiled DCSR {:.1}%",
        csr_frac * 100.0,
        dcsr_frac * 100.0
    );
    println!("inactive-slot count  : reduced {:.1}%", reduction * 100.0);
    println!(
        "paper                : \"We observe 90% reduction of the inactive thread execution\""
    );
}
