//! Figure 5 — histogram of non-zero-row density of vertical strips.
//!
//! Over all strips of all suite matrices: what fraction of rows in each
//! strip contain a non-zero? The paper observes the overwhelming majority
//! of strips fall in the 0–1 % bin ("99 % of rows in the strips are empty
//! on average") — the case for densifying.

use nmt_bench::{
    banner, build_suite, experiment_scale, experiment_tile, par_map_suite, print_table,
};
use nmt_formats::StripStats;

fn main() {
    banner(
        "fig05_strip_hist",
        "Figure 5: histogram of density of vertical strips of A",
    );
    let suite = build_suite();
    let tile = experiment_tile(experiment_scale());

    let per_matrix = par_map_suite(&suite, |_, a| {
        let stats = StripStats::compute(a, tile);
        (
            stats.figure5_histogram(),
            stats.mean_fraction,
            stats.num_strips,
        )
    });

    let mut bins = [0usize; 13];
    let mut total_strips = 0usize;
    let mut weighted_mean = 0.0f64;
    for (h, mean_frac, nstrips) in &per_matrix {
        for (b, c) in bins.iter_mut().zip(h) {
            *b += c;
        }
        total_strips += nstrips;
        weighted_mean += mean_frac * *nstrips as f64;
    }
    weighted_mean /= total_strips.max(1) as f64;

    let labels = StripStats::figure5_labels();
    let rows: Vec<Vec<String>> = labels
        .iter()
        .zip(&bins)
        .map(|(l, &c)| {
            vec![
                l.to_string(),
                format!("{c}"),
                format!("{:.1}%", 100.0 * c as f64 / total_strips.max(1) as f64),
            ]
        })
        .collect();
    print_table(&["% non-zero rows in strip", "strips", "share"], &rows);

    println!();
    println!("strips analyzed          : {total_strips} (width {tile})");
    println!("mean non-zero-row frac   : {:.2}%", weighted_mean * 100.0);
    println!(
        "first-bin dominance      : {:.1}% of strips have <1% non-zero rows",
        100.0 * bins[0] as f64 / total_strips.max(1) as f64
    );
    println!("paper                    : the 0-1% bin dominates; ~99% of strip rows are empty");
}
