//! §6.2 / Figure 18 — large-scale SpMM in a multi-GPU system.
//!
//! Plans the paper's 2M × 2M example: A (CSC) replicated per GPU, vertical
//! B/C strips streamed through device memory with transfer/compute
//! overlap, scaling from 1 to 16 GPUs.

use nmt::multi_gpu::{plan_streamed_spmm, LargeSpmmProblem, MultiGpuConfig};
use nmt_bench::{banner, print_table};

fn main() {
    banner(
        "sec62_multigpu",
        "Section 6.2: towards large-scale SpMM (multi-GPU streaming)",
    );

    let p = LargeSpmmProblem {
        n: 2_000_000,
        k: 2_000_000,
        nnz: 40_000_000,
    };
    println!(
        "problem: A {}x{} with {} nnz ({:.2} GB as CSC); dense B = C = {:.1} TB each",
        p.n,
        p.n,
        p.nnz,
        p.a_csc_bytes() as f64 / 1e9,
        p.dense_bytes() as f64 / 1e12
    );
    println!("paper: \"2M x 2M dense matrix is as large as 17 TB, and the entire");
    println!("matrix cannot fit in the GPU main memory\"");
    println!();

    let mut rows = Vec::new();
    for gpus in [1usize, 2, 4, 8, 16] {
        let sys = MultiGpuConfig::gv100_cluster(gpus);
        match plan_streamed_spmm(&p, &sys) {
            Ok(plan) => rows.push(vec![
                format!("{gpus}"),
                format!("{}", plan.cols_per_gpu),
                format!("{}", plan.chunks_per_gpu),
                format!("{:.1} GB", plan.stream_bytes_per_gpu as f64 / 1e9),
                format!("{:.1} s", plan.transfer_s),
                format!("{:.1} s", plan.compute_s),
                format!("{:.1} s", plan.overlapped_s),
                format!("{}", plan.compute_hides_transfer),
            ]),
            Err(e) => rows.push(vec![format!("{gpus}"), format!("error: {e}")]),
        }
    }
    print_table(
        &[
            "GPUs",
            "cols/GPU",
            "chunks",
            "streamed",
            "transfer",
            "compute",
            "overlapped",
            "compute-bound",
        ],
        &rows,
    );
    println!();
    println!("the CSC input (engine's baseline format) keeps the replicated A tiny,");
    println!("leaving device memory for B/C strips — \"the space efficient CSR/CSC");
    println!("format is beneficial in this context\" — and DCSR tiles are minted");
    println!("inside each GPU's FB partitions, so no tiled metadata crosses links.");
}
