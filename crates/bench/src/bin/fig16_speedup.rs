//! Figure 16 — speedup over cuSPARSE vs. the SSF heuristic; the paper's
//! headline result.
//!
//! Per matrix: the baseline (cuSPARSE stand-in), the offline untiled
//! CSR/DCSR C-stationary upper bound (orange dots), the online-tiled DCSR
//! B-stationary proposal (blue dots), and offline-tiled DCSR. Aggregates:
//!
//! * all-tiling (blind CSC + engine)         — paper: 1.63×
//! * offline tiled DCSR + SSF                — paper: 2.03× (optimistic)
//! * **hybrid: SSF picks C-stat / online B** — paper: 2.26×
//! * oracle (perfect classification)         — paper: 2.30×

use nmt_bench::{
    banner, build_suite, experiment_k, experiment_scale, experiment_tile, geomean, par_map_suite,
    print_table,
};
use nmt_formats::{Dcsr, SparseMatrix, TiledDcsr};
use nmt_kernels::{
    bstat_tiled_dcsr_offline, bstat_tiled_dcsr_online, csrmm_cusparse, csrmm_row_per_warp,
    dcsrmm_row_per_warp,
};
use nmt_matgen::random_dense;
use nmt_model::ssf::SsfProfile;
use nmt_model::{classify, learn_threshold, ssf::Choice};
use nmt_sim::Gpu;

struct Row {
    name: String,
    ssf: f64,
    sp_cstat: f64,
    sp_online: f64,
    sp_offline_tiled: f64,
}

fn main() {
    banner(
        "fig16_speedup",
        "Figure 16: speedup over cuSPARSE vs SSF (hybrid 2.26x)",
    );
    let suite = build_suite();
    let scale = experiment_scale();
    let tile = experiment_tile(scale);
    let k = experiment_k(scale);

    let results: Vec<Row> = par_map_suite(&suite, |desc, a| {
        let b = random_dense(a.shape().ncols, k, desc.seed ^ 0x16);
        let profile = SsfProfile::compute(a, tile);
        let gpu = || Gpu::new(nmt_bench::experiment_gpu(experiment_scale())).expect("preset");

        let base = csrmm_cusparse(&mut gpu(), a, &b)
            .expect("baseline")
            .stats
            .total_ns;
        let t_csr = csrmm_row_per_warp(&mut gpu(), a, &b)
            .expect("csr")
            .stats
            .total_ns;
        let t_dcsr = dcsrmm_row_per_warp(&mut gpu(), &Dcsr::from_csr(a), &b)
            .expect("dcsr")
            .stats
            .total_ns;
        // "We plot the better results from CSR and DCSR to show its
        // upperbound for each matrix" (orange dots).
        let t_cstat = t_csr.min(t_dcsr);
        let t_online = bstat_tiled_dcsr_online(&mut gpu(), &a.to_csc(), &b, tile, tile)
            .expect("online")
            .run
            .stats
            .total_ns;
        let tiled = TiledDcsr::from_csr(a, tile, tile).expect("tiling");
        let t_offline = bstat_tiled_dcsr_offline(&mut gpu(), &tiled, &b)
            .expect("offline")
            .stats
            .total_ns;
        Row {
            name: desc.name.clone(),
            ssf: profile.ssf,
            sp_cstat: base / t_cstat,
            sp_online: base / t_online,
            sp_offline_tiled: base / t_offline,
        }
    });

    let mut table: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{:.3e}", r.ssf),
                format!("{:.2}x", r.sp_cstat),
                format!("{:.2}x", r.sp_online),
                format!("{:.2}x", r.sp_offline_tiled),
            ]
        })
        .collect();
    table.sort_by(|a, b| {
        let av: f64 = a[1].parse().unwrap_or(0.0);
        let bv: f64 = b[1].parse().unwrap_or(0.0);
        av.partial_cmp(&bv).expect("finite SSF")
    });
    print_table(
        &[
            "matrix",
            "SSF",
            "C-stat (CSR/DCSR)",
            "online tiled (B)",
            "offline tiled (B)",
        ],
        &table,
    );

    // Learn the threshold from the measured ratios (t_C/t_B = sp_online/sp_cstat).
    let samples: Vec<(f64, f64)> = results
        .iter()
        .map(|r| (r.ssf, r.sp_online / r.sp_cstat))
        .collect();
    let th = learn_threshold(&samples);

    let hybrid: Vec<f64> = results
        .iter()
        .map(|r| match classify(r.ssf, &th) {
            Choice::BStationary => r.sp_online,
            Choice::CStationary => r.sp_cstat,
        })
        .collect();
    let hybrid_offline: Vec<f64> = results
        .iter()
        .map(|r| match classify(r.ssf, &th) {
            Choice::BStationary => r.sp_offline_tiled,
            Choice::CStationary => r.sp_cstat,
        })
        .collect();
    let all_tiling: Vec<f64> = results.iter().map(|r| r.sp_online).collect();
    let oracle: Vec<f64> = results
        .iter()
        .map(|r| r.sp_cstat.max(r.sp_online))
        .collect();
    let improved = hybrid.iter().filter(|&&s| s > 1.0).count() as f64 / hybrid.len().max(1) as f64;

    println!();
    println!(
        "learned SSF_th                         : {:.3e} (accuracy {:.1}%)",
        th.threshold,
        th.accuracy * 100.0
    );
    println!(
        "all-tiling (blind CSC+engine)  geomean : {:.2}x   (paper 1.63x)",
        geomean(&all_tiling)
    );
    println!(
        "offline tiled DCSR + SSF       geomean : {:.2}x   (paper 2.03x)",
        geomean(&hybrid_offline)
    );
    println!(
        "HYBRID (SSF: C-stat | online)  geomean : {:.2}x   (paper 2.26x)",
        geomean(&hybrid)
    );
    println!(
        "oracle (perfect classifier)    geomean : {:.2}x   (paper 2.30x)",
        geomean(&oracle)
    );
    println!(
        "matrices improved by the scheme        : {:.0}%  (paper ~95%)",
        improved * 100.0
    );
}
