//! Ablation: tile size. The paper fixes 64×64 B tiles "to fully utilize
//! the shared memory of an SM" (§5.1) — and the engine's width is fixed at
//! 64 lanes to match one HBM2 pseudo-channel. This sweep shows how the
//! online B-stationary kernel responds to the tile edge: small tiles
//! multiply per-tile overheads (requests, rowptr windows, atomic rounds);
//! oversized tiles exhaust shared memory.

use nmt_bench::{banner, experiment_gpu, experiment_scale, geomean, print_table};
use nmt_formats::SparseMatrix;
use nmt_kernels::{bstat_tiled_dcsr_online, csrmm_cusparse};
use nmt_matgen::{generators, random_dense, GenKind, MatrixDesc};
use nmt_sim::Gpu;

fn main() {
    banner(
        "ablate_tile_size",
        "design choice: 64x64 tiles (section 5.1)",
    );
    let scale = experiment_scale();
    let k = 32;
    let matrices: Vec<_> = [
        (
            "rowburst",
            GenKind::RowBursts {
                density: 0.01,
                burst_len: 16,
            },
        ),
        (
            "blockdiag",
            GenKind::BlockDiag {
                block: 32,
                fill: 0.3,
                background: 1e-4,
            },
        ),
        (
            "zipfboth",
            GenKind::ZipfBoth {
                density: 0.01,
                exponent: 1.1,
            },
        ),
    ]
    .into_iter()
    .map(|(name, kind)| {
        (
            name,
            generators::generate(&MatrixDesc::new(name, 1024, kind, 3)),
        )
    })
    .collect();

    let mut rows = Vec::new();
    for &tile in &[8usize, 16, 32, 64] {
        let mut speeds = Vec::new();
        let mut cells = vec![format!("{tile}x{tile}")];
        for (_, a) in &matrices {
            let b = random_dense(a.shape().ncols, k, 5);
            let mut g1 = Gpu::new(experiment_gpu(scale)).expect("preset");
            let base = csrmm_cusparse(&mut g1, a, &b)
                .expect("baseline")
                .stats
                .total_ns;
            let mut g2 = Gpu::new(experiment_gpu(scale)).expect("preset");
            let online = bstat_tiled_dcsr_online(&mut g2, &a.to_csc(), &b, tile, tile)
                .expect("online kernel");
            let sp = base / online.run.stats.total_ns;
            speeds.push(sp);
            cells.push(format!("{sp:.2}x"));
        }
        cells.push(format!("{:.2}x", geomean(&speeds)));
        rows.push(cells);
    }
    let mut headers = vec!["tile"];
    headers.extend(matrices.iter().map(|(n, _)| *n));
    headers.push("geomean");
    print_table(&headers, &rows);
    println!();
    println!("expected: speedup improves with tile edge up to the shared-memory");
    println!("sweet spot; the engine is built 64 wide because one HBM2 pseudo");
    println!("channel delivers one 8-byte element per 0.588 ns — a 64-lane");
    println!("frontier keeps the comparator fed at exactly that rate.");
}
