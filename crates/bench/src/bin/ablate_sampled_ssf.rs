//! Ablation / future work: sampled SSF profiling. §3.1.4: "We believe
//! these parameters can be obtained through sampling to minimize profiling
//! time, but we leave it for future work." This experiment implements that
//! future work: estimate every SSF term from a row sample and measure how
//! classification agreement with the full scan degrades with sample size.

use nmt::DEFAULT_SSF_THRESHOLD;
use nmt_bench::{
    banner, build_suite, experiment_scale, experiment_tile, par_map_suite, print_table,
};
use nmt_model::classify;
use nmt_model::ssf::SsfProfile;

fn main() {
    banner(
        "ablate_sampled_ssf",
        "future work (§3.1.4): SSF profiling by row sampling",
    );
    let suite = build_suite();
    let tile = experiment_tile(experiment_scale());

    let full: Vec<(String, SsfProfile)> = par_map_suite(&suite, |d, a| {
        (d.name.clone(), SsfProfile::compute(a, tile))
    });

    let mut rows = Vec::new();
    for &sample in &[16usize, 64, 256, 1024] {
        let sampled = par_map_suite(&suite, |d, a| {
            SsfProfile::compute_sampled(a, tile, sample, d.seed ^ 0x5A)
        });
        let mut agree = 0usize;
        let mut log_err_sum = 0.0f64;
        for ((_, f), s) in full.iter().zip(&sampled) {
            let cf = classify(f.ssf, &DEFAULT_SSF_THRESHOLD);
            let cs = classify(s.ssf, &DEFAULT_SSF_THRESHOLD);
            if cf == cs {
                agree += 1;
            }
            log_err_sum += (s.ssf.max(1e-12) / f.ssf.max(1e-12)).ln().abs();
        }
        let n = full.len();
        // Work reduction: sampled profiling touches `sample` rows instead
        // of all rows.
        let mean_rows: f64 = suite
            .iter()
            .map(|(_, m)| {
                use nmt_formats::SparseMatrix;
                m.shape().nrows as f64
            })
            .sum::<f64>()
            / n as f64;
        rows.push(vec![
            format!("{sample}"),
            format!("{:.1}%", 100.0 * sample as f64 / mean_rows),
            format!("{:.1}%", 100.0 * agree as f64 / n as f64),
            format!("{:.2}", (log_err_sum / n as f64).exp()),
        ]);
    }
    print_table(
        &[
            "rows sampled",
            "% of matrix (mean)",
            "classification agreement",
            "geo |SSF ratio|",
        ],
        &rows,
    );
    println!();
    println!("expected: agreement approaches 100% well before the sample covers");
    println!("the matrix, validating the paper's conjecture that profiling can");
    println!("be amortized by sampling. Disagreements cluster near SSF_th, where");
    println!("both algorithms perform comparably anyway (Fig. 4's gray zone).");
}
