//! Ablation: permutation robustness of the SSF heuristic.
//!
//! SSF claims to measure *structure*, so hold the non-zero population
//! fixed and perturb only the structure: shuffling rows preserves row
//! segments (SSF and the B/C-stationary ranking should survive), while
//! shuffling columns shatters them (SSF must collapse and the performance
//! ranking must flip with it). This ties the heuristic's input directly
//! to the mechanism that makes B-stationary win.

use nmt_bench::{banner, experiment_gpu, experiment_scale, print_table};
use nmt_formats::{Csr, Dcsr, SparseMatrix};
use nmt_kernels::{bstat_tiled_dcsr_online, dcsrmm_row_per_warp};
use nmt_matgen::{generators, perturb, random_dense, GenKind, MatrixDesc};
use nmt_model::ssf::SsfProfile;
use nmt_sim::Gpu;

fn profile_and_time(a: &Csr, tile: usize, k: usize) -> (f64, f64, f64) {
    let scale = experiment_scale();
    let p = SsfProfile::compute(a, tile);
    let b = random_dense(a.shape().ncols, k, 77);
    let mut g1 = Gpu::new(experiment_gpu(scale)).expect("preset");
    let tc = dcsrmm_row_per_warp(&mut g1, &Dcsr::from_csr(a), &b)
        .expect("cstat")
        .stats
        .total_ns;
    let mut g2 = Gpu::new(experiment_gpu(scale)).expect("preset");
    let tb = bstat_tiled_dcsr_online(&mut g2, &a.to_csc(), &b, tile, tile)
        .expect("online")
        .run
        .stats
        .total_ns;
    (p.ssf, p.h_norm, tc / tb)
}

fn main() {
    banner(
        "ablate_permutation",
        "robustness: SSF under structural perturbation",
    );
    let tile = 16;
    let k = 32;
    let base = generators::generate(&MatrixDesc::new(
        "rowburst",
        1024,
        GenKind::RowBursts {
            density: 0.01,
            burst_len: 16,
        },
        41,
    ));

    let variants: Vec<(&str, Csr)> = vec![
        ("original (clustered)", base.clone()),
        ("rows shuffled", perturb::shuffle_rows(&base, 1)),
        ("cols shuffled", perturb::shuffle_cols(&base, 2)),
        ("fully scattered", perturb::scatter(&base, 3)),
        ("pruned to 50%", perturb::prune_magnitude(&base, 0.5)),
        ("plus 0.5% noise", perturb::add_background(&base, 0.005, 4)),
    ];

    let mut rows = Vec::new();
    for (name, m) in &variants {
        let (ssf, h, ratio) = profile_and_time(m, tile, k);
        rows.push(vec![
            name.to_string(),
            format!("{}", m.nnz()),
            format!("{h:.3}"),
            format!("{ssf:.3e}"),
            format!("{ratio:.2}"),
            if ratio > 1.0 { "B-stat" } else { "C-stat" }.into(),
        ]);
    }
    print_table(
        &["variant", "nnz", "H_norm", "SSF", "t_C/t_B", "winner"],
        &rows,
    );
    println!();
    println!("expected: row shuffle leaves SSF and the winner unchanged; column");
    println!("shuffle (same nnz!) collapses SSF by an order of magnitude and the");
    println!("winner flips to C-stationary — the heuristic tracks exactly the");
    println!("structure that the engine's tiling exploits.");
}
