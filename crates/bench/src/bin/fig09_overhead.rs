//! Figure 9 — storage overhead of tiled DCSR over (untiled, original) CSR.
//!
//! The paper finds tiled DCSR costs 1.3–1.4× CSR on average (2× max),
//! excepting tall-skinny cases — the overhead that motivates *online*
//! conversion instead of storing tiles in DRAM.

use nmt_bench::{
    banner, build_suite, experiment_scale, experiment_tile, mean, par_map_suite, print_table,
};
use nmt_formats::{size_ratio, StorageSize, TiledDcsr};

fn main() {
    banner(
        "fig09_overhead",
        "Figure 9: storage overhead of tiled DCSR vs untiled CSR",
    );
    let suite = build_suite();
    let tile = experiment_tile(experiment_scale());

    let results = par_map_suite(&suite, |desc, a| {
        let tdcsr = TiledDcsr::from_csr(a, tile, tile).expect("tiling");
        let meta = size_ratio(tdcsr.metadata_bytes(), a.metadata_bytes());
        let total = size_ratio(tdcsr.storage_bytes(), a.storage_bytes());
        (desc.name.clone(), meta, total)
    });

    let mut rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, meta, total)| {
            vec![name.clone(), format!("{meta:.2}x"), format!("{total:.2}x")]
        })
        .collect();
    rows.sort_by(|a, b| {
        let av: f64 = a[2].trim_end_matches('x').parse().unwrap_or(0.0);
        let bv: f64 = b[2].trim_end_matches('x').parse().unwrap_or(0.0);
        bv.partial_cmp(&av).expect("finite ratios")
    });
    print_table(&["matrix", "metadata ratio", "metadata+data ratio"], &rows);

    let totals: Vec<f64> = results.iter().map(|r| r.2).collect();
    println!();
    println!("mean tiledDCSR/CSR (meta+data): {:.2}x", mean(&totals));
    println!(
        "max                           : {:.2}x",
        totals.iter().copied().fold(0.0, f64::max)
    );
    println!("paper: \"tiled DCSR has 1.3-1.4X (2X at the maximum) storage");
    println!("overhead for tiling\" — the cost the online engine avoids.");
}
