//! §2 — the bytes/FLOP analytical model establishing SpMM as
//! bandwidth-bound, checked against the simulator's measured traffic.

use nmt_bench::{banner, print_table};
use nmt_kernels::csrmm_row_per_warp;
use nmt_matgen::{generators, random_dense, GenKind, MatrixDesc};
use nmt_model::bytes_per_flop;
use nmt_sim::{Gpu, GpuConfig};

fn main() {
    banner("sec2_bytes_per_flop", "Section 2: byte/FLOP model of SpMM");

    // The paper's quoted inputs: N = 20 K, 0.1 % density.
    let n = 20_000usize;
    let nnz = (0.001 * n as f64 * n as f64) as usize;
    let model = bytes_per_flop(n, nnz);
    let gv100 = GpuConfig::gv100();
    let machine_balance = gv100.total_bandwidth_gbps() * 1e9 / gv100.peak_flops();
    println!("paper-quoted value            : 5.1 bytes/FLOP");
    println!("printed formula at N=20k,0.1% : {model:.3} bytes/FLOP");
    println!("GV100 machine balance         : {machine_balance:.3} bytes/FLOP");
    println!(
        "memory-bound either way       : {} (model > balance)",
        model > machine_balance
    );
    println!();

    // Sweep the model and compare to measured DRAM traffic per FLOP.
    let mut rows = Vec::new();
    for &(dim, density) in &[
        (1024usize, 0.01f64),
        (2048, 0.003),
        (2048, 0.01),
        (4096, 0.001),
    ] {
        let desc = MatrixDesc::new("m", dim, GenKind::Uniform { density }, 7);
        let a = generators::generate(&desc);
        // K = dim would match the square-B model exactly but is too slow;
        // measure at K = 64 and scale the dense term linearly.
        let k = 64;
        let b = random_dense(dim, k, 11);
        let mut gpu = Gpu::new(gv100.clone()).expect("valid preset");
        let run = csrmm_row_per_warp(&mut gpu, &a, &b).expect("kernel runs");
        let measured = run.stats.bytes_per_flop();
        use nmt_formats::SparseMatrix;
        let model_k = {
            // Model with an n x k dense operand instead of n x n.
            let nnzf = a.nnz() as f64;
            let bytes = 8.0 * nnzf + 4.0 * (dim as f64 + 1.0) + 8.0 * dim as f64 * k as f64;
            bytes / (2.0 * nnzf * k as f64)
        };
        rows.push(vec![
            format!("{dim}"),
            format!("{density}"),
            format!("{}", a.nnz()),
            format!("{model_k:.3}"),
            format!("{measured:.3}"),
        ]);
    }
    print_table(
        &["n", "density", "nnz", "model B/F (K=64)", "simulated B/F"],
        &rows,
    );
    println!();
    println!("note: simulated traffic passes through a 6 MB L2, so measured");
    println!("bytes/FLOP sits at or below the compulsory-traffic model.");
}
