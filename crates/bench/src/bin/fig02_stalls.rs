//! Figure 2 — stall reasons of SpMM.
//!
//! The paper's NVPROF profile attributes 75.1 % of baseline-SpMM stall
//! time to Memory, 23.3 % to the SM and 1.5 % to Other. This binary runs
//! the cuSPARSE-baseline stand-in over the suite and prints the simulator's
//! stall attribution.

use nmt_bench::{
    banner, build_suite, experiment_k, experiment_scale, mean, par_map_suite, print_table,
};
use nmt_formats::SparseMatrix;
use nmt_kernels::csrmm_cusparse;
use nmt_matgen::random_dense;
use nmt_sim::Gpu;

fn main() {
    banner("fig02_stalls", "Figure 2: stall reasons of SpMM (NVPROF)");
    let suite = build_suite();
    let k = experiment_k(experiment_scale());

    let rows = par_map_suite(&suite, |desc, a| {
        let b = random_dense(a.shape().ncols, k, desc.seed ^ 0xB);
        let mut gpu =
            Gpu::new(nmt_bench::experiment_gpu(experiment_scale())).expect("valid preset");
        let run = csrmm_cusparse(&mut gpu, a, &b).expect("kernel runs");
        let s = run.stats.stall_breakdown();
        (desc.name.clone(), s.memory, s.sm, s.other)
    });

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, m, s, o)| {
            vec![
                name.clone(),
                format!("{:.1}%", m * 100.0),
                format!("{:.1}%", s * 100.0),
                format!("{:.1}%", o * 100.0),
            ]
        })
        .collect();
    print_table(&["matrix", "memory", "sm", "other"], &table);

    let mem = mean(&rows.iter().map(|r| r.1).collect::<Vec<_>>()) * 100.0;
    let sm = mean(&rows.iter().map(|r| r.2).collect::<Vec<_>>()) * 100.0;
    let other = mean(&rows.iter().map(|r| r.3).collect::<Vec<_>>()) * 100.0;
    println!();
    println!("suite average      : Memory {mem:.1}%  SM {sm:.1}%  Other {other:.1}%");
    println!("paper (Figure 2)   : Memory 75.1%  SM 23.3%  Other 1.5%");
    println!("shape check        : memory dominates = {}", mem > 50.0);
}
