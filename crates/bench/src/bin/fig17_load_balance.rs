//! §6.1 / Figure 17 — FB-partition data layout and load balancing.
//!
//! Two parts: (a) partition-load imbalance of the naive strip-per-partition
//! layout vs. the rotated tile layout, over suite matrices; (b) the
//! partition-switch overhead sweep — execution overhead when an SM hands
//! off to the next partition every `x` non-zero tile rows. The paper finds
//! overheads negligible for `x ≥ 64`.

use nmt_bench::{
    banner, build_suite, experiment_scale, experiment_tile, mean, par_map_suite, print_table,
};
use nmt_engine::{imbalance, partition_loads, Layout, SwitchCost};
use nmt_formats::TiledDcsr;

fn main() {
    banner(
        "fig17_load_balance",
        "Figure 17 / section 6.1: FB partition load balance",
    );
    let suite = build_suite();
    let tile = experiment_tile(experiment_scale());
    let partitions = 64; // GV100 pseudo-channels

    // (a) layout imbalance over the suite.
    let imb = par_map_suite(&suite, |desc, a| {
        let tiled = TiledDcsr::from_csr(a, tile, tile).expect("tiling");
        let tile_bytes: Vec<Vec<u64>> = tiled
            .strips()
            .iter()
            .map(|s| {
                s.iter()
                    .map(|t| (t.metadata_bytes() + t.data_bytes()) as u64)
                    .collect()
            })
            .collect();
        let naive = imbalance(
            &partition_loads(Layout::StripPerPartition, &tile_bytes, partitions)
                .expect("positive partition count"),
        );
        let rot = imbalance(
            &partition_loads(Layout::TileRotated, &tile_bytes, partitions)
                .expect("positive partition count"),
        );
        (desc.name.clone(), naive, rot)
    });
    let rows: Vec<Vec<String>> = imb
        .iter()
        .map(|(n, a, b)| vec![n.clone(), format!("{a:.2}"), format!("{b:.2}")])
        .collect();
    print_table(&["matrix", "naive max/mean", "rotated max/mean"], &rows);
    println!();
    println!(
        "mean imbalance: naive {:.2} -> rotated {:.2} (1.0 = perfectly balanced)",
        mean(&imb.iter().map(|r| r.1).collect::<Vec<_>>()),
        mean(&imb.iter().map(|r| r.2).collect::<Vec<_>>())
    );

    // (b) switch-granularity sweep: relative overhead of the hand-off
    // traffic (next_fb_ptr + col_idx_frontier) per x non-zero tile rows.
    println!();
    println!("--- partition-switch overhead sweep (64-lane engine) ---");
    let cost = SwitchCost { lanes: 64 };
    // Average useful bytes per non-zero tile row, measured from the suite.
    let per_row: Vec<f64> = par_map_suite(&suite, |_, a| {
        let tiled = TiledDcsr::from_csr(a, tile, tile).expect("tiling");
        let rows = tiled.total_row_segments().max(1);
        use nmt_formats::StorageSize;
        tiled.storage_bytes() as f64 / rows as f64
    });
    let avg_row_bytes = mean(&per_row);
    let mut rows = Vec::new();
    for &x in &[1usize, 4, 16, 64, 256, 1024] {
        let ov = cost
            .overhead_fraction(x, avg_row_bytes)
            .expect("positive switch granularity");
        rows.push(vec![
            format!("{x}"),
            format!("{:.2}%", ov * 100.0),
            format!("{:.3}", 1.0 + ov),
        ]);
    }
    print_table(
        &["rows / switch", "added traffic", "normalized exec time"],
        &rows,
    );
    println!();
    println!("avg useful bytes per non-zero tile row: {avg_row_bytes:.1}");
    println!("paper: overhead negligible if >= 64 non-zero tile rows per FB partition,");
    println!("so splitting each strip across the partitions once is enough.");
}
