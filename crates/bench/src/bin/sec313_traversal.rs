//! §3.1.3 — tile traversal strategies. "Because of the difference in the
//! memory footprint of A and C, the column-major traversal usually gives
//! better performance": traversing B tiles column-major lets partial sums
//! of one C column slice accumulate in the LLC before moving on, while
//! row-major touches the entire C once per strip.

use nmt_bench::{banner, experiment_gpu, experiment_scale, mean, print_table};
use nmt_formats::{SparseMatrix, TiledDcsr};
use nmt_kernels::{bstat_tiled_dcsr_traversal, Traversal};
use nmt_matgen::{generators, random_dense, GenKind, MatrixDesc};
use nmt_sim::{Gpu, TrafficClass};

fn main() {
    banner(
        "sec313_traversal",
        "section 3.1.3: row- vs column-major B-tile traversal",
    );
    let scale = experiment_scale();
    let tile = 16;
    let k = 64; // 4 output-column tiles -> a real traversal grid
    let matrices: Vec<_> = [
        ("uniform", GenKind::Uniform { density: 0.02 }),
        (
            "rowburst",
            GenKind::RowBursts {
                density: 0.02,
                burst_len: 16,
            },
        ),
        (
            "zipfboth",
            GenKind::ZipfBoth {
                density: 0.02,
                exponent: 1.1,
            },
        ),
        (
            "blockdiag",
            GenKind::BlockDiag {
                block: 32,
                fill: 0.3,
                background: 1e-4,
            },
        ),
    ]
    .into_iter()
    .map(|(name, kind)| {
        (
            name,
            generators::generate(&MatrixDesc::new(name, 1024, kind, 31)),
        )
    })
    .collect();

    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for (name, a) in &matrices {
        let tiled = TiledDcsr::from_csr(a, tile, tile).expect("tiling");
        let b = random_dense(a.shape().ncols, k, 33);
        let mut g1 = Gpu::new(experiment_gpu(scale)).expect("preset");
        let row = bstat_tiled_dcsr_traversal(&mut g1, &tiled, &b, Traversal::RowMajor)
            .expect("row-major");
        let mut g2 = Gpu::new(experiment_gpu(scale)).expect("preset");
        let col = bstat_tiled_dcsr_traversal(&mut g2, &tiled, &b, Traversal::ColumnMajor)
            .expect("column-major");
        let ratio = row.stats.total_ns / col.stats.total_ns;
        ratios.push(ratio);
        rows.push(vec![
            name.to_string(),
            format!("{}", row.stats.dram_traffic.get(TrafficClass::MatA) / 1024),
            format!("{}", col.stats.dram_traffic.get(TrafficClass::MatA) / 1024),
            format!("{}", row.stats.dram_traffic.get(TrafficClass::MatC) / 1024),
            format!("{}", col.stats.dram_traffic.get(TrafficClass::MatC) / 1024),
            format!("{:.0}", row.stats.total_ns),
            format!("{:.0}", col.stats.total_ns),
            format!("{ratio:.2}x"),
        ]);
    }
    print_table(
        &[
            "matrix",
            "rowmaj A KB",
            "colmaj A KB",
            "rowmaj C KB",
            "colmaj C KB",
            "t_rowmaj ns",
            "t_colmaj ns",
            "row/col",
        ],
        &rows,
    );
    println!();
    println!(
        "mean row-major/column-major time ratio: {:.2}x",
        mean(&ratios)
    );
    println!("the trade-off of §3.1.3, both sides: row-major \"can possibly capture");
    println!("the locality of A in LLC\" (lower row-major A traffic above), but");
    println!("\"touching entire C multiple times is rather expensive\" (lower");
    println!("column-major C traffic for scatter-heavy matrices). Column-major");
    println!("wins where C dominates (uniform/zipf); with tiny touched-C and");
    println!("re-read A (clustered), A locality flips the result — the paper's");
    println!("\"usually\" is a statement about SuiteSparse's balance, where C is");
    println!("n x n and always dwarfs A.");
}
