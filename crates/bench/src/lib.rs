//! Shared infrastructure for the experiment binaries (`src/bin/`), one per
//! paper table/figure. See DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results.

use nmt_formats::Csr;
use nmt_matgen::{MatrixDesc, SuiteScale, SuiteSpec};
use rayon::prelude::*;

pub mod diff;
pub mod harness;
pub mod history;
pub mod ledger;
pub mod progress;
pub mod serve_rows;

pub use diff::{diff_ledgers, DiffOptions, DiffReport};
pub use harness::{median, summarize, BenchConfig, BenchStats};
pub use history::{
    append_history, change_point, load_history, render_history, scan_history, HistoryRecord,
};
pub use ledger::{
    ledger_filename, scale_label, sweep_ledger, sweep_ledger_faulted, sweep_ledger_instrumented,
    CorpusSummary, ErrorRow, GateTolerance, LatencyPercentiles, Ledger, LedgerEvent, LedgerRow,
    MatrixPerf, PerfSection, PerfTolerance, PhasePerf, LEDGER_SCHEMA_VERSION,
};
pub use progress::ProgressReporter;
pub use serve_rows::{
    append_serve_history, load_serve_history, render_serve_history, ServeRunRow,
};

/// The seed shared by every experiment so figures are reproducible.
pub const EXPERIMENT_SEED: u64 = 0x5C19;

/// Parse a scale name (`small` / `medium` / `paper`), rejecting anything
/// else so a typo cannot silently demote a paper-scale run.
pub fn parse_scale(name: &str) -> Result<SuiteScale, String> {
    match name {
        "small" => Ok(SuiteScale::Small),
        "medium" => Ok(SuiteScale::Medium),
        "paper" => Ok(SuiteScale::Paper),
        other => Err(format!(
            "unrecognized scale '{other}' (expected small|medium|paper)"
        )),
    }
}

/// Resolve the scale from an optional `NMT_SCALE`-style value: unset means
/// the fast default, but a *set-and-wrong* value is an error.
pub fn scale_from_env(value: Option<&str>) -> Result<SuiteScale, String> {
    match value {
        None => Ok(SuiteScale::Small),
        Some(v) => parse_scale(v),
    }
}

/// Experiment scale, overridable with `NMT_SCALE=small|medium|paper` so CI
/// can run the fast variant while full reproductions use the paper's
/// dimension filter. An unrecognized value aborts rather than silently
/// falling back to Small — a mis-spelled `NMT_SCALE=papr` would otherwise
/// publish small-scale numbers as a paper run.
// nmt-lint: sanitize(determinism-flow) — NMT_SCALE is an explicit
//   configuration input: the chosen scale is validated, recorded in every
//   artifact header, and identical runs use identical values, so it does
//   not make outputs nondeterministic.
pub fn experiment_scale() -> SuiteScale {
    let value = std::env::var("NMT_SCALE").ok();
    match scale_from_env(value.as_deref()) {
        Ok(scale) => scale,
        Err(e) => {
            eprintln!("error: NMT_SCALE: {e}");
            std::process::exit(2);
        }
    }
}

/// Tile edge used by the experiments: the paper's 64 at paper scale,
/// scaled down with the matrices otherwise so tiles stay meaningful.
pub fn experiment_tile(scale: SuiteScale) -> usize {
    match scale {
        SuiteScale::Small => 16,
        SuiteScale::Medium => 32,
        SuiteScale::Paper => 64,
    }
}

/// Number of dense vectors (columns of B) used by the experiments.
///
/// The paper multiplies by an `n × n` dense B, which a functional
/// simulation cannot afford; K is fixed per scale and the GPU's L2 is
/// scaled in [`experiment_gpu`] so the B-footprint/L2 ratio stays in the
/// paper's regime (B and C many times larger than the cache).
pub fn experiment_k(scale: SuiteScale) -> usize {
    match scale {
        SuiteScale::Small => 64,
        SuiteScale::Medium => 128,
        SuiteScale::Paper => 256,
    }
}

/// The simulated GPU the experiments run on: a GV100 with its L2 scaled to
/// the experiment's dense-operand footprint (the paper's B/C are up to
/// 7.7 GB against a 6 MB L2 — a ratio of ~1300; a full-size L2 would
/// instead swallow our scaled-down B entirely and hide every locality
/// effect the paper measures). Launch overhead is scaled likewise.
pub fn experiment_gpu(scale: SuiteScale) -> nmt_sim::GpuConfig {
    let mut gpu = nmt_sim::GpuConfig::gv100();
    match scale {
        SuiteScale::Small => {
            // B is 128-256 KB at this scale; the L2 sits just below it so
            // streaming reuse survives but full residency does not.
            gpu.l2_bytes = 128 * 1024;
            gpu.kernel_overhead_ns = 200.0;
        }
        SuiteScale::Medium => {
            // B is 1-2 MB at this scale.
            gpu.l2_bytes = 256 * 1024;
            gpu.kernel_overhead_ns = 1_000.0;
        }
        SuiteScale::Paper => {
            gpu.kernel_overhead_ns = 5_000.0;
        }
    }
    // nmt-lint: allow(panic) — the preset only rescales cache/overhead fields, which stay valid
    gpu.validate().expect("scaled GV100 remains valid");
    gpu
}

/// Build the experiment suite at the ambient scale.
pub fn build_suite() -> Vec<(MatrixDesc, Csr)> {
    SuiteSpec::new(experiment_scale(), EXPERIMENT_SEED).build()
}

/// Map the suite in parallel, preserving order.
pub fn par_map_suite<T: Send>(
    suite: &[(MatrixDesc, Csr)],
    f: impl Fn(&MatrixDesc, &Csr) -> T + Sync,
) -> Vec<T> {
    suite.par_iter().map(|(d, m)| f(d, m)).collect()
}

/// Print an aligned text table: a header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        println!("{s}");
    };
    line(&headers.iter().map(std::string::ToString::to_string).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Geometric mean of strictly positive values (0 when empty) — the right
/// aggregate for speedup ratios.
pub fn geomean(xs: &[f64]) -> f64 {
    let positive: Vec<f64> = xs.iter().copied().filter(|&x| x > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    (positive.iter().map(|x| x.ln()).sum::<f64>() / positive.len() as f64).exp()
}

/// Arithmetic mean (0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Standard header every experiment binary prints.
pub fn banner(experiment: &str, paper_artifact: &str) {
    println!("==============================================================");
    println!("{experiment}");
    println!("reproduces: {paper_artifact}");
    println!(
        "scale: {:?} (set NMT_SCALE=small|medium|paper)",
        experiment_scale()
    );
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!(
            (geomean(&[1.0, 0.0, 4.0]) - 2.0).abs() < 1e-12,
            "zeros excluded"
        );
    }

    #[test]
    fn mean_basics() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn scale_parsing_defaults_small() {
        // Without the env var the suite is the fast one.
        if std::env::var("NMT_SCALE").is_err() {
            assert_eq!(experiment_scale(), SuiteScale::Small);
        }
        assert_eq!(experiment_tile(SuiteScale::Paper), 64);
        assert_eq!(experiment_k(SuiteScale::Small), 64);
    }

    #[test]
    fn scale_parsing_accepts_known_names() {
        assert_eq!(parse_scale("small"), Ok(SuiteScale::Small));
        assert_eq!(parse_scale("medium"), Ok(SuiteScale::Medium));
        assert_eq!(parse_scale("paper"), Ok(SuiteScale::Paper));
        assert_eq!(scale_from_env(None), Ok(SuiteScale::Small));
        assert_eq!(scale_from_env(Some("paper")), Ok(SuiteScale::Paper));
    }

    #[test]
    fn scale_parsing_rejects_unknown_names() {
        // The old behavior silently fell back to Small; now a set-but-wrong
        // value is an error the caller must surface.
        for bad in ["papr", "SMALL", "large", ""] {
            let err = parse_scale(bad).expect_err("must reject");
            assert!(err.contains(bad), "error should echo the bad value");
            assert!(err.contains("small|medium|paper"));
            assert!(scale_from_env(Some(bad)).is_err());
        }
    }

    #[test]
    fn suite_builds_nonempty() {
        let suite = SuiteSpec::quick(EXPERIMENT_SEED).build();
        assert!(!suite.is_empty());
        let names = par_map_suite(&suite, |d, _| d.name.clone());
        assert_eq!(names.len(), suite.len());
    }
}
