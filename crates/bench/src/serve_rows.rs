//! Serve-run timeline: one compact JSONL row per `nmt-cli serve` replay,
//! alongside the perf history the bench suite keeps.
//!
//! The serve ledger itself is a large, gate-compared artifact; this row
//! is the small cross-run summary CI appends so cache behaviour trends
//! (hit ratio, hit-vs-miss latency gap, rejection pressure) are
//! trackable over time with the same JSONL discipline as
//! [`history`](crate::history): append-ordinal ordering, commit id from
//! the caller, torn lines skipped on load, no wall-clock timestamps.
//!
//! The fields are plain numbers copied out of the serve ledger by the
//! CLI — this module deliberately does not depend on the serve crate,
//! mirroring how [`HistoryRecord`](crate::history::HistoryRecord)
//! flattens the bench ledger rather than embedding it.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// One serve replay's row in the serve history file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeRunRow {
    /// Append ordinal within the file (0-based; assigned by
    /// [`append_serve_history`]).
    pub run: u64,
    /// Commit id the run was built from (`unknown` outside CI).
    pub commit: String,
    /// Requests in the replayed trace.
    pub requests: u64,
    /// Requests admitted and served.
    pub admitted: u64,
    /// Queue-full + malformed rejections.
    pub rejected: u64,
    /// Distinct plans computed (cold responses).
    pub unique_plans: u64,
    /// Responses served from a cached plan (canonical labelling).
    pub cached_responses: u64,
    /// Observed single-flight cache hits (0 without `--stats`).
    pub cache_hits: u64,
    /// Observed cache evictions (0 without `--stats`).
    pub cache_evictions: u64,
    /// Hit-path median plan-acquisition latency, ns (0 without `--stats`).
    pub hit_p50_ns: u64,
    /// Miss-path median plan-acquisition latency, ns (0 without `--stats`).
    pub miss_p50_ns: u64,
}

impl ServeRunRow {
    /// Fraction of served responses answered from cache.
    pub fn cached_frac(&self) -> f64 {
        if self.admitted == 0 {
            0.0
        } else {
            self.cached_responses as f64 / self.admitted as f64
        }
    }
}

/// Append one row, assigning its `run` ordinal. Same contract as
/// [`append_history`](crate::history::append_history): parents are
/// created, the ordinal is the current row count.
pub fn append_serve_history(path: &Path, mut row: ServeRunRow) -> Result<u64, String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
    }
    let existing = load_serve_history(path).unwrap_or_default();
    row.run = existing.len() as u64;
    let line =
        serde_json::to_string(&row).map_err(|e| format!("serialize serve row: {e:?}"))?;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    writeln!(file, "{line}").map_err(|e| format!("append {}: {e}", path.display()))?;
    Ok(row.run)
}

/// Load every parseable row. Blank and torn lines are skipped; a missing
/// file is an empty timeline.
pub fn load_serve_history(path: &Path) -> Result<Vec<ServeRunRow>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    Ok(text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| serde_json::from_str::<ServeRunRow>(l).ok())
        .collect())
}

/// Render the serve timeline as a table.
pub fn render_serve_history(rows: &[ServeRunRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("serve history: {} run(s)\n", rows.len()));
    out.push_str(
        "  run  commit    reqs  served  rej  cold  cached  hit%   hit p50     miss p50\n",
    );
    for r in rows {
        let commit_short: String = r.commit.chars().take(8).collect();
        out.push_str(&format!(
            "  {:>3}  {:<8}  {:>4}  {:>6}  {:>3}  {:>4}  {:>6}  {:>4.0}%  {:>8} ns  {:>8} ns\n",
            r.run,
            commit_short,
            r.requests,
            r.admitted,
            r.rejected,
            r.unique_plans,
            r.cached_responses,
            r.cached_frac() * 100.0,
            r.hit_p50_ns,
            r.miss_p50_ns,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(requests: u64) -> ServeRunRow {
        ServeRunRow {
            run: 0,
            commit: "abc123def".into(),
            requests,
            admitted: requests.saturating_sub(2),
            rejected: 2.min(requests),
            unique_plans: 3,
            cached_responses: requests.saturating_sub(5),
            cache_hits: requests.saturating_sub(5),
            cache_evictions: 0,
            hit_p50_ns: 1_000,
            miss_p50_ns: 50_000,
        }
    }

    #[test]
    fn append_assigns_ordinals_and_load_round_trips() {
        let dir = std::env::temp_dir().join("nmt-serve-rows-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("SERVE_HISTORY.jsonl");
        assert_eq!(append_serve_history(&path, row(48)).unwrap(), 0);
        assert_eq!(append_serve_history(&path, row(96)).unwrap(), 1);
        let rows = load_serve_history(&path).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].run, 0);
        assert_eq!(rows[1].run, 1);
        assert_eq!(rows[1].requests, 96);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_lines_are_skipped_not_fatal() {
        let dir = std::env::temp_dir().join("nmt-serve-rows-torn");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("SERVE_HISTORY.jsonl");
        append_serve_history(&path, row(10)).unwrap();
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        write!(f, "{{\"run\": 1, \"commit").unwrap();
        drop(f);
        let rows = load_serve_history(&path).unwrap();
        assert_eq!(rows.len(), 1, "the torn line must be skipped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_an_empty_timeline() {
        let path = std::env::temp_dir().join("nmt-serve-rows-none/NOPE.jsonl");
        assert!(load_serve_history(&path).unwrap().is_empty());
    }

    #[test]
    fn render_shows_hit_ratio() {
        let text = render_serve_history(&[row(48)]);
        assert!(text.contains("1 run(s)"));
        assert!(text.contains("abc123de"));
        assert!(text.contains("%"));
    }
}
