//! Live progress reporting for `nmt-cli bench --progress`.
//!
//! One `\r`-rewritten stderr line per update: matrices done/total, the
//! matrix and phase currently in flight, and an ETA extrapolated from the
//! completed matrices' wall times. Reporting is **off by default** and —
//! even when requested — auto-disabled when stderr is not a TTY, so CI
//! logs and redirected runs never fill with carriage returns.
//!
//! The reporter is shared across the sweep's rayon workers; it only
//! observes (an atomic done-counter and a mutexed "current" label) and
//! never feeds anything back, so enabling it cannot perturb the ledger's
//! byte-identical output. Elapsed time comes from a private
//! [`nmt_obs::Recorder`]'s monotonic clock, keeping wall-clock reads
//! routed through the sanctioned obs core.

use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Whether stderr is attached to a terminal.
pub fn stderr_is_tty() -> bool {
    // SAFETY: isatty only inspects the process's descriptor table.
    unsafe { libc::isatty(libc::STDERR_FILENO) != 0 }
}

/// Shared progress sink. Construct with [`ProgressReporter::new`]; call
/// [`update`](ProgressReporter::update) as matrices start phases and
/// [`matrix_done`](ProgressReporter::matrix_done) as they finish.
pub struct ProgressReporter {
    enabled: bool,
    total: usize,
    done: AtomicUsize,
    current: Mutex<String>,
    clock: nmt_obs::Recorder,
}

impl ProgressReporter {
    /// A reporter over `total` matrices. `requested` is the `--progress`
    /// flag; the reporter stays silent unless it is set **and** stderr is
    /// a TTY.
    pub fn new(total: usize, requested: bool) -> Self {
        Self::with_enabled(total, requested && stderr_is_tty())
    }

    /// Test hook: force the enabled state regardless of TTY-ness.
    pub fn with_enabled(total: usize, enabled: bool) -> Self {
        ProgressReporter {
            enabled,
            total,
            done: AtomicUsize::new(0),
            current: Mutex::new(String::new()),
            // Capacity 0: the clock is all we use, no spans are retained.
            clock: nmt_obs::Recorder::with_capacity(0),
        }
    }

    /// Whether lines will actually be written.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Matrices completed so far.
    pub fn completed(&self) -> usize {
        // ordering: monotone counter snapshot for a progress line; an
        // instantaneously stale read only delays the redraw by one tick.
        self.done.load(Ordering::Relaxed)
    }

    /// Record that `matrix` entered `phase` and redraw the line.
    pub fn update(&self, matrix: &str, phase: &str) {
        if self.enabled {
            let label = format!("{matrix}: {phase}");
            if let Ok(mut cur) = self.current.lock() {
                *cur = label;
            }
            self.redraw();
        }
    }

    /// Record one finished matrix and redraw the line.
    pub fn matrix_done(&self, matrix: &str) {
        let _ = matrix;
        // ordering: monotone completion counter; the result feeds only
        // the human progress line, never cross-thread state.
        self.done.fetch_add(1, Ordering::Relaxed);
        if self.enabled {
            self.redraw();
        }
    }

    /// Clear the live line and print the final summary (call once after
    /// the sweep so following output starts on a fresh line).
    pub fn finish(&self) {
        if self.enabled {
            eprint!("\r{:width$}\r", "", width = 79);
            eprint!("{}", self.finish_line());
            let _ = std::io::stderr().flush();
        }
    }

    /// The final summary [`finish`](Self::finish) prints: counts plus
    /// elapsed wall time, **always `\n`-terminated** so whatever the CLI
    /// prints next starts on its own line (a bare `\r`-cleared line left
    /// the cursor mid-line and let the next write splice into it).
    pub fn finish_line(&self) -> String {
        let elapsed_s = self.clock.now_ns() as f64 / 1e9;
        format!(
            "[{}/{}] sweep done in {elapsed_s:.1}s\n",
            self.completed(),
            self.total
        )
    }

    /// ETA in seconds from the mean wall time of completed matrices, or
    /// None before anything completed — and never for an empty suite,
    /// where `0/0` has no rate to extrapolate from.
    fn eta_seconds(&self) -> Option<f64> {
        let done = self.completed();
        if self.total == 0 || done == 0 || done >= self.total {
            return None;
        }
        let elapsed_s = self.clock.now_ns() as f64 / 1e9;
        Some(elapsed_s / done as f64 * (self.total - done) as f64)
    }

    /// The line body (exposed for tests; `redraw` prepends `\r`).
    pub fn render(&self) -> String {
        let done = self.completed();
        let current = self
            .current
            .lock()
            .map(|c| c.clone())
            .unwrap_or_default();
        let eta = match self.eta_seconds() {
            Some(s) if s >= 60.0 => format!(" eta {:.0}m{:02.0}s", s / 60.0, s % 60.0),
            Some(s) => format!(" eta {s:.1}s"),
            None => String::new(),
        };
        let mut line = format!("[{done}/{}]{eta} {current}", self.total);
        line.truncate(78);
        line
    }

    fn redraw(&self) {
        eprint!("\r{:<78}", self.render());
        let _ = std::io::stderr().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_reporter_still_counts() {
        let p = ProgressReporter::with_enabled(3, false);
        assert!(!p.is_enabled());
        p.update("mat-a", "convert");
        p.matrix_done("mat-a");
        p.matrix_done("mat-b");
        assert_eq!(p.completed(), 2);
    }

    #[test]
    fn render_shows_done_total_and_current_phase() {
        let p = ProgressReporter::with_enabled(5, true);
        p.update("wiki-Vote", "kernel");
        let line = p.render();
        assert!(line.starts_with("[0/5]"), "{line}");
        assert!(line.contains("wiki-Vote: kernel"), "{line}");
        p.matrix_done("wiki-Vote");
        assert!(p.render().starts_with("[1/5]"));
    }

    #[test]
    fn eta_appears_only_after_first_completion() {
        let p = ProgressReporter::with_enabled(4, true);
        assert!(!p.render().contains("eta"), "no basis for an ETA yet");
        p.matrix_done("a");
        assert!(p.render().contains("eta"), "mean-based ETA after 1 done");
        p.matrix_done("b");
        p.matrix_done("c");
        p.matrix_done("d");
        assert!(!p.render().contains("eta"), "no ETA once everything is done");
    }

    #[test]
    fn line_is_terminal_width_bounded() {
        let p = ProgressReporter::with_enabled(2, true);
        p.update(&"x".repeat(200), "convert");
        assert!(p.render().len() <= 78);
    }

    #[test]
    fn finish_line_is_newline_terminated() {
        let p = ProgressReporter::with_enabled(2, true);
        p.matrix_done("a");
        p.matrix_done("b");
        let line = p.finish_line();
        assert!(line.ends_with('\n'), "summary must own its line: {line:?}");
        assert!(line.starts_with("[2/2]"), "{line}");
        assert!(line.contains("sweep done in"), "{line}");
        // Exactly one terminator: the summary is a single line.
        assert_eq!(line.matches('\n').count(), 1);
    }

    #[test]
    fn empty_suite_renders_without_eta_glitch() {
        let p = ProgressReporter::with_enabled(0, true);
        assert!(p.render().starts_with("[0/0]"));
        assert!(!p.render().contains("eta"), "0/0 has no rate to project");
        // Even a spurious completion (more done than total) stays sane.
        p.matrix_done("stray");
        assert!(!p.render().contains("eta"));
        assert!(p.finish_line().starts_with("[1/0]"));
        assert!(p.finish_line().ends_with('\n'));
    }

    #[test]
    fn auto_detection_respects_request_flag() {
        // In a test runner stderr is a pipe, so even requested progress
        // must disable itself.
        let p = ProgressReporter::new(1, true);
        if !stderr_is_tty() {
            assert!(!p.is_enabled());
        }
        let off = ProgressReporter::new(1, false);
        assert!(!off.is_enabled(), "not requested => never enabled");
    }
}
