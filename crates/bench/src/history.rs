//! Perf-history timeline: `bench --history results/HISTORY.jsonl`
//! appends one compact record per instrumented run; `nmt-cli history`
//! renders the timeline and scans every tracked series for change
//! points.
//!
//! The file is JSONL — one [`HistoryRecord`] per line — so appends are
//! atomic-enough for CI (a torn final line is skipped on load, not
//! fatal) and the history diffs cleanly in git. Records carry no
//! wall-clock timestamps: ordering is the append ordinal plus whatever
//! commit id the caller passes (CI pins `GITHUB_SHA`), which keeps the
//! artifact deterministic for a fixed sequence of runs.
//!
//! The change-point scan is a classic least-squares two-segment split:
//! for each series (geomean speedup, per-phase aggregate medians) it
//! finds the split that maximally reduces the summed squared deviation
//! versus a single-mean fit, and reports it when the reduction is both
//! large (score) and practically meaningful (relative mean shift). No
//! p-values — with a handful of CI runs the honest claim is "the level
//! moved here", not a significance test.

use crate::ledger::Ledger;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// Aggregate per-phase wall-time for one run: per-matrix medians and CI
/// bounds from the ledger's perf section, summed over the suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseMedian {
    /// Phase name (`parse`/`plan`/`convert`/`kernel`/`reduce`/`other`).
    pub phase: String,
    /// Summed per-matrix phase medians, ns.
    pub median_ns: f64,
    /// Summed CI lower bounds, ns.
    pub ci_lo_ns: f64,
    /// Summed CI upper bounds, ns.
    pub ci_hi_ns: f64,
}

/// One run's row in the history file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryRecord {
    /// Append ordinal within the file (0-based; assigned by
    /// [`append_history`]).
    pub run: u64,
    /// Commit id the run was built from (`unknown` outside CI).
    pub commit: String,
    /// Suite scale label.
    pub scale: String,
    /// Suite seed.
    pub seed: u64,
    /// Headline geomean speedup.
    pub geomean_speedup: f64,
    /// SSF accuracy.
    pub ssf_accuracy: f64,
    /// Per-phase aggregates (empty when the run had no `--perf` pass).
    pub phases: Vec<PhaseMedian>,
}

impl HistoryRecord {
    /// Build a record from a finished ledger. `run` is a placeholder
    /// until [`append_history`] assigns the real ordinal.
    pub fn from_ledger(ledger: &Ledger, commit: &str) -> Self {
        let mut phases: BTreeMap<String, PhaseMedian> = BTreeMap::new();
        if let Some(perf) = &ledger.perf {
            for m in &perf.matrices {
                for p in &m.phases {
                    let entry =
                        phases
                            .entry(p.phase.clone())
                            .or_insert_with(|| PhaseMedian {
                                phase: p.phase.clone(),
                                median_ns: 0.0,
                                ci_lo_ns: 0.0,
                                ci_hi_ns: 0.0,
                            });
                    entry.median_ns += p.median_ns;
                    entry.ci_lo_ns += p.ci_lo_ns;
                    entry.ci_hi_ns += p.ci_hi_ns;
                }
            }
        }
        HistoryRecord {
            run: 0,
            commit: commit.to_string(),
            scale: ledger.scale.clone(),
            seed: ledger.seed,
            geomean_speedup: ledger.summary.geomean_speedup,
            ssf_accuracy: ledger.summary.ssf_accuracy,
            phases: phases.into_values().collect(),
        }
    }
}

/// Append one record to the JSONL history at `path`, creating the file
/// (and parent directory) if needed. Returns the assigned run ordinal.
pub fn append_history(path: &Path, mut record: HistoryRecord) -> Result<u64, String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("create {}: {e}", parent.display()))?;
        }
    }
    let existing = load_history(path).unwrap_or_default();
    record.run = existing.len() as u64;
    let line =
        serde_json::to_string(&record).map_err(|e| format!("serialize history record: {e:?}"))?;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    writeln!(file, "{line}").map_err(|e| format!("append {}: {e}", path.display()))?;
    Ok(record.run)
}

/// Load every parseable record from the JSONL history. Blank and torn
/// lines are skipped (a crashed writer must not poison the timeline);
/// a missing file is an empty history.
pub fn load_history(path: &Path) -> Result<Vec<HistoryRecord>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    Ok(text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| serde_json::from_str::<HistoryRecord>(l).ok())
        .collect())
}

/// A detected level shift in one tracked series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChangePoint {
    /// Series name (`geomean_speedup` or `phase:<name>`).
    pub series: String,
    /// First run index of the *after* segment.
    pub index: usize,
    /// Mean of the series before the split.
    pub before_mean: f64,
    /// Mean from the split onward.
    pub after_mean: f64,
    /// Fraction of summed squared deviation removed by the split
    /// (0..1; higher = cleaner step).
    pub score: f64,
}

/// Minimum variance-reduction score for a split to be reported.
const CHANGE_SCORE_MIN: f64 = 0.5;
/// Minimum relative mean shift for a split to be reported.
const CHANGE_SHIFT_MIN: f64 = 0.05;

/// Least-squares two-segment scan over one series. Returns the best
/// split when it removes at least [`CHANGE_SCORE_MIN`] of the squared
/// deviation *and* moves the mean by at least [`CHANGE_SHIFT_MIN`]
/// relative — otherwise the series is judged level.
pub fn change_point(series: &[f64]) -> Option<ChangePoint> {
    let n = series.len();
    if n < 4 {
        return None;
    }
    let sse = |xs: &[f64]| -> f64 {
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        xs.iter().map(|x| (x - mean) * (x - mean)).sum()
    };
    let total = sse(series);
    if total <= f64::EPSILON {
        return None;
    }
    let mut best: Option<(usize, f64)> = None;
    for split in 1..n {
        let split_sse = sse(&series[..split]) + sse(&series[split..]);
        if best.is_none_or(|(_, b)| split_sse < b) {
            best = Some((split, split_sse));
        }
    }
    let (split, split_sse) = best?;
    let score = 1.0 - split_sse / total;
    let before_mean = series[..split].iter().sum::<f64>() / split as f64;
    let after_mean = series[split..].iter().sum::<f64>() / (n - split) as f64;
    let denom = before_mean.abs().max(f64::EPSILON);
    let shift = (after_mean - before_mean).abs() / denom;
    if score < CHANGE_SCORE_MIN || shift < CHANGE_SHIFT_MIN {
        return None;
    }
    Some(ChangePoint {
        series: String::new(),
        index: split,
        before_mean,
        after_mean,
        score,
    })
}

/// Scan every tracked series of a loaded history: the headline geomean
/// plus each phase's aggregate median (phases appearing in at least 4
/// runs). Results are named and ordered deterministically.
pub fn scan_history(records: &[HistoryRecord]) -> Vec<ChangePoint> {
    let mut found = Vec::new();
    let geo: Vec<f64> = records.iter().map(|r| r.geomean_speedup).collect();
    if let Some(mut cp) = change_point(&geo) {
        cp.series = "geomean_speedup".to_string();
        found.push(cp);
    }
    let mut phase_names: Vec<String> = records
        .iter()
        .flat_map(|r| r.phases.iter().map(|p| p.phase.clone()))
        .collect();
    phase_names.sort();
    phase_names.dedup();
    for name in phase_names {
        // Series over runs that measured this phase, preserving order.
        let series: Vec<f64> = records
            .iter()
            .flat_map(|r| r.phases.iter().filter(|p| p.phase == name))
            .map(|p| p.median_ns)
            .collect();
        if let Some(mut cp) = change_point(&series) {
            cp.series = format!("phase:{name}");
            found.push(cp);
        }
    }
    found
}

/// Render the timeline plus any change points, for `nmt-cli history`.
pub fn render_history(records: &[HistoryRecord]) -> String {
    let mut out = String::new();
    if records.is_empty() {
        out.push_str("history: no records\n");
        return out;
    }
    out.push_str(&format!(
        "{:>4}  {:<12} {:<8} {:>8} {:>9}  phases\n",
        "run", "commit", "scale", "geomean", "accuracy"
    ));
    for r in records {
        let short: String = r.commit.chars().take(10).collect();
        let phases = if r.phases.is_empty() {
            "-".to_string()
        } else {
            r.phases
                .iter()
                .map(|p| format!("{}={:.0}ns", p.phase, p.median_ns))
                .collect::<Vec<_>>()
                .join(" ")
        };
        out.push_str(&format!(
            "{:>4}  {:<12} {:<8} {:>8.4} {:>9.4}  {}\n",
            r.run, short, r.scale, r.geomean_speedup, r.ssf_accuracy, phases
        ));
    }
    let points = scan_history(records);
    if points.is_empty() {
        out.push_str("change points: none\n");
    } else {
        for cp in points {
            out.push_str(&format!(
                "change point: {} at run {} — mean {:.4} -> {:.4} (score {:.2})\n",
                cp.series, cp.index, cp.before_mean, cp.after_mean, cp.score
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(geo: f64, kernel_ns: f64) -> HistoryRecord {
        HistoryRecord {
            run: 0,
            commit: "deadbeef".to_string(),
            scale: "small".to_string(),
            seed: 1,
            geomean_speedup: geo,
            ssf_accuracy: 0.9,
            phases: vec![PhaseMedian {
                phase: "kernel".to_string(),
                median_ns: kernel_ns,
                ci_lo_ns: kernel_ns * 0.95,
                ci_hi_ns: kernel_ns * 1.05,
            }],
        }
    }

    #[test]
    fn append_assigns_ordinals_and_load_roundtrips() {
        let dir = std::env::temp_dir().join(format!("nmt-hist-{}", std::process::id()));
        let path = dir.join("HISTORY.jsonl");
        let _ = std::fs::remove_file(&path);
        assert_eq!(load_history(&path).expect("missing file is empty"), vec![]);
        for i in 0..3u64 {
            let run =
                append_history(&path, record(2.0 + i as f64 * 0.01, 1000.0)).expect("appends");
            assert_eq!(run, i);
        }
        let loaded = load_history(&path).expect("loads");
        assert_eq!(loaded.len(), 3);
        assert_eq!(loaded[2].run, 2);
        assert!((loaded[1].geomean_speedup - 2.01).abs() < 1e-12);
        // A torn trailing line is skipped, not fatal.
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("opens");
        writeln!(file, "{{\"run\": 99, \"commit").expect("writes");
        drop(file);
        assert_eq!(load_history(&path).expect("still loads").len(), 3);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn change_point_finds_a_clean_step_and_ignores_level_series() {
        let level = vec![2.0, 2.01, 1.99, 2.0, 2.0, 2.01];
        assert!(change_point(&level).is_none());
        let step = vec![2.0, 2.01, 1.99, 2.0, 1.5, 1.49, 1.51, 1.5];
        let cp = change_point(&step).expect("step detected");
        assert_eq!(cp.index, 4);
        assert!(cp.before_mean > 1.9 && cp.after_mean < 1.6);
        assert!(cp.score > 0.9);
        // Too short to split.
        assert!(change_point(&[1.0, 2.0, 3.0]).is_none());
        // Constant series: nothing to explain.
        assert!(change_point(&[1.0; 8]).is_none());
    }

    #[test]
    fn scan_names_series_and_from_ledger_aggregates() {
        let mut records: Vec<HistoryRecord> = Vec::new();
        for i in 0..8 {
            let kernel = if i < 4 { 1000.0 } else { 2000.0 };
            let mut r = record(2.0, kernel);
            r.run = i as u64;
            records.push(r);
        }
        let points = scan_history(&records);
        assert_eq!(points.len(), 1, "geomean level, kernel stepped");
        assert_eq!(points[0].series, "phase:kernel");
        assert_eq!(points[0].index, 4);
        let rendered = render_history(&records);
        assert!(rendered.contains("change point: phase:kernel at run 4"));
        assert!(rendered.contains("deadbeef"));
    }
}
