//! Forensic ledger diffing: `nmt-cli diff <A> <B>`.
//!
//! Where [`Ledger::gate`](crate::Ledger::gate) answers *"did this run
//! regress past tolerance?"* with a yes/no, the differ answers *"what
//! moved, and who did it?"* It attributes geometric-mean speedup movement
//! to individual matrices (each matrix's share of `Δlog G` — the log of
//! the geomean is the mean of per-matrix logs, so the shares sum exactly
//! to the headline movement), aggregates the movement by chosen dataflow
//! class, and — when both ledgers carry a schema-v4 `perf` section —
//! flags wall-time deltas that clear the baseline's bootstrap confidence
//! interval, per matrix and per pipeline phase.
//!
//! CI-significance is deliberately strict by default
//! ([`DiffOptions::default`] has zero margin and zero slack): a median is
//! flagged as a regression exactly when it lies **above** the baseline's
//! CI upper bound (and as an improvement when below the lower bound).
//! Identical ledgers therefore flag nothing — a median always lies inside
//! its own CI — while a doctored timing column lights up precisely the
//! doctored matrices and phases.

use crate::ledger::{Ledger, PerfSection};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Significance thresholds for the perf comparison. Defaults to zero
/// margin / zero slack: anything outside the baseline CI is reported.
/// Loosen for cross-machine comparisons (the gate's noise-aware
/// tolerances live in [`crate::PerfTolerance`]; these are intentionally
/// separate — the differ reports, the gate judges).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffOptions {
    /// Relative headroom above/below the baseline CI bound (0.1 = 10%).
    pub margin_frac: f64,
    /// Absolute headroom, ns.
    pub abs_slack_ns: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            margin_frac: 0.0,
            abs_slack_ns: 0.0,
        }
    }
}

/// Headline geomean movement between the two ledgers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeomeanDiff {
    /// Geomean speedup in ledger A.
    pub a: f64,
    /// Geomean speedup in ledger B.
    pub b: f64,
    /// `b / a` (1.0 = no movement, <1.0 = B is worse).
    pub ratio: f64,
}

/// One matrix's share of the geomean movement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixDelta {
    /// Suite matrix name.
    pub matrix: String,
    /// Chosen dataflow class in ledger B.
    pub class: String,
    /// Speedup in ledger A.
    pub speedup_a: f64,
    /// Speedup in ledger B.
    pub speedup_b: f64,
    /// `ln(speedup_b / speedup_a)` — negative when B is worse.
    pub log_ratio: f64,
    /// This matrix's share of `Δln(geomean)` (`log_ratio / n`); the
    /// shares over all common matrices sum to the headline movement.
    pub contribution: f64,
}

/// Aggregate movement of one chosen-dataflow class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassDelta {
    /// Dataflow label (`c-stationary` / `b-stationary`).
    pub class: String,
    /// Matrices choosing this class in A.
    pub count_a: usize,
    /// Matrices choosing this class in B.
    pub count_b: usize,
    /// Geomean speedup of the class members (common matrices, grouped by
    /// B's choice) in ledger A.
    pub geomean_a: f64,
    /// Same members' geomean speedup in ledger B.
    pub geomean_b: f64,
    /// `geomean_b / geomean_a`.
    pub ratio: f64,
}

/// Aggregate wall-time movement of one pipeline phase (sum of per-matrix
/// phase medians over matrices present in both perf sections).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseDelta {
    /// Phase name (`parse`/`plan`/`convert`/`kernel`/`reduce`/`other`).
    pub phase: String,
    /// Summed phase medians in A, ns.
    pub total_a_ns: f64,
    /// Summed phase medians in B, ns.
    pub total_b_ns: f64,
    /// `total_b_ns / total_a_ns` (>1.0 = B is slower).
    pub ratio: f64,
}

/// One CI-significant wall-time delta: B's median cleared A's bootstrap
/// confidence interval (plus the configured margin/slack).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfFlag {
    /// Suite matrix name.
    pub matrix: String,
    /// Phase name, or `total` for the end-to-end median.
    pub phase: String,
    /// A's median, ns.
    pub a_median_ns: f64,
    /// The CI bound B had to clear (upper for regressions, lower for
    /// improvements), ns.
    pub a_ci_bound_ns: f64,
    /// B's median, ns.
    pub b_median_ns: f64,
    /// `b_median_ns / a_median_ns`.
    pub ratio: f64,
}

/// The full forensic comparison. Serializes for `--json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffReport {
    /// Identity fields that differ (seed, scale, fault plan, …) — the
    /// comparison still runs, but these explain wholesale movement.
    pub identity_notes: Vec<String>,
    /// Headline geomean movement.
    pub geomean: GeomeanDiff,
    /// SSF accuracy in A.
    pub accuracy_a: f64,
    /// SSF accuracy in B.
    pub accuracy_b: f64,
    /// Per-matrix movement over matrices present in both ledgers, worst
    /// contribution first (ties by name).
    pub matrices: Vec<MatrixDelta>,
    /// Matrices only ledger A has rows for.
    pub only_in_a: Vec<String>,
    /// Matrices only ledger B has rows for.
    pub only_in_b: Vec<String>,
    /// Error-row count in A / B.
    pub errors_a: usize,
    /// Error-row count in B.
    pub errors_b: usize,
    /// Movement grouped by B's chosen dataflow class.
    pub classes: Vec<ClassDelta>,
    /// Per-phase aggregate wall-time movement (empty without perf on
    /// both sides).
    pub phases: Vec<PhaseDelta>,
    /// CI-significant slowdowns in B, worst ratio first.
    pub perf_regressions: Vec<PerfFlag>,
    /// CI-significant speedups in B, best ratio first.
    pub perf_improvements: Vec<PerfFlag>,
    /// Why the perf comparison was skipped, when it was.
    pub perf_note: Option<String>,
}

impl DiffReport {
    /// Whether any CI-significant slowdown was flagged.
    pub fn has_regressions(&self) -> bool {
        !self.perf_regressions.is_empty()
    }

    /// Serialize for `--json`.
    pub fn to_json(&self) -> String {
        // nmt-lint: allow(panic) — serializing a plain data struct cannot fail
        serde_json::to_string_pretty(self).expect("diff report serializes")
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let g = &self.geomean;
        out.push_str(&format!(
            "geomean speedup: {:.4} -> {:.4} ({:+.2}%)\n",
            g.a,
            g.b,
            (g.ratio - 1.0) * 100.0
        ));
        out.push_str(&format!(
            "ssf accuracy:    {:.4} -> {:.4}\n",
            self.accuracy_a, self.accuracy_b
        ));
        if self.errors_a != 0 || self.errors_b != 0 {
            out.push_str(&format!(
                "error rows:      {} -> {}\n",
                self.errors_a, self.errors_b
            ));
        }
        for note in &self.identity_notes {
            out.push_str(&format!("identity: {note}\n"));
        }
        if !self.only_in_a.is_empty() {
            out.push_str(&format!("only in A: {}\n", self.only_in_a.join(", ")));
        }
        if !self.only_in_b.is_empty() {
            out.push_str(&format!("only in B: {}\n", self.only_in_b.join(", ")));
        }

        out.push_str("\nper-class movement (grouped by B's choice):\n");
        for c in &self.classes {
            out.push_str(&format!(
                "  {:<14} {:>3} -> {:>3} matrices, geomean {:.4} -> {:.4} ({:+.2}%)\n",
                c.class,
                c.count_a,
                c.count_b,
                c.geomean_a,
                c.geomean_b,
                (c.ratio - 1.0) * 100.0
            ));
        }

        out.push_str("\ntop matrix contributions to geomean movement:\n");
        for m in self.matrices.iter().take(8) {
            out.push_str(&format!(
                "  {:<24} {:<14} {:.4} -> {:.4} (share of dln G: {:+.5})\n",
                m.matrix, m.class, m.speedup_a, m.speedup_b, m.contribution
            ));
        }

        match &self.perf_note {
            Some(note) => out.push_str(&format!("\nperf: {note}\n")),
            None => {
                out.push_str("\nper-phase wall-time movement:\n");
                for p in &self.phases {
                    out.push_str(&format!(
                        "  {:<8} {:>14.0} ns -> {:>14.0} ns ({:+.2}%)\n",
                        p.phase,
                        p.total_a_ns,
                        p.total_b_ns,
                        (p.ratio - 1.0) * 100.0
                    ));
                }
                if self.perf_regressions.is_empty() {
                    out.push_str("perf: no CI-significant regressions\n");
                } else {
                    out.push_str(&format!(
                        "perf: {} CI-significant regression(s):\n",
                        self.perf_regressions.len()
                    ));
                    for f in &self.perf_regressions {
                        out.push_str(&format!(
                            "  REGRESSED {:<24} {:<8} {:.0} ns -> {:.0} ns ({:.2}x, CI hi {:.0} ns)\n",
                            f.matrix, f.phase, f.a_median_ns, f.b_median_ns, f.ratio, f.a_ci_bound_ns
                        ));
                    }
                }
                for f in &self.perf_improvements {
                    out.push_str(&format!(
                        "  improved  {:<24} {:<8} {:.0} ns -> {:.0} ns ({:.2}x, CI lo {:.0} ns)\n",
                        f.matrix, f.phase, f.a_median_ns, f.b_median_ns, f.ratio, f.a_ci_bound_ns
                    ));
                }
            }
        }
        out
    }
}

/// Geometric mean of an iterator of positive values (1.0 when empty).
fn geomean_of(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().map(|v| v.ln()).sum();
    (sum / values.len() as f64).exp()
}

/// Compare two schema-v4 ledgers. Errors only on a schema-version
/// mismatch (the field sets are not comparable); every other identity
/// difference becomes a note in the report.
pub fn diff_ledgers(a: &Ledger, b: &Ledger, opts: DiffOptions) -> Result<DiffReport, String> {
    if a.schema_version != b.schema_version {
        return Err(format!(
            "schema version mismatch: A is v{}, B is v{} — not comparable",
            a.schema_version, b.schema_version
        ));
    }

    let mut identity_notes = Vec::new();
    if a.scale != b.scale {
        identity_notes.push(format!("scale {} vs {}", a.scale, b.scale));
    }
    if a.seed != b.seed {
        identity_notes.push(format!("seed {} vs {}", a.seed, b.seed));
    }
    if a.k != b.k {
        identity_notes.push(format!("k {} vs {}", a.k, b.k));
    }
    if a.tile != b.tile {
        identity_notes.push(format!("tile {} vs {}", a.tile, b.tile));
    }
    if a.fault_seed != b.fault_seed || a.fault_rate_ppm != b.fault_rate_ppm {
        identity_notes.push(format!(
            "fault plan {:?}@{:?} vs {:?}@{:?}",
            a.fault_seed, a.fault_rate_ppm, b.fault_seed, b.fault_rate_ppm
        ));
    }

    let rows_a: BTreeMap<&str, &crate::ledger::LedgerRow> =
        a.rows.iter().map(|r| (r.matrix.as_str(), r)).collect();
    let rows_b: BTreeMap<&str, &crate::ledger::LedgerRow> =
        b.rows.iter().map(|r| (r.matrix.as_str(), r)).collect();
    let only_in_a: Vec<String> = rows_a
        .keys()
        .filter(|k| !rows_b.contains_key(**k))
        .map(|k| (*k).to_string())
        .collect();
    let only_in_b: Vec<String> = rows_b
        .keys()
        .filter(|k| !rows_a.contains_key(**k))
        .map(|k| (*k).to_string())
        .collect();

    // Per-matrix movement over the common set; shares of dln(geomean).
    let common: Vec<(&crate::ledger::LedgerRow, &crate::ledger::LedgerRow)> = rows_a
        .iter()
        .filter_map(|(k, ra)| rows_b.get(k).map(|rb| (*ra, *rb)))
        .collect();
    let n = common.len().max(1) as f64;
    let mut matrices: Vec<MatrixDelta> = common
        .iter()
        .map(|(ra, rb)| {
            let log_ratio = (rb.speedup / ra.speedup).ln();
            MatrixDelta {
                matrix: rb.matrix.clone(),
                class: rb.chosen.clone(),
                speedup_a: ra.speedup,
                speedup_b: rb.speedup,
                log_ratio,
                contribution: log_ratio / n,
            }
        })
        .collect();
    matrices.sort_by(|x, y| {
        x.contribution
            .partial_cmp(&y.contribution)
            .unwrap_or(Ordering::Equal)
            .then_with(|| x.matrix.cmp(&y.matrix))
    });

    // Per-class movement, grouped by the run-under-test's (B's) choice.
    let mut class_members: BTreeMap<String, (Vec<f64>, Vec<f64>)> = BTreeMap::new();
    for (ra, rb) in &common {
        let entry = class_members.entry(rb.chosen.clone()).or_default();
        entry.0.push(ra.speedup);
        entry.1.push(rb.speedup);
    }
    let count_by = |l: &Ledger, class: &str| l.rows.iter().filter(|r| r.chosen == class).count();
    let classes: Vec<ClassDelta> = class_members
        .into_iter()
        .map(|(class, (sa, sb))| {
            let ga = geomean_of(&sa);
            let gb = geomean_of(&sb);
            ClassDelta {
                count_a: count_by(a, &class),
                count_b: count_by(b, &class),
                geomean_a: ga,
                geomean_b: gb,
                ratio: gb / ga,
                class,
            }
        })
        .collect();

    let (phases, perf_regressions, perf_improvements, perf_note) =
        match (a.perf.as_ref(), b.perf.as_ref()) {
            (Some(pa), Some(pb)) => {
                let (ph, reg, imp) = diff_perf(pa, pb, opts);
                (ph, reg, imp, None)
            }
            (None, None) => (
                Vec::new(),
                Vec::new(),
                Vec::new(),
                Some("no perf section in either ledger (run bench with --perf)".to_string()),
            ),
            (Some(_), None) => (
                Vec::new(),
                Vec::new(),
                Vec::new(),
                Some("perf section only in A — wall-time comparison skipped".to_string()),
            ),
            (None, Some(_)) => (
                Vec::new(),
                Vec::new(),
                Vec::new(),
                Some("perf section only in B — wall-time comparison skipped".to_string()),
            ),
        };

    Ok(DiffReport {
        identity_notes,
        geomean: GeomeanDiff {
            a: a.summary.geomean_speedup,
            b: b.summary.geomean_speedup,
            ratio: b.summary.geomean_speedup / a.summary.geomean_speedup,
        },
        accuracy_a: a.summary.ssf_accuracy,
        accuracy_b: b.summary.ssf_accuracy,
        matrices,
        only_in_a,
        only_in_b,
        errors_a: a.errors.len(),
        errors_b: b.errors.len(),
        classes,
        phases,
        perf_regressions,
        perf_improvements,
        perf_note,
    })
}

/// Compare two perf sections: per-phase aggregates plus CI-significance
/// flags for every (matrix, phase) pair present in both, and the
/// per-matrix totals.
fn diff_perf(
    pa: &PerfSection,
    pb: &PerfSection,
    opts: DiffOptions,
) -> (Vec<PhaseDelta>, Vec<PerfFlag>, Vec<PerfFlag>) {
    let by_name_a: BTreeMap<&str, &crate::ledger::MatrixPerf> =
        pa.matrices.iter().map(|m| (m.matrix.as_str(), m)).collect();

    let mut phase_totals: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    let mut regressions = Vec::new();
    let mut improvements = Vec::new();

    // B's median must clear A's CI bound by margin + slack to flag.
    let reg_bound = |ci_hi: f64| ci_hi * (1.0 + opts.margin_frac) + opts.abs_slack_ns;
    let imp_bound = |ci_lo: f64| ci_lo * (1.0 - opts.margin_frac) - opts.abs_slack_ns;

    for mb in &pb.matrices {
        let Some(ma) = by_name_a.get(mb.matrix.as_str()) else {
            continue;
        };

        if mb.total_median_ns > reg_bound(ma.total_ci_hi_ns) {
            regressions.push(PerfFlag {
                matrix: mb.matrix.clone(),
                phase: "total".to_string(),
                a_median_ns: ma.total_median_ns,
                a_ci_bound_ns: ma.total_ci_hi_ns,
                b_median_ns: mb.total_median_ns,
                ratio: mb.total_median_ns / ma.total_median_ns,
            });
        } else if mb.total_median_ns < imp_bound(ma.total_ci_lo_ns) {
            improvements.push(PerfFlag {
                matrix: mb.matrix.clone(),
                phase: "total".to_string(),
                a_median_ns: ma.total_median_ns,
                a_ci_bound_ns: ma.total_ci_lo_ns,
                b_median_ns: mb.total_median_ns,
                ratio: mb.total_median_ns / ma.total_median_ns,
            });
        }

        let phases_a: BTreeMap<&str, &crate::ledger::PhasePerf> =
            ma.phases.iter().map(|p| (p.phase.as_str(), p)).collect();
        for phb in &mb.phases {
            let Some(pha) = phases_a.get(phb.phase.as_str()) else {
                continue;
            };
            let entry = phase_totals.entry(phb.phase.clone()).or_default();
            entry.0 += pha.median_ns;
            entry.1 += phb.median_ns;
            if phb.median_ns > reg_bound(pha.ci_hi_ns) {
                regressions.push(PerfFlag {
                    matrix: mb.matrix.clone(),
                    phase: phb.phase.clone(),
                    a_median_ns: pha.median_ns,
                    a_ci_bound_ns: pha.ci_hi_ns,
                    b_median_ns: phb.median_ns,
                    ratio: if pha.median_ns > 0.0 {
                        phb.median_ns / pha.median_ns
                    } else {
                        f64::INFINITY
                    },
                });
            } else if phb.median_ns < imp_bound(pha.ci_lo_ns) {
                improvements.push(PerfFlag {
                    matrix: mb.matrix.clone(),
                    phase: phb.phase.clone(),
                    a_median_ns: pha.median_ns,
                    a_ci_bound_ns: pha.ci_lo_ns,
                    b_median_ns: phb.median_ns,
                    ratio: if pha.median_ns > 0.0 {
                        phb.median_ns / pha.median_ns
                    } else {
                        0.0
                    },
                });
            }
        }
    }

    let phases: Vec<PhaseDelta> = phase_totals
        .into_iter()
        .map(|(phase, (ta, tb))| PhaseDelta {
            phase,
            total_a_ns: ta,
            total_b_ns: tb,
            ratio: if ta > 0.0 { tb / ta } else { 1.0 },
        })
        .collect();

    // Worst slowdown first; best speedup first; ties by (matrix, phase)
    // so the report is deterministic.
    regressions.sort_by(|x, y| {
        y.ratio
            .partial_cmp(&x.ratio)
            .unwrap_or(Ordering::Equal)
            .then_with(|| x.matrix.cmp(&y.matrix))
            .then_with(|| x.phase.cmp(&y.phase))
    });
    improvements.sort_by(|x, y| {
        x.ratio
            .partial_cmp(&y.ratio)
            .unwrap_or(Ordering::Equal)
            .then_with(|| x.matrix.cmp(&y.matrix))
            .then_with(|| x.phase.cmp(&y.phase))
    });
    (phases, regressions, improvements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{LatencyPercentiles, MatrixPerf, PerfSection, PhasePerf};

    fn perf_matrix(name: &str, base_ns: f64) -> MatrixPerf {
        let phase = |p: &str, ns: f64| PhasePerf {
            phase: p.to_string(),
            median_ns: ns,
            mad_ns: ns * 0.01,
            ci_lo_ns: ns * 0.95,
            ci_hi_ns: ns * 1.05,
            samples: 8,
            rejected: 0,
            alloc_count: 0.0,
            alloc_bytes: 0.0,
        };
        MatrixPerf {
            matrix: name.to_string(),
            total_median_ns: base_ns,
            total_ci_lo_ns: base_ns * 0.95,
            total_ci_hi_ns: base_ns * 1.05,
            phases: vec![phase("plan", base_ns * 0.2), phase("kernel", base_ns * 0.8)],
        }
    }

    fn ledger_with_perf() -> Ledger {
        let mut ledger = toy_ledger(&[("m0", "c-stationary", 2.0), ("m1", "b-stationary", 3.0)]);
        ledger.perf = Some(PerfSection {
            warmup: 1,
            iters: 8,
            resamples: 100,
            matrices: vec![perf_matrix("m0", 1_000_000.0), perf_matrix("m1", 2_000_000.0)],
        });
        ledger
    }

    // A tiny hand-built ledger so tests don't need a sweep.
    fn toy_ledger(speedups: &[(&str, &str, f64)]) -> Ledger {
        let mut ledger = Ledger {
            schema_version: crate::ledger::LEDGER_SCHEMA_VERSION,
            scale: "small".to_string(),
            seed: 1,
            k: 8,
            tile: 16,
            fault_seed: None,
            fault_rate_ppm: None,
            rows: Vec::new(),
            errors: Vec::new(),
            summary: crate::ledger::CorpusSummary {
                matrices: speedups.len(),
                geomean_speedup: 1.0,
                oracle_geomean_speedup: 1.0,
                ssf_accuracy: 1.0,
                mispicks: 0,
                mean_mispick_cost: 1.0,
                improved_fraction: 1.0,
                traffic_bytes: Default::default(),
                chosen_latency_ns: LatencyPercentiles {
                    p50: 1.0,
                    p95: 1.0,
                    p99: 1.0,
                },
                model_mean_abs_rel_err: 0.0,
            },
            perf: None,
        };
        for (name, class, s) in speedups {
            let row = crate::ledger::LedgerRow {
                matrix: (*name).to_string(),
                n: 64,
                nnz: 256,
                ssf: 1.0,
                h_norm: 0.5,
                chosen: (*class).to_string(),
                oracle: (*class).to_string(),
                mispick: false,
                mispick_cost: 1.0,
                baseline_ns: 100.0,
                cstat_ns: 50.0,
                bstat_ns: 50.0,
                speedup: *s,
                oracle_speedup: *s,
                dram_bytes: Default::default(),
                model_abs_rel_err: 0.0,
            };
            ledger.rows.push(row);
        }
        let speeds: Vec<f64> = ledger.rows.iter().map(|r| r.speedup).collect();
        ledger.summary.geomean_speedup = geomean_of(&speeds);
        ledger
    }

    #[test]
    fn identical_ledgers_diff_clean() {
        let a = toy_ledger(&[("m0", "c-stationary", 2.0), ("m1", "b-stationary", 3.0)]);
        let report = diff_ledgers(&a, &a, DiffOptions::default()).expect("diffs");
        assert!(report.identity_notes.is_empty());
        assert!((report.geomean.ratio - 1.0).abs() < 1e-12);
        assert!(report.only_in_a.is_empty() && report.only_in_b.is_empty());
        for m in &report.matrices {
            assert!(m.contribution.abs() < 1e-12);
        }
        assert!(report.perf_note.is_some(), "no perf sections to compare");
        assert!(!report.has_regressions());
    }

    #[test]
    fn matrix_contributions_sum_to_geomean_movement() {
        let a = toy_ledger(&[("m0", "c-stationary", 2.0), ("m1", "b-stationary", 3.0)]);
        let b = toy_ledger(&[("m0", "c-stationary", 1.0), ("m1", "b-stationary", 3.3)]);
        let report = diff_ledgers(&a, &b, DiffOptions::default()).expect("diffs");
        let total: f64 = report.matrices.iter().map(|m| m.contribution).sum();
        assert!(
            (total - report.geomean.ratio.ln()).abs() < 1e-12,
            "shares {total} must sum to dln G {}",
            report.geomean.ratio.ln()
        );
        // Worst contribution first: m0 halved, m1 improved.
        assert_eq!(report.matrices[0].matrix, "m0");
        assert!(report.matrices[0].contribution < 0.0);
        // Class grouping splits the movement.
        assert_eq!(report.classes.len(), 2);
        let cstat = report
            .classes
            .iter()
            .find(|c| c.class == "c-stationary")
            .expect("class present");
        assert!(cstat.ratio < 1.0);
    }

    #[test]
    fn disjoint_matrices_and_identity_drift_are_noted() {
        let a = toy_ledger(&[("m0", "c-stationary", 2.0), ("gone", "c-stationary", 2.0)]);
        let mut b = toy_ledger(&[("m0", "c-stationary", 2.0), ("new", "c-stationary", 2.0)]);
        b.seed = 7;
        b.fault_seed = Some(1);
        let report = diff_ledgers(&a, &b, DiffOptions::default()).expect("diffs");
        assert_eq!(report.only_in_a, vec!["gone".to_string()]);
        assert_eq!(report.only_in_b, vec!["new".to_string()]);
        assert!(report.identity_notes.iter().any(|n| n.contains("seed 1 vs 7")));
        assert!(report.identity_notes.iter().any(|n| n.contains("fault plan")));
    }

    #[test]
    fn schema_mismatch_refuses() {
        let a = toy_ledger(&[("m0", "c-stationary", 2.0)]);
        let mut b = a.clone();
        b.schema_version += 1;
        assert!(diff_ledgers(&a, &b, DiffOptions::default()).is_err());
    }

    #[test]
    fn doctored_perf_flags_exactly_the_doctored_pairs() {
        let a = ledger_with_perf();
        let mut b = a.clone();
        {
            // Doctor m1's kernel phase and total by x1000; leave m0 and
            // m1/plan untouched.
            let perf = b.perf.as_mut().expect("perf present");
            let m1 = perf
                .matrices
                .iter_mut()
                .find(|m| m.matrix == "m1")
                .expect("m1 present");
            m1.total_median_ns *= 1000.0;
            m1.total_ci_lo_ns *= 1000.0;
            m1.total_ci_hi_ns *= 1000.0;
            let kernel = m1
                .phases
                .iter_mut()
                .find(|p| p.phase == "kernel")
                .expect("kernel phase");
            kernel.median_ns *= 1000.0;
            kernel.ci_lo_ns *= 1000.0;
            kernel.ci_hi_ns *= 1000.0;
        }
        let report = diff_ledgers(&a, &b, DiffOptions::default()).expect("diffs");
        let flagged: Vec<(String, String)> = report
            .perf_regressions
            .iter()
            .map(|f| (f.matrix.clone(), f.phase.clone()))
            .collect();
        assert_eq!(
            flagged,
            vec![
                ("m1".to_string(), "kernel".to_string()),
                ("m1".to_string(), "total".to_string()),
            ],
            "exactly the doctored pairs flag, worst ratio first"
        );
        assert!(report.perf_improvements.is_empty());
        assert!(report.has_regressions());
        // Reverse direction: the same deltas read as improvements.
        let reverse = diff_ledgers(&b, &a, DiffOptions::default()).expect("diffs");
        assert!(reverse.perf_regressions.is_empty());
        assert_eq!(reverse.perf_improvements.len(), 2);
        // Identical perf flags nothing: a median sits inside its own CI.
        let same = diff_ledgers(&a, &a, DiffOptions::default()).expect("diffs");
        assert!(same.perf_regressions.is_empty());
        assert!(same.perf_improvements.is_empty());
        // Text + JSON both name the doctored pair.
        let text = report.render_text();
        assert!(text.contains("REGRESSED"));
        assert!(text.contains("m1"));
        let parsed: DiffReport =
            serde_json::from_str(&report.to_json()).expect("JSON roundtrips");
        assert_eq!(parsed, report);
    }

    #[test]
    fn margin_suppresses_borderline_flags() {
        let a = ledger_with_perf();
        let mut b = a.clone();
        {
            let perf = b.perf.as_mut().expect("perf present");
            // +10%: outside the +-5% CI, inside a 50% margin.
            perf.matrices[0].total_median_ns *= 1.10;
        }
        let strict = diff_ledgers(&a, &b, DiffOptions::default()).expect("diffs");
        assert_eq!(strict.perf_regressions.len(), 1);
        let loose = diff_ledgers(
            &a,
            &b,
            DiffOptions {
                margin_frac: 0.5,
                abs_slack_ns: 0.0,
            },
        )
        .expect("diffs");
        assert!(loose.perf_regressions.is_empty());
    }
}
