//! The corpus-scale run ledger: a stable, schema-versioned record of one
//! suite sweep (`BENCH_<scale>.json`), plus the regression gate CI runs
//! against the committed baseline.
//!
//! A ledger holds one [`LedgerRow`] per matrix (SSF, chosen vs oracle
//! dataflow, times, per-`TrafficClass`-label DRAM bytes, model error)
//! and a [`CorpusSummary`] (geomean speedup, SSF-vs-oracle accuracy,
//! per-class byte totals, latency percentiles from the log₂ histogram).
//! Everything in it comes from the deterministic simulator, so sweeping
//! the same suite at the same seed twice produces **byte-identical**
//! files — which is what makes [`Ledger::gate`] a meaningful diff.

use crate::harness::{summarize, BenchConfig};
use crate::progress::ProgressReporter;
use crate::{experiment_gpu, experiment_k, experiment_tile, geomean, EXPERIMENT_SEED};
use nmt::planner::{PlannerConfig, SpmmPlanner, DEFAULT_SSF_THRESHOLD};
use nmt::DecisionAudit;
use nmt_fault::{FaultPlan, FaultRecord};
use nmt_formats::SparseMatrix;
use nmt_matgen::{random_dense, SuiteScale, SuiteSpec};
use nmt_model::ssf::Choice;
use nmt_obs::{MetricRegistry, ObsContext, Phase, Profiler};
use nmt_sim::SimError;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Version of the `BENCH_*.json` schema. Bump on any change to the field
/// set or semantics; the gate refuses to compare across versions.
///
/// v2: added `errors` — per-matrix error rows, so one malformed matrix is
/// reported instead of aborting the whole sweep.
///
/// v3: fault-injection provenance — the ledger records the `FaultPlan`
/// identity (`fault_seed` / `fault_rate_ppm`, both null on clean sweeps)
/// and error rows carry fault attribution, so a faulted sweep can never
/// be mistaken for (or gated against) a clean baseline.
///
/// v4: measured wall-time — an optional `perf` section (per-matrix,
/// per-phase medians with bootstrap confidence intervals from the
/// harness) consumed by the noise-aware [`Ledger::perf_gate`]. `perf` is
/// `null` unless the sweep ran with `--perf`, so the default ledger stays
/// byte-identical across runs and thread counts.
///
/// Still v4 (additive, optional): error rows may carry `events` — the
/// last flight-recorder events attributed to the failed matrix (see
/// [`LedgerEvent`]). Clean sweeps have no error rows, so baseline ledger
/// bytes are unchanged, and `Option` fields parse as `None` from older
/// files that lack the key.
pub const LEDGER_SCHEMA_VERSION: u32 = 4;

/// One scrubbed flight-recorder event attached to an [`ErrorRow`].
///
/// Timestamps and thread ids are deliberately absent: they vary with the
/// schedule, and error rows must stay byte-identical across thread
/// counts. What remains — site name, sub-code, operands — is the
/// deterministic event *content* (see `nmt_obs::recorder`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEvent {
    /// Stable kebab-case site name (e.g. `fault-convert-strip`).
    pub site: String,
    /// Site-specific sub-code (e.g. fault outcome: absorbed vs escalated).
    pub code: u32,
    /// First operand (strip / partition / key, per site).
    pub a: u64,
    /// Second operand.
    pub b: u64,
}

/// A matrix whose sweep failed: recorded instead of aborting the corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorRow {
    /// Suite matrix name.
    pub matrix: String,
    /// The error that stopped this matrix's run.
    pub error: String,
    /// When the error was an injected fault, its attribution: which site
    /// fired and at which deterministic key (`None` for organic errors).
    pub fault: Option<FaultRecord>,
    /// The last ~32 flight-recorder events recorded while this matrix
    /// ran, in deterministic content order (fault-class sites sort last),
    /// so a sweep failure is diagnosable from the committed ledger alone.
    /// `None` when the matrix failed before a recorder was attached
    /// (generation errors) or when the row predates this field.
    pub events: Option<Vec<LedgerEvent>>,
}

/// One matrix's row in the ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerRow {
    /// Suite matrix name.
    pub matrix: String,
    /// Matrix dimension.
    pub n: usize,
    /// Non-zero count.
    pub nnz: usize,
    /// SSF value.
    pub ssf: f64,
    /// Normalized entropy input.
    pub h_norm: f64,
    /// Heuristic pick (`c-stationary` / `b-stationary`).
    pub chosen: String,
    /// Measured-best pick.
    pub oracle: String,
    /// Whether the heuristic missed.
    pub mispick: bool,
    /// `chosen_time / oracle_time` (1.0 when correct).
    pub mispick_cost: f64,
    /// Baseline time in ns.
    pub baseline_ns: f64,
    /// C-stationary candidate time in ns.
    pub cstat_ns: f64,
    /// B-stationary (online) candidate time in ns.
    pub bstat_ns: f64,
    /// Heuristic-pick speedup over the baseline.
    pub speedup: f64,
    /// Oracle-pick speedup over the baseline.
    pub oracle_speedup: f64,
    /// Chosen kernel's DRAM bytes per traffic-class label.
    pub dram_bytes: BTreeMap<String, u64>,
    /// Chosen kernel's mean |model relative error| over A/B/C.
    pub model_abs_rel_err: f64,
}

impl LedgerRow {
    /// Flatten a [`DecisionAudit`] into a ledger row.
    pub fn from_audit(a: &DecisionAudit) -> Self {
        let label = |c: Choice| match c {
            Choice::BStationary => "b-stationary".to_string(),
            Choice::CStationary => "c-stationary".to_string(),
        };
        let chosen = a.chosen_audit();
        Self {
            matrix: a.matrix.clone(),
            n: a.nrows,
            nnz: a.nnz,
            ssf: a.profile.ssf,
            h_norm: a.profile.h_norm,
            chosen: label(a.chosen),
            oracle: label(a.oracle),
            mispick: a.mispick,
            mispick_cost: a.mispick_cost,
            baseline_ns: a.baseline_ns,
            cstat_ns: a.cstationary.time_ns,
            bstat_ns: a.bstationary.time_ns,
            speedup: chosen.speedup,
            oracle_speedup: a.oracle_speedup(),
            dram_bytes: chosen.dram_bytes.clone(),
            model_abs_rel_err: chosen.mean_abs_rel_err,
        }
    }
}

/// Interpolated latency percentiles (ns) from the log₂ histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyPercentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Corpus-level aggregates over a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusSummary {
    /// Number of matrices swept.
    pub matrices: usize,
    /// Geometric-mean speedup of the SSF-directed hybrid (the paper's
    /// headline statistic — 2.26× at paper scale).
    pub geomean_speedup: f64,
    /// Geometric-mean speedup of the oracle (paper: 2.30×).
    pub oracle_geomean_speedup: f64,
    /// Fraction of matrices where the heuristic matched the oracle.
    pub ssf_accuracy: f64,
    /// Number of mispicks.
    pub mispicks: usize,
    /// Mean `chosen/oracle` time ratio over mispicked matrices only
    /// (1.0 when there were none).
    pub mean_mispick_cost: f64,
    /// Fraction of matrices faster than the baseline.
    pub improved_fraction: f64,
    /// Total chosen-kernel DRAM bytes per traffic-class label.
    pub traffic_bytes: BTreeMap<String, u64>,
    /// Chosen-kernel latency percentiles across the corpus.
    pub chosen_latency_ns: LatencyPercentiles,
    /// Mean |model relative error| of the chosen kernels.
    pub model_mean_abs_rel_err: f64,
}

/// Measured wall-time statistics for one phase of one matrix, produced
/// by the harness ([`crate::harness::summarize`]) over repeated
/// planner-execute iterations. Times come from the span tree's self-time
/// attribution, so phases partition each iteration exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhasePerf {
    /// Phase name (`parse`/`plan`/`convert`/`kernel`/`reduce`/`other`).
    pub phase: String,
    /// Median self-time, ns.
    pub median_ns: f64,
    /// Scaled MAD of the retained samples, ns.
    pub mad_ns: f64,
    /// Bootstrap 95% CI lower bound on the median, ns.
    pub ci_lo_ns: f64,
    /// Bootstrap 95% CI upper bound on the median, ns.
    pub ci_hi_ns: f64,
    /// Samples retained after outlier rejection.
    pub samples: u64,
    /// Samples rejected as outliers.
    pub rejected: u64,
    /// Median allocations attributed to the phase (0 when the counting
    /// allocator is not installed).
    pub alloc_count: f64,
    /// Median bytes allocated in the phase (0 without the allocator).
    pub alloc_bytes: f64,
}

/// Per-matrix perf record: total wall-time plus the per-phase breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixPerf {
    /// Suite matrix name.
    pub matrix: String,
    /// Median end-to-end wall-time per iteration, ns.
    pub total_median_ns: f64,
    /// Bootstrap CI lower bound on the total median, ns.
    pub total_ci_lo_ns: f64,
    /// Bootstrap CI upper bound on the total median, ns.
    pub total_ci_hi_ns: f64,
    /// Per-phase statistics, in pipeline order (all six phases present).
    pub phases: Vec<PhasePerf>,
}

/// The ledger's optional measured-performance section (schema v4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfSection {
    /// Untimed warmup iterations per matrix.
    pub warmup: u64,
    /// Timed iterations per matrix.
    pub iters: u64,
    /// Bootstrap resamples behind every CI.
    pub resamples: u64,
    /// Per-matrix records, in suite order.
    pub matrices: Vec<MatrixPerf>,
}

/// Noise tolerance for [`Ledger::perf_gate`]: a run median must exceed
/// the baseline's CI upper bound by both the relative margin and the
/// absolute slack before it counts as a regression. The slack keeps
/// microsecond-scale phases (where a scheduler blip is a large fraction)
/// from firing the gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfTolerance {
    /// Relative headroom above the baseline CI (0.5 = 50%).
    pub margin_frac: f64,
    /// Absolute headroom, ns.
    pub abs_slack_ns: f64,
    /// Relative headroom above the baseline per-phase allocation count
    /// and bytes (0.5 = 50%). Allocation counts are near-deterministic
    /// (pools are reset before the measurement pass), but steady-state
    /// shelving can differ slightly run to run.
    pub alloc_margin_frac: f64,
    /// Absolute allocation-count headroom per phase.
    pub alloc_slack_count: f64,
    /// Absolute allocation-bytes headroom per phase.
    pub alloc_slack_bytes: f64,
}

impl Default for PerfTolerance {
    fn default() -> Self {
        Self {
            // Generous by default: CI machines differ; tighten locally
            // with --perf-margin for same-machine comparisons.
            margin_frac: 0.5,
            abs_slack_ns: 100_000.0,
            alloc_margin_frac: 0.5,
            alloc_slack_count: 64.0,
            alloc_slack_bytes: 65_536.0,
        }
    }
}

/// A full suite sweep: rows plus summary, versioned for diffing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ledger {
    /// Schema version ([`LEDGER_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Suite scale (`small` / `medium` / `paper`).
    pub scale: String,
    /// Suite base seed.
    pub seed: u64,
    /// Dense-operand width.
    pub k: usize,
    /// Strip/tile edge.
    pub tile: usize,
    /// Fault-injection seed when the sweep ran with a [`FaultPlan`]
    /// (`None` on clean sweeps). Part of the suite identity: the gate
    /// refuses to compare faulted and clean ledgers.
    pub fault_seed: Option<u64>,
    /// Fault-injection rate in parts-per-million (`None` on clean sweeps).
    pub fault_rate_ppm: Option<u32>,
    /// Per-matrix rows, in suite order.
    pub rows: Vec<LedgerRow>,
    /// Matrices whose run errored, in suite order (empty on a clean
    /// sweep). The gate treats any change in this list as a regression.
    pub errors: Vec<ErrorRow>,
    /// Corpus aggregates.
    pub summary: CorpusSummary,
    /// Measured wall-time statistics (`--perf` sweeps only; `None` keeps
    /// the default ledger deterministic down to the byte). Absent fields
    /// in pre-v4 files parse as `None`.
    pub perf: Option<PerfSection>,
}

/// Tolerances for [`Ledger::gate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateTolerance {
    /// Allowed fractional drop in geomean speedup (0.05 = 5 %).
    pub speedup_frac: f64,
    /// Allowed absolute drop in SSF accuracy (0.05 = 5 points).
    pub accuracy_abs: f64,
}

impl Default for GateTolerance {
    fn default() -> Self {
        Self {
            speedup_frac: 0.05,
            accuracy_abs: 0.05,
        }
    }
}

/// The ledger's canonical filename for a scale (`BENCH_small.json`).
pub fn ledger_filename(scale: SuiteScale) -> String {
    format!("BENCH_{}.json", scale_label(scale))
}

/// Lower-case label for a scale.
pub fn scale_label(scale: SuiteScale) -> &'static str {
    match scale {
        SuiteScale::Small => "small",
        SuiteScale::Medium => "medium",
        SuiteScale::Paper => "paper",
    }
}

impl Ledger {
    /// Aggregate a set of audits (in suite order) into a ledger with no
    /// error rows — the common clean-sweep case.
    pub fn from_audits(
        scale: SuiteScale,
        seed: u64,
        k: usize,
        tile: usize,
        audits: &[DecisionAudit],
    ) -> Self {
        Self::from_sweep(scale, seed, k, tile, audits, Vec::new())
    }

    /// Aggregate a sweep's successful audits plus its per-matrix errors
    /// (both in suite order) into a clean (unfaulted) ledger.
    pub fn from_sweep(
        scale: SuiteScale,
        seed: u64,
        k: usize,
        tile: usize,
        audits: &[DecisionAudit],
        errors: Vec<ErrorRow>,
    ) -> Self {
        Self::from_sweep_faulted(scale, seed, k, tile, None, audits, errors)
    }

    /// Aggregate a sweep that ran under `fault` (or `None` for a clean
    /// sweep); the plan's identity is stamped into the ledger so the gate
    /// can tell faulted and clean runs apart.
    pub fn from_sweep_faulted(
        scale: SuiteScale,
        seed: u64,
        k: usize,
        tile: usize,
        fault: Option<FaultPlan>,
        audits: &[DecisionAudit],
        errors: Vec<ErrorRow>,
    ) -> Self {
        let rows: Vec<LedgerRow> = audits.iter().map(LedgerRow::from_audit).collect();
        let speedups: Vec<f64> = rows.iter().map(|r| r.speedup).collect();
        let oracle_speedups: Vec<f64> = rows.iter().map(|r| r.oracle_speedup).collect();
        let mispicks = rows.iter().filter(|r| r.mispick).count();
        let mean_mispick_cost = if mispicks == 0 {
            1.0
        } else {
            rows.iter()
                .filter(|r| r.mispick)
                .map(|r| r.mispick_cost)
                .sum::<f64>()
                / mispicks as f64
        };
        let mut traffic_bytes: BTreeMap<String, u64> = BTreeMap::new();
        for r in &rows {
            for (class, &bytes) in &r.dram_bytes {
                *traffic_bytes.entry(class.clone()).or_insert(0) += bytes;
            }
        }
        // Latency percentiles via the obs log₂ histogram, so the ledger
        // exercises the same estimator the registry exports.
        let reg = MetricRegistry::new();
        for r in &rows {
            reg.histogram_record("ledger.chosen_ns", r.chosen_ns_rounded());
        }
        let snap = reg.snapshot();
        // All-errored sweeps record nothing; report zero percentiles
        // rather than indexing a histogram that was never created.
        let (p50, p95, p99) = match snap.histograms.get("ledger.chosen_ns") {
            Some(hist) => (hist.p50(), hist.p95(), hist.p99()),
            None => (0.0, 0.0, 0.0),
        };
        let summary = CorpusSummary {
            matrices: rows.len(),
            geomean_speedup: geomean(&speedups),
            oracle_geomean_speedup: geomean(&oracle_speedups),
            ssf_accuracy: if rows.is_empty() {
                0.0
            } else {
                (rows.len() - mispicks) as f64 / rows.len() as f64
            },
            mispicks,
            mean_mispick_cost,
            improved_fraction: if rows.is_empty() {
                0.0
            } else {
                rows.iter().filter(|r| r.speedup > 1.0).count() as f64 / rows.len() as f64
            },
            traffic_bytes,
            chosen_latency_ns: LatencyPercentiles { p50, p95, p99 },
            model_mean_abs_rel_err: if rows.is_empty() {
                0.0
            } else {
                rows.iter().map(|r| r.model_abs_rel_err).sum::<f64>() / rows.len() as f64
            },
        };
        Self {
            schema_version: LEDGER_SCHEMA_VERSION,
            scale: scale_label(scale).to_string(),
            seed,
            k,
            tile,
            fault_seed: fault.map(|p| p.seed),
            fault_rate_ppm: fault.map(|p| p.rate_ppm),
            rows,
            errors,
            summary,
            perf: None,
        }
    }

    /// Serialize as pretty JSON (the `BENCH_*.json` artifact).
    pub fn to_json(&self) -> String {
        // nmt-lint: allow(panic) — serializing a plain data struct cannot fail
        serde_json::to_string_pretty(self).expect("ledger serializes")
    }

    /// Parse a ledger back from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("malformed ledger: {e:?}"))
    }

    /// Compact one-line summary for logs.
    pub fn render_summary(&self) -> String {
        let s = &self.summary;
        let errors = if self.errors.is_empty() {
            String::new()
        } else {
            format!(" | {} ERRORED", self.errors.len())
        };
        format!(
            "{} matrices @ {} | geomean {:.3}x (oracle {:.3}x) | SSF accuracy {:.1}% \
             ({} mispicks, mean cost {:.2}x) | chosen p50/p95/p99 = {:.0}/{:.0}/{:.0} ns \
             | model |rel err| {:.1}%{}",
            s.matrices,
            self.scale,
            s.geomean_speedup,
            s.oracle_geomean_speedup,
            s.ssf_accuracy * 100.0,
            s.mispicks,
            s.mean_mispick_cost,
            s.chosen_latency_ns.p50,
            s.chosen_latency_ns.p95,
            s.chosen_latency_ns.p99,
            s.model_mean_abs_rel_err * 100.0,
            errors
        )
    }

    /// Diff this ledger (the fresh run) against a committed `baseline`.
    ///
    /// Returns `Ok(notes)` when the run is no worse than the baseline
    /// within `tol`, `Err(regressions)` otherwise. Checks, in order:
    /// schema version and suite identity (scale/seed/k/tile/row count)
    /// must match exactly — a mismatch means the baseline must be
    /// consciously refreshed, not silently accepted — then geomean
    /// speedup may not drop more than `tol.speedup_frac` relatively and
    /// SSF accuracy not more than `tol.accuracy_abs` absolutely.
    pub fn gate(&self, baseline: &Ledger, tol: GateTolerance) -> Result<Vec<String>, Vec<String>> {
        let mut regressions = Vec::new();
        let mut notes = Vec::new();
        if self.schema_version != baseline.schema_version {
            regressions.push(format!(
                "schema version changed: baseline v{} vs run v{} — refresh the baseline",
                baseline.schema_version, self.schema_version
            ));
            return Err(regressions);
        }
        for (what, run, base) in [
            ("scale", self.scale.clone(), baseline.scale.clone()),
            ("seed", self.seed.to_string(), baseline.seed.to_string()),
            ("k", self.k.to_string(), baseline.k.to_string()),
            ("tile", self.tile.to_string(), baseline.tile.to_string()),
            (
                "fault seed",
                format!("{:?}", self.fault_seed),
                format!("{:?}", baseline.fault_seed),
            ),
            (
                "fault rate (ppm)",
                format!("{:?}", self.fault_rate_ppm),
                format!("{:?}", baseline.fault_rate_ppm),
            ),
            (
                "matrix count",
                self.rows.len().to_string(),
                baseline.rows.len().to_string(),
            ),
            (
                "error-row count",
                self.errors.len().to_string(),
                baseline.errors.len().to_string(),
            ),
        ] {
            if run != base {
                regressions.push(format!(
                    "suite identity changed: {what} was {base}, now {run} — refresh the baseline"
                ));
            }
        }
        if !regressions.is_empty() {
            return Err(regressions);
        }

        let run = &self.summary;
        let base = &baseline.summary;
        let speedup_floor = base.geomean_speedup * (1.0 - tol.speedup_frac);
        if run.geomean_speedup < speedup_floor {
            regressions.push(format!(
                "geomean speedup regressed: {:.4}x < floor {:.4}x (baseline {:.4}x − {:.0}%)",
                run.geomean_speedup,
                speedup_floor,
                base.geomean_speedup,
                tol.speedup_frac * 100.0
            ));
        } else {
            notes.push(format!(
                "geomean speedup {:.4}x vs baseline {:.4}x (floor {:.4}x) — ok",
                run.geomean_speedup, base.geomean_speedup, speedup_floor
            ));
        }
        let accuracy_floor = base.ssf_accuracy - tol.accuracy_abs;
        if run.ssf_accuracy < accuracy_floor {
            regressions.push(format!(
                "SSF accuracy regressed: {:.1}% < floor {:.1}% (baseline {:.1}% − {:.0} pts)",
                run.ssf_accuracy * 100.0,
                accuracy_floor * 100.0,
                base.ssf_accuracy * 100.0,
                tol.accuracy_abs * 100.0
            ));
        } else {
            notes.push(format!(
                "SSF accuracy {:.1}% vs baseline {:.1}% (floor {:.1}%) — ok",
                run.ssf_accuracy * 100.0,
                base.ssf_accuracy * 100.0,
                accuracy_floor * 100.0
            ));
        }
        if regressions.is_empty() {
            Ok(notes)
        } else {
            Err(regressions)
        }
    }

    /// Noise-aware wall-time gate: compare this run's `perf` section
    /// against `baseline`'s.
    ///
    /// A matrix (total or phase) regresses only when the run's median
    /// lies above the **baseline's CI upper bound** scaled by
    /// `tol.margin_frac` plus `tol.abs_slack_ns` — so the gate is quiet
    /// on timer jitter (which stays inside the CI) and strict on real
    /// slowdowns (which move the median past any plausible noise band).
    /// Ledgers without perf data on either side pass with a note: the
    /// deterministic byte-identity sweeps never carry timings.
    pub fn perf_gate(
        &self,
        baseline: &Ledger,
        tol: PerfTolerance,
    ) -> Result<Vec<String>, Vec<String>> {
        let mut regressions = Vec::new();
        let mut notes = Vec::new();
        if self.schema_version != baseline.schema_version {
            return Err(vec![format!(
                "schema version changed: baseline v{} vs run v{} — refresh the baseline",
                baseline.schema_version, self.schema_version
            )]);
        }
        let (run, base) = match (&self.perf, &baseline.perf) {
            (Some(r), Some(b)) => (r, b),
            (r, b) => {
                notes.push(format!(
                    "perf gate skipped: perf section {} in run, {} in baseline",
                    if r.is_some() { "present" } else { "absent" },
                    if b.is_some() { "present" } else { "absent" },
                ));
                return Ok(notes);
            }
        };
        let ceiling = |ci_hi: f64| ci_hi * (1.0 + tol.margin_frac) + tol.abs_slack_ns;
        for bm in &base.matrices {
            let Some(rm) = run.matrices.iter().find(|m| m.matrix == bm.matrix) else {
                regressions.push(format!(
                    "perf matrix set changed: '{}' in baseline but not in run — refresh the baseline",
                    bm.matrix
                ));
                continue;
            };
            let limit = ceiling(bm.total_ci_hi_ns);
            if rm.total_median_ns > limit {
                regressions.push(format!(
                    "{}: total regressed: median {:.0} ns > ceiling {:.0} ns \
                     (baseline CI [{:.0}, {:.0}] ns + {:.0}% + {:.0} ns slack)",
                    bm.matrix,
                    rm.total_median_ns,
                    limit,
                    bm.total_ci_lo_ns,
                    bm.total_ci_hi_ns,
                    tol.margin_frac * 100.0,
                    tol.abs_slack_ns
                ));
            } else {
                notes.push(format!(
                    "{}: total median {:.0} ns within ceiling {:.0} ns — ok",
                    bm.matrix, rm.total_median_ns, limit
                ));
            }
            for bp in &bm.phases {
                let Some(rp) = rm.phases.iter().find(|p| p.phase == bp.phase) else {
                    continue;
                };
                let limit = ceiling(bp.ci_hi_ns);
                if rp.median_ns > limit {
                    regressions.push(format!(
                        "{}/{}: phase regressed: median {:.0} ns > ceiling {:.0} ns \
                         (baseline CI [{:.0}, {:.0}] ns)",
                        bm.matrix, bp.phase, rp.median_ns, limit, bp.ci_lo_ns, bp.ci_hi_ns
                    ));
                }
                // Allocation budget: a hot path that starts allocating
                // per strip again blows well past margin + slack even
                // though wall time may hide inside the noise band.
                let alloc_ceiling = |base: f64, slack: f64| {
                    base * (1.0 + tol.alloc_margin_frac) + slack
                };
                let count_limit = alloc_ceiling(bp.alloc_count, tol.alloc_slack_count);
                if rp.alloc_count > count_limit {
                    regressions.push(format!(
                        "{}/{}: allocation count regressed: {:.0} > ceiling {:.0} \
                         (baseline {:.0} + {:.0}% + {:.0} slack)",
                        bm.matrix,
                        bp.phase,
                        rp.alloc_count,
                        count_limit,
                        bp.alloc_count,
                        tol.alloc_margin_frac * 100.0,
                        tol.alloc_slack_count
                    ));
                }
                let bytes_limit = alloc_ceiling(bp.alloc_bytes, tol.alloc_slack_bytes);
                if rp.alloc_bytes > bytes_limit {
                    regressions.push(format!(
                        "{}/{}: allocation bytes regressed: {:.0} > ceiling {:.0} \
                         (baseline {:.0} + {:.0}% + {:.0} slack)",
                        bm.matrix,
                        bp.phase,
                        rp.alloc_bytes,
                        bytes_limit,
                        bp.alloc_bytes,
                        tol.alloc_margin_frac * 100.0,
                        tol.alloc_slack_bytes
                    ));
                }
            }
        }
        if regressions.is_empty() {
            Ok(notes)
        } else {
            Err(regressions)
        }
    }
}

impl LedgerRow {
    /// Chosen-kernel time rounded to whole ns for histogram recording.
    fn chosen_ns_rounded(&self) -> u64 {
        let t = match self.chosen.as_str() {
            "b-stationary" => self.bstat_ns,
            _ => self.cstat_ns,
        };
        t.round().max(0.0) as u64
    }
}

/// Sweep the synthetic suite at `scale` through the audited planner and
/// aggregate the ledger. Deterministic: the suite, the dense operands,
/// and the simulator all derive from [`EXPERIMENT_SEED`].
///
/// Matrices run in parallel across the rayon pool; a matrix whose run
/// fails lands in [`Ledger::errors`] instead of aborting the sweep, and
/// both rows and error rows come out in suite order regardless of
/// thread count.
pub fn sweep_ledger(scale: SuiteScale) -> Result<Ledger, SimError> {
    sweep_ledger_faulted(scale, None)
}

/// [`sweep_ledger`] with a [`FaultPlan`] installed in every per-matrix
/// planner. Faults fire at `(seed, site, key)`-determined points, so the
/// faulted ledger is just as byte-reproducible as the clean one; engine
/// faults that exhaust their retry are absorbed per-matrix by the B→C
/// degraded-mode fallback (visible in `fault.*` metrics and the audit),
/// and any error that still stops a matrix carries its fault attribution
/// in [`ErrorRow::fault`].
pub fn sweep_ledger_faulted(
    scale: SuiteScale,
    fault: Option<FaultPlan>,
) -> Result<Ledger, SimError> {
    sweep_ledger_instrumented(scale, fault, None, None)
}

/// [`sweep_ledger_faulted`] with the observability extras wired in:
///
/// * `progress` — a [`ProgressReporter`] fed from inside the parallel
///   sweep (per-matrix phase updates + completion counts). Reporting only
///   observes; the ledger bytes are unaffected.
/// * `perf` — when set, a **serial** wall-time measurement pass runs
///   after the deterministic sweep and attaches a [`PerfSection`]
///   (per-matrix, per-phase medians + bootstrap CIs over `perf.iters`
///   instrumented repetitions, with allocation counters gathered by the
///   counting allocator when it is installed). The pass is serial so one
///   matrix's timing never contends with another's; the audit rows are
///   still the parallel sweep's byte-identical output.
pub fn sweep_ledger_instrumented(
    scale: SuiteScale,
    fault: Option<FaultPlan>,
    perf: Option<&BenchConfig>,
    progress: Option<&ProgressReporter>,
) -> Result<Ledger, SimError> {
    let tile = experiment_tile(scale);
    let k = experiment_k(scale);
    let config = PlannerConfig {
        gpu: experiment_gpu(scale),
        tile_w: tile,
        tile_h: tile,
        threshold: DEFAULT_SSF_THRESHOLD,
        fault,
    };
    let suite = SuiteSpec::new(scale, EXPERIMENT_SEED).try_build();
    // Parallel over matrices; collect() preserves suite order, so the
    // audit/error partition below is schedule-independent. A matrix that
    // fails to generate or to run becomes an error row, not an abort.
    type Outcome = Result<DecisionAudit, (String, Option<FaultRecord>, Option<Vec<LedgerEvent>>)>;
    let outcomes: Vec<(String, Outcome)> = suite
        .iter()
        .enumerate()
        .into_par_iter()
        .map(|(idx, (desc, built))| {
            if let Some(p) = progress {
                p.update(&desc.name, "audit");
            }
            let audit = match built {
                Err(e) => Err((e.to_string(), None, None)),
                Ok(a) => {
                    // A per-matrix context so flight-recorder events are
                    // attributed to exactly this matrix, and a diagnostics
                    // scope so a panic mid-matrix names it in the bundle.
                    let obs = ObsContext::disabled();
                    let _diag = nmt_obs::DiagScope::enter(&desc.name, &obs);
                    obs.flight
                        .record(nmt_obs::EventSite::SweepMatrix, 0, idx as u64, 0);
                    let planner = SpmmPlanner::new(config.clone());
                    let b = random_dense(a.shape().ncols, k, desc.seed ^ 0x16);
                    match planner.explain(&desc.name, a, &b, &obs) {
                        Ok(audit) => {
                            obs.flight
                                .record(nmt_obs::EventSite::SweepMatrix, 1, idx as u64, 0);
                            Ok(audit)
                        }
                        Err(e) => {
                            obs.flight
                                .record(nmt_obs::EventSite::SweepMatrix, 2, idx as u64, 0);
                            let attribution = match &e {
                                SimError::InjectedFault { site, key, detail } => {
                                    Some(FaultRecord {
                                        site: *site,
                                        key: *key,
                                        retried: false,
                                        fell_back: false,
                                        detail: detail.clone(),
                                    })
                                }
                                _ => None,
                            };
                            Err((e.to_string(), attribution, Some(harvest_events(&obs))))
                        }
                    }
                }
            };
            if let Some(p) = progress {
                p.matrix_done(&desc.name);
            }
            (desc.name.clone(), audit)
        })
        .collect();
    let mut audits = Vec::with_capacity(outcomes.len());
    let mut errors = Vec::new();
    for (matrix, outcome) in outcomes {
        match outcome {
            Ok(audit) => audits.push(audit),
            Err((error, fault, events)) => errors.push(ErrorRow {
                matrix,
                error,
                fault,
                events,
            }),
        }
    }
    let mut ledger = Ledger::from_sweep_faulted(
        scale,
        EXPERIMENT_SEED,
        k,
        tile,
        fault,
        &audits,
        errors,
    );
    if let Some(cfg) = perf {
        ledger.perf = Some(measure_perf(&suite, &config, k, cfg, progress));
    }
    Ok(ledger)
}

/// How many flight-recorder events an error row retains.
const ERROR_ROW_EVENT_CAP: usize = 32;

/// Scrub a matrix-local flight recorder into ledger-safe events: take the
/// tail of the content-ordered snapshot (fault-class sites have the
/// highest site codes, so they sort last and are never evicted by the
/// cap) and drop the schedule-dependent fields (timestamp, thread id).
/// The result is byte-identical across thread counts for a fixed seed.
fn harvest_events(obs: &ObsContext) -> Vec<LedgerEvent> {
    let events = obs.flight.snapshot();
    let skip = events.len().saturating_sub(ERROR_ROW_EVENT_CAP);
    events
        .iter()
        .skip(skip)
        .map(|e| LedgerEvent {
            site: e.site.name().to_string(),
            code: e.code,
            a: e.a,
            b: e.b,
        })
        .collect()
}

/// The serial wall-time pass behind `--perf`: rerun each buildable suite
/// matrix through the **instrumented** planner `cfg.warmup + cfg.iters`
/// times, attribute each repetition's spans to phases with
/// [`Profiler::analyze`], and summarize the per-phase self-time samples
/// with the statistical harness.
///
/// Allocation counting is switched on for the duration of the pass (a
/// no-op unless the binary installed [`nmt_obs::CountingAlloc`] as its
/// global allocator) and restored afterwards. Matrices that fail to build
/// or to run are simply absent from the section — their failure is already
/// recorded in the ledger's error rows.
fn measure_perf(
    suite: &[(nmt_matgen::MatrixDesc, Result<nmt_formats::Csr, nmt_matgen::MatgenError>)],
    config: &PlannerConfig,
    k: usize,
    cfg: &BenchConfig,
    progress: Option<&ProgressReporter>,
) -> PerfSection {
    let was_counting = nmt_obs::alloc::enable_counting(true);
    // Start the engine's buffer pools from a reproducible (empty) state:
    // whatever the parallel sweep left shelved is schedule-dependent, and
    // the per-phase alloc counts below must not inherit that.
    nmt_engine::mem::reset_pools();
    let mut matrices = Vec::new();
    for (desc, built) in suite {
        let Ok(a) = built else { continue };
        if let Some(p) = progress {
            p.update(&desc.name, "perf");
        }
        let planner = SpmmPlanner::new(config.clone());
        // One instrumented repetition: spans + counters land in a fresh
        // recorder, then the profiler folds them into per-phase self time.
        let measure = || -> Option<nmt_obs::Profile> {
            let obs = ObsContext::enabled();
            {
                let mut s = obs.span("matgen.generate");
                let b = random_dense(a.shape().ncols, k, desc.seed ^ 0x16);
                s.counter("cells", (b.nrows() * b.ncols()) as f64);
                drop(s);
                planner.execute_with_obs(a, &b, &obs).ok()?;
            }
            Some(Profiler::analyze(&obs.recorder.snapshot()))
        };
        for _ in 0..cfg.warmup {
            if measure().is_none() {
                break;
            }
        }
        let mut window_samples = Vec::with_capacity(cfg.iters as usize);
        let mut phase_samples: BTreeMap<Phase, Vec<f64>> = BTreeMap::new();
        let mut phase_allocs: BTreeMap<Phase, (f64, f64)> = BTreeMap::new();
        for _ in 0..cfg.iters {
            let Some(profile) = measure() else { break };
            window_samples.push(profile.window_ns as f64);
            for (phase, totals) in &profile.phases {
                phase_samples
                    .entry(*phase)
                    .or_default()
                    .push(totals.self_ns as f64);
                let acc = phase_allocs.entry(*phase).or_default();
                acc.0 += totals.alloc_count as f64;
                acc.1 += totals.alloc_bytes as f64;
            }
        }
        // A matrix whose instrumented run errors (e.g. under fault
        // injection) contributes nothing; its error row tells the story.
        if window_samples.len() < cfg.iters as usize {
            continue;
        }
        let total = summarize(&window_samples, cfg);
        let n = window_samples.len() as f64;
        let phases = phase_samples
            .iter()
            .filter(|(_, samples)| samples.iter().any(|&s| s > 0.0))
            .map(|(phase, samples)| {
                let stats = summarize(samples, cfg);
                let (count, bytes) = phase_allocs.get(phase).copied().unwrap_or_default();
                PhasePerf {
                    phase: phase.name().to_string(),
                    median_ns: stats.median_ns,
                    mad_ns: stats.mad_ns,
                    ci_lo_ns: stats.ci_lo_ns,
                    ci_hi_ns: stats.ci_hi_ns,
                    samples: stats.samples,
                    rejected: stats.rejected,
                    alloc_count: count / n,
                    alloc_bytes: bytes / n,
                }
            })
            .collect();
        matrices.push(MatrixPerf {
            matrix: desc.name.clone(),
            total_median_ns: total.median_ns,
            total_ci_lo_ns: total.ci_lo_ns,
            total_ci_hi_ns: total.ci_hi_ns,
            phases,
        });
    }
    nmt_obs::alloc::enable_counting(was_counting);
    PerfSection {
        warmup: u64::from(cfg.warmup),
        iters: u64::from(cfg.iters),
        resamples: u64::from(cfg.resamples),
        matrices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced sweep over the quick suite so tests stay fast; mirrors
    /// [`sweep_ledger`] with the test-small planner.
    fn quick_ledger(seed: u64) -> Ledger {
        let config = PlannerConfig::test_small();
        let tile = config.tile_w;
        let suite = SuiteSpec::quick(seed).build();
        let audits: Vec<DecisionAudit> = suite
            .iter()
            .map(|(desc, a)| {
                let b = random_dense(a.shape().ncols, 8, desc.seed ^ 0x16);
                SpmmPlanner::new(config.clone())
                    .explain(&desc.name, a, &b, &ObsContext::disabled())
                    .expect("audit runs")
            })
            .collect();
        Ledger::from_audits(SuiteScale::Small, seed, 8, tile, &audits)
    }

    #[test]
    fn ledger_is_byte_identical_across_runs() {
        let a = quick_ledger(3);
        let b = quick_ledger(3);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json(), "same seed must give same bytes");
    }

    #[test]
    fn ledger_roundtrips_and_aggregates() {
        let ledger = quick_ledger(5);
        assert_eq!(ledger.schema_version, LEDGER_SCHEMA_VERSION);
        assert!(!ledger.rows.is_empty());
        let s = &ledger.summary;
        assert_eq!(s.matrices, ledger.rows.len());
        assert!(s.geomean_speedup > 0.0);
        // The oracle bounds the hybrid from above by construction.
        assert!(s.oracle_geomean_speedup >= s.geomean_speedup - 1e-12);
        assert!((0.0..=1.0).contains(&s.ssf_accuracy));
        assert_eq!(
            s.mispicks,
            ledger.rows.iter().filter(|r| r.mispick).count()
        );
        assert!(s.traffic_bytes.values().sum::<u64>() > 0);
        assert!(s.chosen_latency_ns.p50 <= s.chosen_latency_ns.p95);
        assert!(s.chosen_latency_ns.p95 <= s.chosen_latency_ns.p99);
        let back = Ledger::from_json(&ledger.to_json()).expect("parses");
        assert_eq!(back, ledger);
        assert!(ledger.render_summary().contains("matrices"));
    }

    #[test]
    fn gate_passes_identical_and_catches_regressions() {
        let ledger = quick_ledger(7);
        // Identical run passes.
        let notes = ledger.gate(&ledger, GateTolerance::default()).expect("ok");
        assert_eq!(notes.len(), 2);

        // Injected speedup regression beyond tolerance fails.
        let mut slow = ledger.clone();
        slow.summary.geomean_speedup *= 0.80;
        let errs = slow
            .gate(&ledger, GateTolerance::default())
            .expect_err("regression must fire");
        assert!(errs.iter().any(|e| e.contains("geomean speedup regressed")));

        // Injected accuracy regression fails.
        let mut inaccurate = ledger.clone();
        inaccurate.summary.ssf_accuracy = (ledger.summary.ssf_accuracy - 0.2).max(0.0);
        let errs = inaccurate
            .gate(&ledger, GateTolerance::default())
            .expect_err("accuracy gate must fire");
        assert!(errs.iter().any(|e| e.contains("SSF accuracy regressed")));

        // Within-tolerance wobble passes.
        let mut wobble = ledger.clone();
        wobble.summary.geomean_speedup *= 0.98;
        assert!(wobble.gate(&ledger, GateTolerance::default()).is_ok());
    }

    #[test]
    fn gate_rejects_schema_and_identity_mismatch() {
        let ledger = quick_ledger(9);
        let mut other_schema = ledger.clone();
        other_schema.schema_version += 1;
        let errs = other_schema
            .gate(&ledger, GateTolerance::default())
            .expect_err("schema mismatch");
        assert!(errs[0].contains("schema version"));

        let mut other_suite = ledger.clone();
        other_suite.seed ^= 1;
        other_suite.rows.pop();
        let errs = other_suite
            .gate(&ledger, GateTolerance::default())
            .expect_err("identity mismatch");
        assert!(errs.iter().any(|e| e.contains("seed")));
        assert!(errs.iter().any(|e| e.contains("matrix count")));
    }

    #[test]
    fn error_rows_are_reported_not_fatal() {
        let clean = quick_ledger(11);
        let errored = Ledger::from_sweep(
            SuiteScale::Small,
            11,
            8,
            clean.tile,
            &[],
            vec![ErrorRow {
                matrix: "broken".to_string(),
                error: "shape mismatch: inner dimensions must agree".to_string(),
                fault: None,
                events: Some(vec![LedgerEvent {
                    site: "sweep-matrix".to_string(),
                    code: 2,
                    a: 0,
                    b: 0,
                }]),
            }],
        );
        assert_eq!(errored.errors.len(), 1);
        assert_eq!(errored.summary.matrices, 0);
        assert!(errored.render_summary().contains("1 ERRORED"));
        assert!(!clean.render_summary().contains("ERRORED"));
        let back = Ledger::from_json(&errored.to_json()).expect("parses");
        assert_eq!(back, errored);
    }

    #[test]
    fn gate_rejects_error_row_count_change() {
        let clean = quick_ledger(13);
        let mut errored = clean.clone();
        errored.errors.push(ErrorRow {
            matrix: "broken".to_string(),
            error: "boom".to_string(),
            fault: None,
            events: None,
        });
        let errs = errored
            .gate(&clean, GateTolerance::default())
            .expect_err("new error row must gate");
        assert!(errs.iter().any(|e| e.contains("error-row count")));
        // Symmetric: a baseline with errors and a clean run also mismatch
        // (the baseline must be consciously refreshed).
        let errs = clean
            .gate(&errored, GateTolerance::default())
            .expect_err("count mismatch either way");
        assert!(errs.iter().any(|e| e.contains("error-row count")));
    }

    #[test]
    fn faulted_ledger_identity_gates_against_clean() {
        let clean = quick_ledger(15);
        assert_eq!(clean.fault_seed, None);
        assert_eq!(clean.fault_rate_ppm, None);

        let plan = FaultPlan::new(0xFA17, 250_000);
        let mut faulted = clean.clone();
        faulted.fault_seed = Some(plan.seed);
        faulted.fault_rate_ppm = Some(plan.rate_ppm);
        let errs = faulted
            .gate(&clean, GateTolerance::default())
            .expect_err("faulted vs clean must mismatch");
        assert!(errs.iter().any(|e| e.contains("fault seed")));
        assert!(errs.iter().any(|e| e.contains("fault rate")));
        // Same plan on both sides compares normally.
        assert!(faulted.gate(&faulted, GateTolerance::default()).is_ok());

        // A faulted aggregation stamps the plan identity.
        let stamped = Ledger::from_sweep_faulted(
            SuiteScale::Small,
            15,
            8,
            clean.tile,
            Some(plan),
            &[],
            Vec::new(),
        );
        assert_eq!(stamped.fault_seed, Some(0xFA17));
        assert_eq!(stamped.fault_rate_ppm, Some(250_000));
        let back = Ledger::from_json(&stamped.to_json()).expect("parses");
        assert_eq!(back, stamped);
    }

    #[test]
    fn clean_ledger_json_has_no_events_key() {
        // `events` is additive and error-row-only: a clean sweep's JSON
        // must not mention it, so committed pre-field baselines stay
        // byte-identical.
        let ledger = quick_ledger(19);
        assert!(ledger.errors.is_empty());
        assert!(!ledger.to_json().contains("\"events\""));
        // And old files without the key parse with `events: None`.
        let errored = Ledger::from_sweep(
            SuiteScale::Small,
            19,
            8,
            ledger.tile,
            &[],
            vec![ErrorRow {
                matrix: "old".to_string(),
                error: "boom".to_string(),
                fault: None,
                events: None,
            }],
        );
        // Remove the key outright (with its leading comma), the same way
        // the pre-v4 `perf` test emulates an older file.
        let json = errored.to_json();
        let start = json.find("\"events\"").expect("events field serialized");
        let comma = json[..start].rfind(',').expect("comma before events");
        let null_end = start + json[start..].find("null").expect("null events") + 4;
        let stripped = format!("{}{}", &json[..comma], &json[null_end..]);
        let back = Ledger::from_json(&stripped).expect("missing events key parses");
        assert_eq!(back.errors[0].events, None);
    }

    #[test]
    fn harvest_events_scrubs_caps_and_keeps_fault_tail() {
        use nmt_obs::EventSite;
        let obs = ObsContext::disabled();
        // More benign events than the cap, plus a handful of fault-class
        // events; content order sorts fault sites last, so the cap must
        // never evict them.
        for i in 0..60u64 {
            obs.flight.record(EventSite::FarmStrip, 0, i, 0);
        }
        obs.flight.record(EventSite::FaultConvertStrip, 2, 7, 0xBEEF);
        obs.flight.record(EventSite::FaultPartitionDropout, 1, 3, 0);
        let harvested = harvest_events(&obs);
        assert_eq!(harvested.len(), ERROR_ROW_EVENT_CAP);
        let last = &harvested[harvested.len() - 1];
        assert_eq!(last.site, "fault-partition-dropout");
        assert_eq!(harvested[harvested.len() - 2].site, "fault-convert-strip");
        assert_eq!(harvested[harvested.len() - 2].code, 2);
        assert_eq!(harvested[harvested.len() - 2].b, 0xBEEF);

        // Same recording sequence, fresh context: identical harvest —
        // the scrub drops every schedule-dependent field.
        let obs2 = ObsContext::disabled();
        for i in 0..60u64 {
            obs2.flight.record(EventSite::FarmStrip, 0, i, 0);
        }
        obs2.flight.record(EventSite::FaultConvertStrip, 2, 7, 0xBEEF);
        obs2.flight.record(EventSite::FaultPartitionDropout, 1, 3, 0);
        assert_eq!(harvested, harvest_events(&obs2));
    }

    #[test]
    fn filenames_follow_scale() {
        assert_eq!(ledger_filename(SuiteScale::Small), "BENCH_small.json");
        assert_eq!(ledger_filename(SuiteScale::Medium), "BENCH_medium.json");
        assert_eq!(ledger_filename(SuiteScale::Paper), "BENCH_paper.json");
    }

    /// A synthetic perf section whose timings scale with `scale_ns`, so a
    /// doctored (shrunken) baseline is one call away.
    fn perf_section(scale_ns: f64) -> PerfSection {
        PerfSection {
            warmup: 1,
            iters: 8,
            resamples: 100,
            matrices: vec![MatrixPerf {
                matrix: "m0".to_string(),
                total_median_ns: 1_000_000.0 * scale_ns,
                total_ci_lo_ns: 900_000.0 * scale_ns,
                total_ci_hi_ns: 1_100_000.0 * scale_ns,
                phases: vec![PhasePerf {
                    phase: "kernel".to_string(),
                    median_ns: 600_000.0 * scale_ns,
                    mad_ns: 10_000.0 * scale_ns,
                    ci_lo_ns: 550_000.0 * scale_ns,
                    ci_hi_ns: 650_000.0 * scale_ns,
                    samples: 8,
                    rejected: 0,
                    alloc_count: 10.0,
                    alloc_bytes: 4096.0,
                }],
            }],
        }
    }

    #[test]
    fn perf_gate_skips_without_perf_sections() {
        let ledger = quick_ledger(17);
        let notes = ledger
            .perf_gate(&ledger, PerfTolerance::default())
            .expect("no perf on either side is a skip, not a failure");
        assert!(notes[0].contains("skipped"), "{notes:?}");

        let mut with = ledger.clone();
        with.perf = Some(perf_section(1.0));
        let notes = with
            .perf_gate(&ledger, PerfTolerance::default())
            .expect("one-sided perf also skips");
        assert!(notes[0].contains("absent in baseline"), "{notes:?}");
    }

    #[test]
    fn perf_gate_passes_identical_and_fires_on_doctored_baseline() {
        let mut run = quick_ledger(19);
        run.perf = Some(perf_section(1.0));
        let notes = run
            .perf_gate(&run, PerfTolerance::default())
            .expect("identical run passes");
        assert!(notes.iter().any(|n| n.contains("within ceiling")), "{notes:?}");

        // Median drift above the baseline CI but inside the noise margin
        // still passes: 1.2 ms median vs a 1.1 ms CI-hi * 1.5 ceiling.
        let mut wobble = run.clone();
        let mut p = perf_section(1.0);
        p.matrices[0].total_median_ns = 1_200_000.0;
        wobble.perf = Some(p);
        assert!(wobble.perf_gate(&run, PerfTolerance::default()).is_ok());

        // A baseline doctored 1000x faster puts the run far past any
        // noise band: both the total and the phase gates must fire.
        let mut doctored = run.clone();
        doctored.perf = Some(perf_section(0.001));
        let errs = run
            .perf_gate(&doctored, PerfTolerance::default())
            .expect_err("doctored baseline must fire");
        assert!(errs.iter().any(|e| e.contains("total regressed")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("phase regressed")), "{errs:?}");
    }

    #[test]
    fn perf_gate_fires_on_alloc_regression_and_tolerates_wobble() {
        let mut base = quick_ledger(31);
        base.perf = Some(perf_section(1.0)); // kernel: 10 allocs / 4096 B

        // Per-strip allocation creep: counts and bytes blow far past
        // margin + slack even though wall time is identical.
        let mut run = base.clone();
        let mut p = perf_section(1.0);
        p.matrices[0].phases[0].alloc_count = 10_000.0;
        p.matrices[0].phases[0].alloc_bytes = 50_000_000.0;
        run.perf = Some(p);
        let errs = run
            .perf_gate(&base, PerfTolerance::default())
            .expect_err("alloc blowup must fire");
        assert!(
            errs.iter().any(|e| e.contains("allocation count regressed")),
            "{errs:?}"
        );
        assert!(
            errs.iter().any(|e| e.contains("allocation bytes regressed")),
            "{errs:?}"
        );

        // Pool steady-state wobble stays inside margin + slack.
        let mut wobble = base.clone();
        let mut p = perf_section(1.0);
        p.matrices[0].phases[0].alloc_count = 14.0;
        p.matrices[0].phases[0].alloc_bytes = 6_000.0;
        wobble.perf = Some(p);
        assert!(wobble.perf_gate(&base, PerfTolerance::default()).is_ok());
    }

    #[test]
    fn perf_gate_flags_matrix_set_change() {
        let mut run = quick_ledger(21);
        run.perf = Some(perf_section(1.0));
        let mut base = run.clone();
        let mut p = perf_section(1.0);
        p.matrices[0].matrix = "renamed".to_string();
        base.perf = Some(p);
        let errs = run
            .perf_gate(&base, PerfTolerance::default())
            .expect_err("baseline matrix missing from run");
        assert!(errs[0].contains("matrix set changed"), "{errs:?}");
    }

    #[test]
    fn perf_section_roundtrips_and_missing_field_parses_as_none() {
        let mut ledger = quick_ledger(23);
        ledger.perf = Some(perf_section(1.0));
        let back = Ledger::from_json(&ledger.to_json()).expect("parses");
        assert_eq!(back, ledger);

        // Pre-v4 files have no `perf` key at all; the Option must land as
        // None. Strip the serialized null (and its leading comma) to
        // reproduce that shape.
        let clean = quick_ledger(23);
        let json = clean.to_json();
        let start = json.find("\"perf\"").expect("perf field serialized");
        let comma = json[..start].rfind(',').expect("comma before perf");
        let null_end = start + json[start..].find("null").expect("null perf") + 4;
        let stripped = format!("{}{}", &json[..comma], &json[null_end..]);
        let back = Ledger::from_json(&stripped).expect("parses without a perf key");
        assert_eq!(back.perf, None);
        assert_eq!(back, clean);
    }

    #[test]
    fn measure_perf_attributes_phases_over_quick_suite() {
        let config = PlannerConfig::test_small();
        let suite: Vec<_> = SuiteSpec::quick(29)
            .build()
            .into_iter()
            .map(|(desc, csr)| (desc, Ok(csr)))
            .collect();
        let mut cfg = BenchConfig::smoke();
        cfg.warmup = 1;
        cfg.iters = 3;
        let section = measure_perf(&suite, &config, 8, &cfg, None);
        assert_eq!(section.iters, 3);
        assert_eq!(section.matrices.len(), suite.len(), "quick suite all builds");
        for m in &section.matrices {
            assert!(m.total_median_ns > 0.0, "{}: window must be timed", m.matrix);
            assert!(m.total_ci_lo_ns <= m.total_median_ns);
            assert!(m.total_median_ns <= m.total_ci_hi_ns);
            assert!(!m.phases.is_empty(), "{}: phases attributed", m.matrix);
            for p in &m.phases {
                assert!(
                    Phase::from_name(&p.phase).is_some(),
                    "unknown phase name {:?}",
                    p.phase
                );
                assert_eq!(
                    p.samples + p.rejected,
                    3,
                    "every iteration sampled (kept + MAD-rejected)"
                );
            }
            assert!(
                m.phases.iter().any(|p| p.phase == Phase::Kernel.name()),
                "{}: the baseline kernel always runs",
                m.matrix
            );
        }
    }
}
