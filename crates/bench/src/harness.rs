//! Statistical microbench harness: warmup, fixed-iteration batches,
//! median/MAD outlier rejection, and bootstrap confidence intervals.
//!
//! The control flow is **deterministic in structure**: iteration counts
//! come from [`BenchConfig`] and are never adapted from elapsed time, and
//! the bootstrap resampling uses a splitmix64 stream seeded from the
//! config — so two runs of the same build execute the identical sequence
//! of work and differ only in the measured nanoseconds. The statistics
//! ([`summarize`]) are a pure function of the sample vector, which is
//! what the ledger's perf section and the noise-aware gate consume.
//!
//! This file is the workspace's sanctioned wall-clock timer core outside
//! `nmt-obs` (named in nmt-lint's wallclock allow-list): everything else
//! that wants a duration either calls [`run`] or derives it from recorder
//! spans.

use std::time::Instant;

/// Iteration plan and statistics knobs for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchConfig {
    /// Untimed warmup iterations (cache/branch-predictor settling).
    pub warmup: u32,
    /// Timed iterations; each contributes one sample.
    pub iters: u32,
    /// Bootstrap resamples for the confidence interval.
    pub resamples: u32,
    /// Seed for the bootstrap's splitmix64 stream.
    pub seed: u64,
    /// Outlier cut: samples farther than `mad_k` scaled-MADs from the
    /// median are rejected before the interval is computed.
    pub mad_k: f64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup: 3,
            iters: 30,
            resamples: 200,
            seed: crate::EXPERIMENT_SEED,
            mad_k: 5.0,
        }
    }
}

impl BenchConfig {
    /// A reduced-iteration plan for CI smoke runs.
    pub fn smoke() -> Self {
        BenchConfig {
            warmup: 1,
            iters: 8,
            resamples: 100,
            ..Self::default()
        }
    }
}

/// Summary statistics for one benchmark: medians and a bootstrap CI over
/// the outlier-filtered samples, all in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchStats {
    /// Median of the retained samples.
    pub median_ns: f64,
    /// Scaled median-absolute-deviation (MAD × 1.4826, the normal-
    /// consistency constant) of the retained samples.
    pub mad_ns: f64,
    /// Bootstrap 2.5th percentile of the resampled medians.
    pub ci_lo_ns: f64,
    /// Bootstrap 97.5th percentile of the resampled medians.
    pub ci_hi_ns: f64,
    /// Arithmetic mean of the retained samples.
    pub mean_ns: f64,
    /// Samples rejected as outliers.
    pub rejected: u64,
    /// Samples retained (so `rejected + samples` = total measured).
    pub samples: u64,
}

impl BenchStats {
    /// All-zero stats (used when a benchmark produced no samples).
    pub fn empty() -> Self {
        BenchStats {
            median_ns: 0.0,
            mad_ns: 0.0,
            ci_lo_ns: 0.0,
            ci_hi_ns: 0.0,
            mean_ns: 0.0,
            rejected: 0,
            samples: 0,
        }
    }
}

/// The splitmix64 step — the repo's standard deterministic PRNG.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Median of a non-empty, already-sorted slice.
fn sorted_median(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Median of an arbitrary slice (0 when empty).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted_median(&sorted)
}

/// Fold raw samples into [`BenchStats`]: median → MAD outlier cut →
/// bootstrap CI of the median over the survivors. Pure and deterministic
/// (the bootstrap stream is seeded from `cfg.seed`), so the gate's
/// behavior is reproducible from a ledger file alone.
pub fn summarize(samples: &[f64], cfg: &BenchConfig) -> BenchStats {
    if samples.is_empty() {
        return BenchStats::empty();
    }
    let raw_median = median(samples);
    let abs_dev: Vec<f64> = samples.iter().map(|&x| (x - raw_median).abs()).collect();
    // 1.4826 makes the MAD estimate the standard deviation under
    // normality, so `mad_k` reads in sigma-like units.
    let scaled_mad = median(&abs_dev) * 1.4826;

    // With a zero MAD (over half the samples identical) every deviation
    // would be "infinitely many MADs" out; keep everything instead.
    let retained: Vec<f64> = if scaled_mad > 0.0 {
        samples
            .iter()
            .copied()
            .filter(|&x| (x - raw_median).abs() <= cfg.mad_k * scaled_mad)
            .collect()
    } else {
        samples.to_vec()
    };
    let rejected = (samples.len() - retained.len()) as u64;

    let mut sorted = retained.clone();
    sorted.sort_by(f64::total_cmp);
    let med = sorted_median(&sorted);
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;

    // Bootstrap: resample the retained set with replacement, take each
    // resample's median, and report the central 95% of those medians.
    let mut state = cfg.seed;
    let n = sorted.len();
    let mut boot_medians = Vec::with_capacity(cfg.resamples.max(1) as usize);
    for _ in 0..cfg.resamples.max(1) {
        let mut resample: Vec<f64> = (0..n)
            .map(|_| sorted[(splitmix64(&mut state) % n as u64) as usize])
            .collect();
        resample.sort_by(f64::total_cmp);
        boot_medians.push(sorted_median(&resample));
    }
    boot_medians.sort_by(f64::total_cmp);
    let pct = |p: f64| {
        let idx = ((boot_medians.len() - 1) as f64 * p).round() as usize;
        boot_medians[idx.min(boot_medians.len() - 1)]
    };

    BenchStats {
        median_ns: med,
        mad_ns: scaled_mad,
        ci_lo_ns: pct(0.025).min(med),
        ci_hi_ns: pct(0.975).max(med),
        mean_ns: mean,
        rejected,
        samples: n as u64,
    }
}

/// Run `f` under the harness: `cfg.warmup` untimed calls, then
/// `cfg.iters` timed calls, then [`summarize`]. The iteration structure
/// depends only on `cfg`, never on the clock.
pub fn run<F: FnMut()>(cfg: &BenchConfig, mut f: F) -> BenchStats {
    for _ in 0..cfg.warmup {
        f();
    }
    let mut samples = Vec::with_capacity(cfg.iters as usize);
    for _ in 0..cfg.iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_nanos() as f64);
    }
    summarize(&samples, cfg)
}

/// Time one closure invocation, returning its value and the elapsed
/// nanoseconds. The sanctioned single-shot timer for callers that build
/// their own sample vectors (e.g. the ledger's per-phase perf pass).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_nanos() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn summarize_is_deterministic() {
        let cfg = BenchConfig::default();
        let samples: Vec<f64> = (0..40).map(|i| 1000.0 + (i * 37 % 97) as f64).collect();
        let a = summarize(&samples, &cfg);
        let b = summarize(&samples, &cfg);
        assert_eq!(a, b, "same samples + seed => identical stats");
    }

    #[test]
    fn outliers_are_rejected_by_mad() {
        let cfg = BenchConfig::default();
        let mut samples: Vec<f64> = (0..29).map(|i| 1000.0 + (i % 7) as f64).collect();
        samples.push(1_000_000.0); // a GC-pause-style spike
        let stats = summarize(&samples, &cfg);
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.samples, 29);
        assert!(stats.median_ns < 1010.0);
        assert!(stats.ci_hi_ns < 1010.0, "CI must not absorb the spike");
    }

    #[test]
    fn zero_mad_keeps_all_samples() {
        let cfg = BenchConfig::default();
        let samples = vec![500.0; 20];
        let stats = summarize(&samples, &cfg);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.samples, 20);
        assert_eq!(stats.median_ns, 500.0);
        assert_eq!(stats.ci_lo_ns, 500.0);
        assert_eq!(stats.ci_hi_ns, 500.0);
    }

    #[test]
    fn ci_brackets_the_median() {
        let cfg = BenchConfig::default();
        let samples: Vec<f64> = (0..50).map(|i| 900.0 + (i * 53 % 211) as f64).collect();
        let stats = summarize(&samples, &cfg);
        assert!(stats.ci_lo_ns <= stats.median_ns);
        assert!(stats.median_ns <= stats.ci_hi_ns);
        assert!(stats.mad_ns > 0.0);
    }

    #[test]
    fn wider_spread_means_wider_ci() {
        let cfg = BenchConfig::default();
        let tight: Vec<f64> = (0..30).map(|i| 1000.0 + (i % 3) as f64).collect();
        let wide: Vec<f64> = (0..30).map(|i| 1000.0 + (i * 97 % 500) as f64).collect();
        let t = summarize(&tight, &cfg);
        let w = summarize(&wide, &cfg);
        assert!(
            w.ci_hi_ns - w.ci_lo_ns > t.ci_hi_ns - t.ci_lo_ns,
            "bootstrap CI tracks dispersion"
        );
    }

    #[test]
    fn run_counts_iterations_exactly() {
        let cfg = BenchConfig {
            warmup: 2,
            iters: 9,
            ..BenchConfig::default()
        };
        let mut calls = 0u32;
        let stats = run(&cfg, || calls += 1);
        assert_eq!(calls, 11, "warmup + timed, nothing adaptive");
        assert_eq!(stats.samples + stats.rejected, 9);
    }

    #[test]
    fn time_once_returns_value_and_nonnegative_ns() {
        let (v, ns) = time_once(|| 6 * 7);
        assert_eq!(v, 42);
        assert!(ns >= 0.0);
    }

    #[test]
    fn splitmix_stream_is_stable() {
        let mut s = 0x5C19u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
        let mut s2 = 0x5C19u64;
        assert_eq!(splitmix64(&mut s2), a, "seeded stream replays");
    }
}
