//! Property test: the L2 slice agrees with a brute-force reference model
//! of a set-associative LRU cache on arbitrary access sequences.

use nmt_sim::cache::{L2Slice, Probe};
use proptest::prelude::*;

/// Reference model: per-set vector of (line, dirty) in LRU order
/// (front = least recent).
struct RefCache {
    sets: usize,
    ways: usize,
    line_bytes: u64,
    content: Vec<Vec<(u64, bool)>>,
}

impl RefCache {
    fn new(capacity: usize, line_bytes: usize, ways: usize) -> Self {
        let sets = capacity / line_bytes / ways;
        Self {
            sets,
            ways,
            line_bytes: line_bytes as u64,
            content: vec![Vec::new(); sets],
        }
    }

    fn access(&mut self, addr: u64, write: bool) -> (bool, bool) {
        let line = addr / self.line_bytes;
        let set = (line % self.sets as u64) as usize;
        let entries = &mut self.content[set];
        if let Some(pos) = entries.iter().position(|&(l, _)| l == line) {
            let (l, d) = entries.remove(pos);
            entries.push((l, d || write));
            (true, false)
        } else {
            let mut wb = false;
            if entries.len() == self.ways {
                let (_, dirty) = entries.remove(0);
                wb = dirty;
            }
            entries.push((line, write));
            (false, wb)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn l2_matches_reference_lru(
        accesses in proptest::collection::vec((0u64..8192, proptest::bool::ANY), 1..400)
    ) {
        // 1 KB cache, 64 B lines, 4 ways => 4 sets.
        let mut dut = L2Slice::new(1024, 64, 4);
        let mut reference = RefCache::new(1024, 64, 4);
        for (i, &(addr, write)) in accesses.iter().enumerate() {
            let got = dut.access(addr, write);
            let (hit, wb) = reference.access(addr, write);
            match got {
                Probe::Hit => prop_assert!(hit, "access {i} (addr {addr}): dut hit, ref miss"),
                Probe::Miss { dirty_writeback } => {
                    prop_assert!(!hit, "access {i} (addr {addr}): dut miss, ref hit");
                    prop_assert_eq!(dirty_writeback, wb, "writeback mismatch at access {}", i);
                }
            }
        }
    }

    #[test]
    fn flush_resets_everything(
        accesses in proptest::collection::vec((0u64..4096, proptest::bool::ANY), 1..100)
    ) {
        let mut dut = L2Slice::new(512, 64, 2);
        let mut dirty_lines = std::collections::BTreeSet::new();
        let mut resident = std::collections::BTreeSet::new();
        // Mirror residency coarsely to bound the flush() dirty count.
        for &(addr, write) in &accesses {
            dut.access(addr, write);
            let line = addr / 64;
            resident.insert(line);
            if write {
                dirty_lines.insert(line);
            }
        }
        let flushed = dut.flush();
        // At most `ways * sets` lines can be dirty at once.
        prop_assert!(flushed <= 8);
        prop_assert!(flushed <= dirty_lines.len());
        // After a flush every previously-resident line misses on its first
        // re-access (probing distinct lines only — the probe loop itself
        // refills the cache).
        let mut probed = std::collections::BTreeSet::new();
        for &(addr, _) in accesses.iter().take(8) {
            if probed.insert(addr / 64) {
                let miss = matches!(dut.access(addr, false), Probe::Miss { .. });
                prop_assert!(miss, "post-flush access must miss");
            }
        }
    }
}
