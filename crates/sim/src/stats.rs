//! Counters and reports produced by a simulated kernel launch.

use serde::{Deserialize, Serialize};

/// Which logical data structure a memory access belongs to. Tagging lets
/// experiments report per-matrix traffic exactly as Table 1 does
/// (A small / B large / C large) plus the engine's metadata stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// The sparse input matrix A (values + metadata).
    MatA,
    /// The dense input matrix B.
    MatB,
    /// The dense output matrix C.
    MatC,
    /// Near-memory engine output stream (tiled DCSR headed to an SM).
    Engine,
    /// Anything else (scratch, arguments).
    Other,
}

impl TrafficClass {
    /// All classes, for iteration in reports. Declaration order — `idx`
    /// is derived from it, so the two cannot diverge.
    pub const ALL: [TrafficClass; 5] = [
        TrafficClass::MatA,
        TrafficClass::MatB,
        TrafficClass::MatC,
        TrafficClass::Engine,
        TrafficClass::Other,
    ];

    /// Number of classes (`ALL.len()`).
    pub const COUNT: usize = TrafficClass::ALL.len();

    /// Dotted-metric-name segment for this class (`sim.dram_bytes.mat_a`).
    pub const fn label(self) -> &'static str {
        match self {
            TrafficClass::MatA => "mat_a",
            TrafficClass::MatB => "mat_b",
            TrafficClass::MatC => "mat_c",
            TrafficClass::Engine => "engine",
            TrafficClass::Other => "other",
        }
    }

    pub(crate) const fn idx(self) -> usize {
        self as usize
    }
}

/// Instruction classes tracked per warp execution — the categories of the
/// paper's Figure 7 (NVPROF execution-count breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrClass {
    /// Integer ALU (address arithmetic, index manipulation).
    Integer,
    /// Branches, loop control, predicate evaluation.
    ControlFlow,
    /// FP32 multiply-add work.
    Fp,
    /// Loads/stores (global or shared).
    Memory,
}

impl InstrClass {
    /// All classes, for iteration in reports. Declaration order — `idx`
    /// is derived from it, so the two cannot diverge.
    pub const ALL: [InstrClass; 4] = [
        InstrClass::Integer,
        InstrClass::ControlFlow,
        InstrClass::Fp,
        InstrClass::Memory,
    ];

    /// Number of classes (`ALL.len()`).
    pub const COUNT: usize = InstrClass::ALL.len();

    /// Dotted-metric-name segment for this class.
    pub const fn label(self) -> &'static str {
        match self {
            InstrClass::Integer => "integer",
            InstrClass::ControlFlow => "control_flow",
            InstrClass::Fp => "fp",
            InstrClass::Memory => "memory",
        }
    }

    pub(crate) const fn idx(self) -> usize {
        self as usize
    }
}

/// Per-class byte counters indexed by [`TrafficClass`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TrafficBytes {
    bytes: [u64; TrafficClass::COUNT],
}

impl TrafficBytes {
    /// Add `n` bytes to `class`.
    pub fn add(&mut self, class: TrafficClass, n: u64) {
        // nmt-lint: allow(slice-index) — idx() is an enum discriminant < COUNT
        self.bytes[class.idx()] += n;
    }

    /// Bytes recorded for `class`.
    pub fn get(&self, class: TrafficClass) -> u64 {
        // nmt-lint: allow(slice-index) — idx() is an enum discriminant < COUNT
        self.bytes[class.idx()]
    }

    /// Sum over all classes.
    pub fn total(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: &TrafficBytes) {
        for (mine, theirs) in self.bytes.iter_mut().zip(&other.bytes) {
            *mine += theirs;
        }
    }
}

/// Thread-slot execution counts per instruction class, with inactive slots
/// tracked separately (Figure 7's "Inactive": thread executions that
/// "did not execute any instruction because the thread was predicated or
/// inactive due to divergence").
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WarpExecStats {
    /// Active thread-slot executions per [`InstrClass`].
    pub active: [u64; InstrClass::COUNT],
    /// Inactive (predicated-off / divergent) thread-slot executions.
    pub inactive: u64,
}

impl WarpExecStats {
    /// Record one warp instruction of `class` with `active_lanes` of
    /// `warp_size` lanes doing useful work.
    pub fn record(&mut self, class: InstrClass, active_lanes: usize, warp_size: usize) {
        debug_assert!(active_lanes <= warp_size);
        // nmt-lint: allow(slice-index) — idx() is an enum discriminant < COUNT
        self.active[class.idx()] += active_lanes as u64;
        self.inactive += (warp_size - active_lanes) as u64;
    }

    /// Total thread-slot executions (active + inactive).
    pub fn total_slots(&self) -> u64 {
        self.active.iter().sum::<u64>() + self.inactive
    }

    /// Fraction of slots that were inactive.
    pub fn inactive_fraction(&self) -> f64 {
        let total = self.total_slots();
        if total == 0 {
            0.0
        } else {
            self.inactive as f64 / total as f64
        }
    }

    /// Active slots recorded for one class.
    pub fn active_for(&self, class: InstrClass) -> u64 {
        // nmt-lint: allow(slice-index) — idx() is an enum discriminant < COUNT
        self.active[class.idx()]
    }

    /// Total warp *instructions* implied, assuming full warps
    /// (`total_slots / warp_size`).
    pub fn warp_instructions(&self, warp_size: usize) -> u64 {
        self.total_slots() / warp_size as u64
    }

    /// Merge another counter into this one.
    pub fn merge(&mut self, other: &WarpExecStats) {
        for (mine, theirs) in self.active.iter_mut().zip(&other.active) {
            *mine += theirs;
        }
        self.inactive += other.inactive;
    }
}

/// Where the kernel's time went — the stall taxonomy of Figure 2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StallBreakdown {
    /// Fraction of time stalled on the memory subsystem.
    pub memory: f64,
    /// Fraction of time the SMs were the bottleneck (issue-bound).
    pub sm: f64,
    /// Fixed overheads (launch/drain).
    pub other: f64,
}

/// Complete result of one simulated kernel launch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// SM-issue-bound time in nanoseconds.
    pub t_compute_ns: f64,
    /// DRAM/L2-bandwidth-bound time in nanoseconds (max over partitions).
    pub t_memory_ns: f64,
    /// Latency-bound time from dependent access chains in nanoseconds.
    pub t_latency_ns: f64,
    /// Crossbar-bound time in nanoseconds (engine output streams and other
    /// explicit SM↔FB transfers).
    pub t_xbar_ns: f64,
    /// Bytes moved over the crossbar by explicit streams.
    pub xbar_bytes: u64,
    /// Fixed overhead in nanoseconds.
    pub t_overhead_ns: f64,
    /// Estimated total kernel time in nanoseconds.
    pub total_ns: f64,
    /// DRAM bytes actually transferred (post-L2), per class.
    pub dram_traffic: TrafficBytes,
    /// Bytes requested by the SMs (pre-L2), per class.
    pub requested_traffic: TrafficBytes,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Atomic operations issued.
    pub atomics: u64,
    /// Warp execution accounting (Figure 7 input).
    pub warp_exec: WarpExecStats,
    /// FP operations performed (2 per FMA), for bytes/FLOP reporting.
    pub flops: u64,
}

impl KernelStats {
    /// L2 hit rate in `[0, 1]`.
    pub fn l2_hit_rate(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0 {
            0.0
        } else {
            self.l2_hits as f64 / total as f64
        }
    }

    /// DRAM bytes per floating-point operation (§2's figure of merit).
    pub fn bytes_per_flop(&self) -> f64 {
        if self.flops == 0 {
            f64::INFINITY
        } else {
            self.dram_traffic.total() as f64 / self.flops as f64
        }
    }

    /// Attribute the total time to stall causes, Figure-2 style. The
    /// bottleneck component "owns" the time it exceeds the others by;
    /// overlapped time is attributed to the SM (it was issuing).
    pub fn stall_breakdown(&self) -> StallBreakdown {
        let total = self.total_ns.max(1e-9);
        let mem_bound = self.t_memory_ns.max(self.t_latency_ns).max(self.t_xbar_ns);
        let mem_stall = (mem_bound - self.t_compute_ns).max(0.0);
        let other = self.t_overhead_ns;
        let sm = (total - mem_stall - other).max(0.0);
        StallBreakdown {
            memory: mem_stall / total,
            sm: sm / total,
            other: other / total,
        }
    }

    /// Achieved DRAM bandwidth in GB/s.
    pub fn achieved_bandwidth_gbps(&self) -> f64 {
        if self.total_ns <= 0.0 {
            0.0
        } else {
            self.dram_traffic.total() as f64 / self.total_ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_idx_roundtrips_through_all() {
        // `idx` is the declaration-order discriminant and `ALL` is the
        // declaration-order list: ALL[c.idx()] must be c for every class,
        // and idx must cover 0..COUNT exactly once.
        for (i, c) in TrafficClass::ALL.into_iter().enumerate() {
            assert_eq!(c.idx(), i);
            assert_eq!(TrafficClass::ALL[c.idx()], c);
        }
        for (i, c) in InstrClass::ALL.into_iter().enumerate() {
            assert_eq!(c.idx(), i);
            assert_eq!(InstrClass::ALL[c.idx()], c);
        }
        assert_eq!(TrafficClass::COUNT, 5);
        assert_eq!(InstrClass::COUNT, 4);
    }

    #[test]
    fn class_labels_are_unique() {
        let mut labels: Vec<&str> = TrafficClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), TrafficClass::COUNT);
        let mut labels: Vec<&str> = InstrClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), InstrClass::COUNT);
    }

    #[test]
    fn traffic_bytes_accumulate_and_merge() {
        let mut t = TrafficBytes::default();
        t.add(TrafficClass::MatA, 100);
        t.add(TrafficClass::MatB, 50);
        t.add(TrafficClass::MatA, 10);
        assert_eq!(t.get(TrafficClass::MatA), 110);
        assert_eq!(t.total(), 160);
        let mut u = TrafficBytes::default();
        u.add(TrafficClass::MatC, 1);
        u.merge(&t);
        assert_eq!(u.total(), 161);
    }

    #[test]
    fn warp_exec_tracks_inactive() {
        let mut w = WarpExecStats::default();
        w.record(InstrClass::Fp, 32, 32);
        w.record(InstrClass::Integer, 1, 32); // 1 active, 31 inactive
        assert_eq!(w.inactive, 31);
        assert_eq!(w.active_for(InstrClass::Fp), 32);
        assert_eq!(w.total_slots(), 64);
        assert!((w.inactive_fraction() - 31.0 / 64.0).abs() < 1e-12);
        assert_eq!(w.warp_instructions(32), 2);
    }

    #[test]
    fn stall_breakdown_memory_bound() {
        let stats = KernelStats {
            t_compute_ns: 20.0,
            t_memory_ns: 80.0,
            t_latency_ns: 10.0,
            t_overhead_ns: 2.0,
            total_ns: 82.0,
            ..Default::default()
        };
        let s = stats.stall_breakdown();
        assert!(s.memory > 0.7, "memory {}", s.memory);
        assert!((s.memory + s.sm + s.other - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stall_breakdown_compute_bound() {
        let stats = KernelStats {
            t_compute_ns: 100.0,
            t_memory_ns: 10.0,
            t_latency_ns: 5.0,
            t_overhead_ns: 1.0,
            total_ns: 101.0,
            ..Default::default()
        };
        let s = stats.stall_breakdown();
        assert_eq!(s.memory, 0.0);
        assert!(s.sm > 0.9);
    }

    #[test]
    fn derived_metrics() {
        let mut stats = KernelStats {
            flops: 100,
            total_ns: 10.0,
            ..Default::default()
        };
        stats.dram_traffic.add(TrafficClass::MatB, 500);
        assert!((stats.bytes_per_flop() - 5.0).abs() < 1e-12);
        assert!((stats.achieved_bandwidth_gbps() - 50.0).abs() < 1e-12);
        stats.l2_hits = 3;
        stats.l2_misses = 1;
        assert!((stats.l2_hit_rate() - 0.75).abs() < 1e-12);
    }
}
