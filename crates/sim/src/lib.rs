//! Warp-level, cycle-approximate GPU timing simulator.
//!
//! The paper evaluates on a real NVIDIA GV100; this crate is the offline
//! substitute. It is *not* a functional ISA simulator — kernels compute
//! their results on the host — but a faithful first-order performance model
//! of the properties the paper's results hinge on:
//!
//! * **Partitioned memory system** ([`MemorySubsystem`]): 64 HBM2
//!   pseudo-channels of 13.6 GB/s each behind per-partition L2 slices, with
//!   address interleaving — so partition camping (§6.1) and bandwidth
//!   bottlenecks (Figure 2) emerge naturally.
//! * **Set-associative L2** ([`cache::L2Slice`]): hit/miss/writeback with
//!   LRU, so B-tile reuse and C-tile locality of the traversal strategies
//!   (§3.1.3) are captured.
//! * **Atomic bandwidth cost**: read-modify-writes occupy the channel 2×
//!   (Table 1), penalizing B-stationary exactly where the paper says.
//! * **Warp issue accounting** ([`stats::WarpExecStats`]): active/inactive
//!   lane tracking reproduces Figure 7's inactive-thread analysis, and
//!   per-SM issue totals give the compute-bound term.
//! * **Bottleneck timing**: `total = max(compute, memory, latency) +
//!   overhead`, with a latency term for dependent (indirect) loads.
//!
//! See [`Gpu::launch`] for the kernel execution interface.

#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod machine;
pub mod memory;
pub mod stats;
pub mod trace;

pub use config::GpuConfig;
pub use machine::{publish_kernel_stats, BlockCtx, Buffer, Gpu, SimError};
pub use memory::{FbPartition, MemorySubsystem, PartitionCounters};
pub use stats::{
    InstrClass, KernelStats, StallBreakdown, TrafficBytes, TrafficClass, WarpExecStats,
};
pub use trace::{detect_stride, AccessKind, TraceBuffer, TraceEvent};
