//! GPU configuration presets and timing constants.

use serde::{Deserialize, Serialize};

/// Complete description of the simulated GPU.
///
/// The default preset mirrors the paper's evaluation platform (§5.1): an
/// NVIDIA GV100 with 80 SMs (5,120 FP32 cores) at 1,530 MHz, 96 KB shared
/// memory per SM, a 6,144 KB L2, and 16 GB of HBM2 behind 64 pseudo-channels
/// delivering 870 GB/s aggregate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Marketing name, for reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Lanes per warp (32 on every NVIDIA part).
    pub warp_size: usize,
    /// Warp instructions issued per SM per cycle (scheduler width).
    pub issue_per_cycle: usize,
    /// Maximum resident warps per SM (occupancy bound for latency hiding).
    pub max_warps_per_sm: usize,
    /// Independent outstanding memory requests per warp (memory-level
    /// parallelism): dependent loads are serialized behind their address
    /// producer but independent of each other, so a warp keeps several in
    /// flight.
    pub mlp_per_warp: usize,
    /// Shared memory per SM in bytes.
    pub shared_mem_bytes: usize,
    /// Total L2 capacity in bytes, sliced evenly across FB partitions.
    pub l2_bytes: usize,
    /// L2 line size in bytes.
    pub l2_line_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// L2 hit latency in nanoseconds.
    pub l2_hit_latency_ns: f64,
    /// L2 slice bandwidth in GB/s (per partition).
    pub l2_slice_gbps: f64,
    /// Number of FB partitions == DRAM pseudo-channels.
    pub num_partitions: usize,
    /// Bandwidth of one pseudo-channel in GB/s (13.6 for HBM2: §5.3).
    pub channel_gbps: f64,
    /// DRAM access latency (CAS) in nanoseconds ("15 ns for accessing
    /// DRAM", §5.3).
    pub dram_latency_ns: f64,
    /// Address-interleave granularity across partitions, in bytes.
    pub interleave_bytes: u64,
    /// Aggregate SM↔FB crossbar bandwidth in GB/s. The paper's §7 notes
    /// the engine "exploits large Xbar bandwidth available internally in
    /// GPU die, which does not form a bottleneck" — large relative to DRAM.
    pub xbar_gbps: f64,
    /// Multiplier applied to channel occupancy for atomic updates
    /// ("atomic bandwidth = 2× memory access", Table 1).
    pub atomic_cost_factor: f64,
    /// Fixed kernel launch/drain overhead in nanoseconds (the "Other"
    /// sliver of Figure 2).
    pub kernel_overhead_ns: f64,
    /// Die area in mm² (for the engine's §5.3 area-overhead ratio).
    pub die_area_mm2: f64,
    /// Board power budget in watts (for the §5.3 energy-overhead ratio).
    pub tdp_watts: f64,
}

impl GpuConfig {
    /// The paper's evaluation GPU: server-class GV100 (§5.1).
    pub fn gv100() -> Self {
        Self {
            name: "GV100".into(),
            num_sms: 80,
            clock_ghz: 1.53,
            warp_size: 32,
            issue_per_cycle: 2,
            max_warps_per_sm: 64,
            mlp_per_warp: 8,
            shared_mem_bytes: 96 * 1024,
            l2_bytes: 6144 * 1024,
            l2_line_bytes: 128,
            l2_ways: 16,
            l2_hit_latency_ns: 30.0,
            l2_slice_gbps: 64.0,
            num_partitions: 64,
            channel_gbps: 13.6,
            dram_latency_ns: 15.0,
            interleave_bytes: 256,
            xbar_gbps: 2_500.0,
            atomic_cost_factor: 2.0,
            kernel_overhead_ns: 5_000.0,
            die_area_mm2: 815.0,
            tdp_watts: 250.0,
        }
    }

    /// The smaller part used in §5.3's scaling argument: TU116, 284 mm²,
    /// 24 GDDR6 channels of 12 GB/s (288 GB/s aggregate).
    pub fn tu116() -> Self {
        Self {
            name: "TU116".into(),
            num_sms: 24,
            clock_ghz: 1.53,
            warp_size: 32,
            issue_per_cycle: 2,
            max_warps_per_sm: 32,
            mlp_per_warp: 8,
            shared_mem_bytes: 64 * 1024,
            l2_bytes: 1536 * 1024,
            l2_line_bytes: 128,
            l2_ways: 16,
            l2_hit_latency_ns: 30.0,
            l2_slice_gbps: 64.0,
            num_partitions: 24,
            channel_gbps: 12.0,
            dram_latency_ns: 15.0,
            interleave_bytes: 256,
            xbar_gbps: 900.0,
            atomic_cost_factor: 2.0,
            kernel_overhead_ns: 5_000.0,
            die_area_mm2: 284.0,
            tdp_watts: 125.0,
        }
    }

    /// A scaled-down configuration for fast unit tests: same ratios as
    /// GV100 but 4 SMs / 4 partitions and a 64 KB L2.
    pub fn test_small() -> Self {
        Self {
            name: "TestSmall".into(),
            num_sms: 4,
            clock_ghz: 1.0,
            warp_size: 32,
            issue_per_cycle: 2,
            max_warps_per_sm: 16,
            mlp_per_warp: 8,
            shared_mem_bytes: 48 * 1024,
            l2_bytes: 64 * 1024,
            l2_line_bytes: 128,
            l2_ways: 8,
            l2_hit_latency_ns: 30.0,
            l2_slice_gbps: 64.0,
            num_partitions: 4,
            channel_gbps: 13.6,
            dram_latency_ns: 15.0,
            interleave_bytes: 256,
            xbar_gbps: 200.0,
            atomic_cost_factor: 2.0,
            kernel_overhead_ns: 1_000.0,
            die_area_mm2: 100.0,
            tdp_watts: 50.0,
        }
    }

    /// Aggregate DRAM bandwidth in GB/s.
    pub fn total_bandwidth_gbps(&self) -> f64 {
        self.channel_gbps * self.num_partitions as f64
    }

    /// L2 capacity of one partition's slice in bytes.
    pub fn l2_slice_bytes(&self) -> usize {
        self.l2_bytes / self.num_partitions
    }

    /// Peak FP32 FLOP/s (2 ops per FMA lane per cycle).
    pub fn peak_flops(&self) -> f64 {
        let cores = (self.num_sms * self.warp_size * self.issue_per_cycle) as f64;
        2.0 * cores * self.clock_ghz * 1e9
    }

    /// Seconds per core clock cycle.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.clock_ghz
    }

    /// Validate internal consistency (positive sizes, power-of-two line).
    pub fn validate(&self) -> Result<(), String> {
        if self.num_sms == 0 || self.num_partitions == 0 {
            return Err("SM and partition counts must be positive".into());
        }
        if !self.l2_line_bytes.is_power_of_two() {
            return Err("L2 line size must be a power of two".into());
        }
        if !self.l2_bytes.is_multiple_of(self.num_partitions) {
            return Err("L2 must slice evenly across partitions".into());
        }
        let slice_lines = self.l2_slice_bytes() / self.l2_line_bytes;
        if !slice_lines.is_multiple_of(self.l2_ways) {
            return Err("L2 slice must divide into whole sets".into());
        }
        if self.warp_size == 0 || self.clock_ghz <= 0.0 || self.channel_gbps <= 0.0 {
            return Err("clock, warp size and bandwidth must be positive".into());
        }
        if self.xbar_gbps < self.total_bandwidth_gbps() {
            return Err("crossbar must carry at least the aggregate DRAM bandwidth".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gv100_matches_paper_numbers() {
        let c = GpuConfig::gv100();
        c.validate().unwrap();
        // §5.1: 870 GB/s over 64 pseudo channels; §5.3: 13.6 GB/s each.
        assert!((c.total_bandwidth_gbps() - 870.4).abs() < 1.0);
        assert_eq!(c.num_partitions, 64);
        assert_eq!(c.shared_mem_bytes, 96 * 1024);
        assert_eq!(c.l2_bytes, 6144 * 1024);
        assert_eq!(c.die_area_mm2, 815.0);
        // 5120 FP32 cores at 1530 MHz.
        assert_eq!(c.num_sms * c.warp_size * c.issue_per_cycle, 5120);
    }

    #[test]
    fn tu116_matches_section_53() {
        let c = GpuConfig::tu116();
        c.validate().unwrap();
        assert!((c.total_bandwidth_gbps() - 288.0).abs() < 1e-9);
        assert_eq!(c.die_area_mm2, 284.0);
    }

    #[test]
    fn all_presets_validate() {
        for c in [
            GpuConfig::gv100(),
            GpuConfig::tu116(),
            GpuConfig::test_small(),
        ] {
            c.validate().unwrap();
            assert!(c.peak_flops() > 0.0);
            assert!(c.l2_slice_bytes() > 0);
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = GpuConfig::test_small();
        c.l2_line_bytes = 100;
        assert!(c.validate().is_err());
        let mut c = GpuConfig::test_small();
        c.num_partitions = 0;
        assert!(c.validate().is_err());
        let mut c = GpuConfig::test_small();
        c.l2_bytes = 64 * 1024 + 1;
        assert!(c.validate().is_err());
    }
}
