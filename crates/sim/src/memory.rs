//! The memory subsystem: FB partitions, address interleaving, DRAM
//! bandwidth occupancy and the sliced L2.
//!
//! A GV100 groups its memory controllers into FB (frame buffer) partitions,
//! one per HBM2 pseudo-channel. Physical addresses interleave across
//! partitions at a fixed granularity so sequential streams spread evenly;
//! each partition owns an L2 slice and its channel's bandwidth. "FB
//! partitions do not communicate with each other" (§4) — a property the
//! engine's data-layout discussion (§6.1) depends on.

use crate::cache::{L2Slice, Probe};
use crate::config::GpuConfig;
use crate::stats::{TrafficBytes, TrafficClass};
use crate::trace::{AccessKind, TraceBuffer, TraceEvent};
use nmt_fault::{FaultPlan, FaultSite};

/// DRAM/L2 transfer granularity within a cache line. GPU L2s are sectored:
/// a 128 B line fills in 32 B sectors, so a narrow uncoalesced access
/// only moves 32 B even though it allocates a full line tag.
pub const SECTOR_BYTES: u64 = 32;

/// Occupancy multiplier applied to an access hit by an injected DRAM
/// latency spike ([`FaultSite::DramLatencySpike`]). Timing-only: the
/// access still moves the same bytes and returns the same data.
pub const DRAM_SPIKE_COST_FACTOR: f64 = 4.0;

/// Running totals for one partition.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PartitionCounters {
    /// Nanoseconds of DRAM channel occupancy.
    pub dram_busy_ns: f64,
    /// Nanoseconds of L2 slice bandwidth occupancy.
    pub l2_busy_ns: f64,
    /// Bytes moved on the DRAM channel (reads + writes + writebacks).
    pub dram_bytes: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
}

/// One FB partition: an L2 slice plus a DRAM pseudo-channel.
#[derive(Debug, Clone)]
pub struct FbPartition {
    l2: L2Slice,
    counters: PartitionCounters,
    channel_ns_per_byte: f64,
    l2_ns_per_byte: f64,
}

impl FbPartition {
    fn new(config: &GpuConfig) -> Self {
        Self {
            l2: L2Slice::new(
                config.l2_slice_bytes(),
                config.l2_line_bytes,
                config.l2_ways,
            ),
            counters: PartitionCounters::default(),
            channel_ns_per_byte: 1.0 / config.channel_gbps,
            l2_ns_per_byte: 1.0 / config.l2_slice_gbps,
        }
    }

    /// Access one cache line, of which `touched` bytes (sector-rounded)
    /// are actually demanded. Returns whether it hit in L2.
    ///
    /// `force_miss` models a prefetch-buffer overflow: the line may still
    /// be resident (cache state is untouched on a hit), but the fill was
    /// dropped and must be re-fetched, so a hit is billed as a miss.
    fn access_line(
        &mut self,
        addr: u64,
        write: bool,
        cost_factor: f64,
        touched: u64,
        force_miss: bool,
    ) -> bool {
        let line = self.l2.line_bytes();
        let touched = touched.min(line) as f64;
        match self.l2.access(addr, write) {
            Probe::Hit if force_miss => {
                self.counters.l2_misses += 1;
                self.counters.dram_bytes += touched as u64;
                self.counters.dram_busy_ns += touched * self.channel_ns_per_byte * cost_factor;
                self.counters.l2_busy_ns += touched * self.l2_ns_per_byte * cost_factor;
                false
            }
            Probe::Hit => {
                self.counters.l2_hits += 1;
                self.counters.l2_busy_ns += touched * self.l2_ns_per_byte * cost_factor;
                true
            }
            Probe::Miss { dirty_writeback } => {
                self.counters.l2_misses += 1;
                let mut bytes = touched;
                if dirty_writeback {
                    // Dirty victims write back whole-line granularity.
                    bytes += line as f64;
                }
                self.counters.dram_bytes += bytes as u64;
                self.counters.dram_busy_ns += bytes * self.channel_ns_per_byte * cost_factor;
                self.counters.l2_busy_ns += touched * self.l2_ns_per_byte * cost_factor;
                false
            }
        }
    }

    /// The bandwidth-bound time of this partition: it is busy for whichever
    /// of its two resources (channel, L2 slice) is more occupied.
    pub fn busy_ns(&self) -> f64 {
        self.counters.dram_busy_ns.max(self.counters.l2_busy_ns)
    }

    /// Current counters.
    pub fn counters(&self) -> PartitionCounters {
        self.counters
    }
}

/// The full memory subsystem: every FB partition plus global counters.
#[derive(Debug, Clone)]
pub struct MemorySubsystem {
    partitions: Vec<FbPartition>,
    interleave: u64,
    line_bytes: u64,
    atomic_cost_factor: f64,
    /// Bytes requested by SMs (pre-L2), per traffic class.
    requested: TrafficBytes,
    /// Bytes transferred from/to DRAM (post-L2), per traffic class.
    dram: TrafficBytes,
    atomics: u64,
    trace: Option<TraceBuffer>,
    /// Active fault plan, if any (see [`MemorySubsystem::set_fault_plan`]).
    fault: Option<FaultPlan>,
    /// Monotone ordinal of `access` calls — the fault key for the memory
    /// sites. Each simulated GPU processes its accesses serially, so this
    /// counter is deterministic and scheduling-independent.
    access_ordinal: u64,
    fault_dram_spikes: u64,
    fault_prefetch_overflows: u64,
}

impl MemorySubsystem {
    /// Build from a validated config.
    pub fn new(config: &GpuConfig) -> Self {
        Self {
            partitions: (0..config.num_partitions)
                .map(|_| FbPartition::new(config))
                .collect(),
            interleave: config.interleave_bytes,
            line_bytes: config.l2_line_bytes as u64,
            atomic_cost_factor: config.atomic_cost_factor,
            requested: TrafficBytes::default(),
            dram: TrafficBytes::default(),
            atomics: 0,
            trace: None,
            fault: None,
            access_ordinal: 0,
            fault_dram_spikes: 0,
            fault_prefetch_overflows: 0,
        }
    }

    /// Install (or clear) a fault plan. Memory-site faults are
    /// timing-only: they perturb occupancy and hit/miss accounting but
    /// never the bytes an access observes, so kernel outputs stay
    /// bitwise-identical under any plan.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault
    }

    /// Injected DRAM latency spikes so far.
    pub fn fault_dram_spikes(&self) -> u64 {
        self.fault_dram_spikes
    }

    /// Injected prefetch-buffer overflows so far.
    pub fn fault_prefetch_overflows(&self) -> u64 {
        self.fault_prefetch_overflows
    }

    /// Start recording accesses into a ring of `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceBuffer::new(capacity));
    }

    /// Stop recording and return the trace so far, if any.
    pub fn take_trace(&mut self) -> Option<TraceBuffer> {
        self.trace.take()
    }

    /// The live trace, if recording.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// The partition owning byte address `addr`.
    #[inline]
    pub fn partition_of(&self, addr: u64) -> usize {
        ((addr / self.interleave) % self.partitions.len() as u64) as usize
    }

    /// Perform a global-memory access of `nbytes` starting at `addr`.
    ///
    /// The access is split into cache lines, each routed to its owning
    /// partition. `write` stores (dirty lines), `atomic` applies the
    /// read-modify-write occupancy factor from Table 1 ("atomic bandwidth
    /// = 2× memory access").
    pub fn access(
        &mut self,
        addr: u64,
        nbytes: u64,
        class: TrafficClass,
        write: bool,
        atomic: bool,
    ) {
        if nbytes == 0 {
            return;
        }
        self.requested.add(class, nbytes);
        if atomic {
            self.atomics += 1;
        }
        if let Some(trace) = &mut self.trace {
            let kind = if atomic {
                AccessKind::Atomic
            } else if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            trace.record(TraceEvent {
                addr,
                bytes: nbytes,
                class,
                kind,
            });
        }
        let mut cost = if atomic { self.atomic_cost_factor } else { 1.0 };
        // Memory-site faults key off the per-subsystem access ordinal,
        // which advances deterministically with the (serial) access
        // stream — never off wall-clock or thread identity.
        let ordinal = self.access_ordinal;
        self.access_ordinal += 1;
        let mut force_miss = false;
        if let Some(plan) = self.fault {
            if plan.fires(FaultSite::DramLatencySpike, ordinal) {
                cost *= DRAM_SPIKE_COST_FACTOR;
                self.fault_dram_spikes += 1;
            }
            if plan.fires(FaultSite::PrefetchOverflow, ordinal) {
                force_miss = true;
                self.fault_prefetch_overflows += 1;
            }
        }
        let first_line = addr / self.line_bytes;
        let last_line = (addr + nbytes - 1) / self.line_bytes;
        for line in first_line..=last_line {
            let line_addr = line * self.line_bytes;
            // Sector-rounded bytes of this line the access demands.
            let lo = addr.max(line_addr);
            let hi = (addr + nbytes).min(line_addr + self.line_bytes);
            let sec_lo = (lo - line_addr) / SECTOR_BYTES * SECTOR_BYTES;
            let sec_hi = (hi - line_addr).div_ceil(SECTOR_BYTES) * SECTOR_BYTES;
            let touched = (sec_hi - sec_lo).min(self.line_bytes);
            let p = self.partition_of(line_addr);
            let hit = self.partitions[p].access_line(
                line_addr,
                write || atomic,
                cost,
                touched,
                force_miss,
            );
            if !hit {
                self.dram.add(class, touched);
            }
        }
    }

    /// Bandwidth-bound time: the busiest partition bounds the kernel
    /// (Figure 17's "camping problem" arises exactly when one partition's
    /// busy time dwarfs the rest).
    pub fn max_partition_busy_ns(&self) -> f64 {
        self.partitions
            .iter()
            .map(FbPartition::busy_ns)
            .fold(0.0, f64::max)
    }

    /// Per-partition busy times (for load-balance experiments).
    pub fn partition_busy_ns(&self) -> Vec<f64> {
        self.partitions.iter().map(FbPartition::busy_ns).collect()
    }

    /// Aggregate counters over all partitions.
    pub fn aggregate(&self) -> PartitionCounters {
        let mut total = PartitionCounters::default();
        for p in &self.partitions {
            let c = p.counters();
            total.dram_busy_ns += c.dram_busy_ns;
            total.l2_busy_ns += c.l2_busy_ns;
            total.dram_bytes += c.dram_bytes;
            total.l2_hits += c.l2_hits;
            total.l2_misses += c.l2_misses;
        }
        total
    }

    /// Requested (pre-L2) traffic per class.
    pub fn requested_traffic(&self) -> TrafficBytes {
        self.requested
    }

    /// DRAM (post-L2) traffic per class.
    pub fn dram_traffic(&self) -> TrafficBytes {
        self.dram
    }

    /// Number of atomic operations issued.
    pub fn atomics(&self) -> u64 {
        self.atomics
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Invalidate all L2 contents (cold-cache experiments).
    pub fn flush_l2(&mut self) {
        for p in &mut self.partitions {
            p.l2.flush();
        }
    }

    /// Snapshot used by the machine to compute per-kernel deltas.
    pub fn snapshot(&self) -> MemSnapshot {
        MemSnapshot {
            busy: self.partitions.iter().map(FbPartition::busy_ns).collect(),
            requested: self.requested,
            dram: self.dram,
            l2_hits: self.aggregate().l2_hits,
            l2_misses: self.aggregate().l2_misses,
            atomics: self.atomics,
        }
    }
}

/// Point-in-time copy of the memory counters (see
/// [`MemorySubsystem::snapshot`]).
#[derive(Debug, Clone)]
pub struct MemSnapshot {
    /// Per-partition busy ns at snapshot time.
    pub busy: Vec<f64>,
    /// Requested traffic at snapshot time.
    pub requested: TrafficBytes,
    /// DRAM traffic at snapshot time.
    pub dram: TrafficBytes,
    /// L2 hits at snapshot time.
    pub l2_hits: u64,
    /// L2 misses at snapshot time.
    pub l2_misses: u64,
    /// Atomics at snapshot time.
    pub atomics: u64,
}

impl MemSnapshot {
    /// Max over partitions of busy-time growth since this snapshot.
    pub fn max_busy_delta(&self, now: &MemorySubsystem) -> f64 {
        now.partition_busy_ns()
            .iter()
            .zip(&self.busy)
            .map(|(a, b)| a - b)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySubsystem {
        MemorySubsystem::new(&GpuConfig::test_small())
    }

    #[test]
    fn interleaving_spreads_addresses() {
        let m = mem();
        // 256 B interleave over 4 partitions.
        assert_eq!(m.partition_of(0), 0);
        assert_eq!(m.partition_of(255), 0);
        assert_eq!(m.partition_of(256), 1);
        assert_eq!(m.partition_of(3 * 256), 3);
        assert_eq!(m.partition_of(4 * 256), 0);
    }

    #[test]
    fn sequential_stream_balances_partitions() {
        let mut m = mem();
        m.access(0, 64 * 1024, TrafficClass::MatB, false, false);
        let busy = m.partition_busy_ns();
        let max = busy.iter().copied().fold(0.0, f64::max);
        let min = busy.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max > 0.0);
        assert!((max - min) / max < 0.01, "imbalance: {busy:?}");
    }

    #[test]
    fn camping_stream_loads_one_partition() {
        let mut m = mem();
        // Touch only addresses owned by partition 0 (every 4th interleave
        // unit) — the §6.1 camping pathologie.
        for i in 0..256u64 {
            m.access(i * 4 * 256, 128, TrafficClass::MatA, false, false);
        }
        let busy = m.partition_busy_ns();
        assert!(busy[0] > 0.0);
        assert_eq!(busy[1], 0.0);
        assert_eq!(busy[2], 0.0);
    }

    #[test]
    fn l2_hit_avoids_dram_traffic() {
        let mut m = mem();
        m.access(0, 128, TrafficClass::MatB, false, false);
        let cold = m.dram_traffic().total();
        assert_eq!(cold, 128);
        m.access(0, 128, TrafficClass::MatB, false, false);
        assert_eq!(m.dram_traffic().total(), cold, "hit must add no DRAM bytes");
        assert_eq!(m.aggregate().l2_hits, 1);
        assert_eq!(m.requested_traffic().total(), 256);
    }

    #[test]
    fn access_spanning_lines_touches_each() {
        let mut m = mem();
        // 256 bytes starting mid-line: 3 lines, sector-rounded 64+128+64.
        m.access(64, 256, TrafficClass::MatA, false, false);
        assert_eq!(m.aggregate().l2_misses, 3);
        assert_eq!(m.dram_traffic().total(), 64 + 128 + 64);
    }

    #[test]
    fn atomics_cost_double_occupancy() {
        let mut a = mem();
        a.access(0, 128, TrafficClass::MatC, true, false);
        let plain = a.max_partition_busy_ns();
        let mut b = mem();
        b.access(0, 128, TrafficClass::MatC, true, true);
        let atomic = b.max_partition_busy_ns();
        assert!(
            (atomic / plain - 2.0).abs() < 1e-9,
            "atomic {atomic} plain {plain}"
        );
        assert_eq!(b.atomics(), 1);
    }

    #[test]
    fn dirty_writeback_adds_dram_bytes() {
        let mut m = mem();
        // Slice is 16 KB, 8-way, 128 lines, 16 sets. Lines owned by
        // partition 0 that map to set 0: stride = sets * line = 2 KB, and we
        // need the partition_of(addr) == 0, true when (addr/256) % 4 == 0.
        // addr = k * 8 KB satisfies both (8 KB = 4 * 2 KB interleave units).
        let stride = 8 * 1024u64;
        for k in 0..8 {
            m.access(k * stride, 1, TrafficClass::MatC, true, false);
        }
        let before = m.dram_traffic().total();
        // A 9th distinct line in the same set evicts a dirty victim.
        m.access(8 * stride, 1, TrafficClass::MatC, true, false);
        let delta = m.dram_traffic().total() - before;
        assert_eq!(delta, 32, "narrow miss fills one sector under the class");
        // The writeback shows up in the channel occupancy (2 lines worth).
        let agg = m.aggregate();
        // The evicted dirty line writes back at line granularity.
        assert!(agg.dram_bytes >= before + 32 + 128);
    }

    #[test]
    fn snapshot_deltas() {
        let mut m = mem();
        m.access(0, 1024, TrafficClass::MatB, false, false);
        let snap = m.snapshot();
        m.access(1 << 20, 2048, TrafficClass::MatA, false, false);
        assert!(snap.max_busy_delta(&m) > 0.0);
        assert_eq!(
            m.requested_traffic().get(TrafficClass::MatA) - snap.requested.get(TrafficClass::MatA),
            2048
        );
    }

    #[test]
    fn flush_forces_remisses() {
        let mut m = mem();
        m.access(0, 128, TrafficClass::MatB, false, false);
        m.flush_l2();
        m.access(0, 128, TrafficClass::MatB, false, false);
        assert_eq!(m.aggregate().l2_misses, 2);
    }

    #[test]
    fn zero_byte_access_is_noop() {
        let mut m = mem();
        m.access(0, 0, TrafficClass::Other, false, false);
        assert_eq!(m.requested_traffic().total(), 0);
        assert_eq!(m.aggregate().l2_misses, 0);
    }

    #[test]
    fn dram_spike_inflates_occupancy_only() {
        let mut clean = mem();
        clean.access(0, 128, TrafficClass::MatB, false, false);
        let mut faulted = mem();
        faulted.set_fault_plan(Some(FaultPlan::from_rate(1, 1.0)));
        faulted.access(0, 128, TrafficClass::MatB, false, false);
        assert_eq!(faulted.fault_dram_spikes(), 1);
        // Same bytes moved, strictly more channel time.
        assert_eq!(
            faulted.dram_traffic().total(),
            clean.dram_traffic().total()
        );
        assert!(faulted.max_partition_busy_ns() > clean.max_partition_busy_ns());
    }

    #[test]
    fn prefetch_overflow_bills_hit_as_miss() {
        let mut m = mem();
        m.access(0, 128, TrafficClass::MatB, false, false);
        let cold = m.dram_traffic().total();
        m.set_fault_plan(Some(FaultPlan::from_rate(2, 1.0)));
        // Would be an L2 hit; the overflow re-bills it against DRAM.
        m.access(0, 128, TrafficClass::MatB, false, false);
        assert_eq!(m.fault_prefetch_overflows(), 1);
        assert!(m.dram_traffic().total() > cold);
        assert_eq!(m.aggregate().l2_hits, 0);
        assert_eq!(m.aggregate().l2_misses, 2);
    }

    #[test]
    fn fault_rolls_are_deterministic_across_subsystems() {
        let plan = FaultPlan::from_rate(1234, 0.3);
        let run = |mut m: MemorySubsystem| {
            m.set_fault_plan(Some(plan));
            for i in 0..64u64 {
                m.access(i * 4096, 128, TrafficClass::MatA, false, false);
            }
            (m.fault_dram_spikes(), m.fault_prefetch_overflows())
        };
        assert_eq!(run(mem()), run(mem()));
    }
}
