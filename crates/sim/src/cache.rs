//! Set-associative L2 cache slice with LRU replacement.
//!
//! The GV100 L2 is physically sliced: each FB partition owns the slice that
//! caches its share of the address space. One [`L2Slice`] therefore lives
//! inside each simulated FB partition.

/// Result of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Line present.
    Hit,
    /// Line absent; it has been filled (possibly evicting a victim, whose
    /// dirtiness is reported for write-back accounting).
    Miss {
        /// True when the evicted victim was dirty and must be written back.
        dirty_writeback: bool,
    },
}

/// One L2 slice: `sets × ways` lines, LRU within a set.
#[derive(Debug, Clone)]
pub struct L2Slice {
    line_bytes: u64,
    sets: usize,
    ways: usize,
    /// tags[set * ways + way]; `None` = invalid.
    tags: Vec<Option<u64>>,
    /// LRU stamps parallel to `tags` (larger = more recent).
    stamps: Vec<u64>,
    /// Dirty bits parallel to `tags`.
    dirty: Vec<bool>,
    tick: u64,
}

impl L2Slice {
    /// Build a slice of `capacity_bytes` with the given line size and
    /// associativity. Panics if geometry does not divide evenly (the
    /// [`GpuConfig`](crate::GpuConfig) validator checks this upstream).
    pub fn new(capacity_bytes: usize, line_bytes: usize, ways: usize) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        let lines = capacity_bytes / line_bytes;
        assert!(
            lines >= ways && lines.is_multiple_of(ways),
            "capacity must divide into whole sets"
        );
        let sets = lines / ways;
        Self {
            line_bytes: line_bytes as u64,
            sets,
            ways,
            tags: vec![None; lines],
            stamps: vec![0; lines],
            dirty: vec![false; lines],
            tick: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Probe the line containing `addr`; fill on miss. `write` marks the
    /// line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> Probe {
        self.tick += 1;
        let line = addr / self.line_bytes;
        let set = (line % self.sets as u64) as usize;
        let base = set * self.ways;
        let slot_range = base..base + self.ways;

        // Hit?
        for i in slot_range.clone() {
            if self.tags[i] == Some(line) {
                self.stamps[i] = self.tick;
                if write {
                    self.dirty[i] = true;
                }
                return Probe::Hit;
            }
        }
        // Miss: fill invalid slot or evict LRU.
        let victim = slot_range
            .clone()
            .find(|&i| self.tags[i].is_none())
            .unwrap_or_else(|| {
                slot_range
                    .min_by_key(|&i| self.stamps[i])
                    .unwrap_or(base)
            });
        let dirty_writeback = self.tags[victim].is_some() && self.dirty[victim];
        self.tags[victim] = Some(line);
        self.stamps[victim] = self.tick;
        self.dirty[victim] = write;
        Probe::Miss { dirty_writeback }
    }

    /// Drop all contents (between kernels, when desired).
    pub fn flush(&mut self) -> usize {
        let dirty_lines = self.dirty.iter().filter(|&&d| d).count();
        self.tags.fill(None);
        self.dirty.fill(false);
        self.stamps.fill(0);
        dirty_lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> L2Slice {
        // 4 lines of 64 B, 2-way => 2 sets.
        L2Slice::new(256, 64, 2)
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.sets(), 2);
        assert_eq!(c.line_bytes(), 64);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(matches!(c.access(0, false), Probe::Miss { .. }));
        assert_eq!(c.access(0, false), Probe::Hit);
        assert_eq!(c.access(63, false), Probe::Hit); // same line
        assert!(matches!(c.access(64, false), Probe::Miss { .. })); // next line
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (line % 2 == 0).
        c.access(0, false);
        c.access(2 * 64, false);
        c.access(0, false); // refresh line 0
        c.access(4 * 64, false); // evicts line 2 (LRU)
        assert_eq!(c.access(0, false), Probe::Hit);
        assert!(matches!(c.access(2 * 64, false), Probe::Miss { .. }));
    }

    #[test]
    fn dirty_writeback_reported() {
        let mut c = tiny();
        c.access(0, true); // dirty line 0 in set 0
        c.access(2 * 64, false);
        // Fill a third even line: evicts dirty line 0.
        match c.access(4 * 64, false) {
            Probe::Miss { dirty_writeback } => assert!(dirty_writeback),
            Probe::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0, false);
        c.access(2 * 64, false);
        match c.access(4 * 64, false) {
            Probe::Miss { dirty_writeback } => assert!(!dirty_writeback),
            Probe::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn flush_counts_dirty() {
        let mut c = tiny();
        c.access(0, true);
        c.access(64, false);
        assert_eq!(c.flush(), 1);
        assert!(matches!(c.access(0, false), Probe::Miss { .. }));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny();
        let mut misses = 0;
        for round in 0..3 {
            for line in 0..8u64 {
                if matches!(c.access(line * 64, false), Probe::Miss { .. }) {
                    misses += 1;
                }
            }
            let _ = round;
        }
        // 8 lines through a 4-line cache with LRU: every access misses.
        assert_eq!(misses, 24);
    }
}
