//! Memory-access trace recording — the debugging lens over the memory
//! model.
//!
//! A [`TraceBuffer`] captures a bounded window of `(address, bytes, class,
//! kind)` events so tests and tools can assert *which* addresses a kernel
//! touched, not just how many bytes moved. The buffer is a ring: tracing
//! never grows unboundedly, and the drop count records what was lost.

use crate::stats::TrafficClass;
use serde::{Deserialize, Serialize};

/// What kind of access an event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    /// Plain read.
    Read,
    /// Plain write.
    Write,
    /// Atomic read-modify-write.
    Atomic,
}

/// One recorded access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Starting byte address.
    pub addr: u64,
    /// Length in bytes.
    pub bytes: u64,
    /// Traffic class of the owning buffer.
    pub class: TrafficClass,
    /// Read / write / atomic.
    pub kind: AccessKind,
}

/// Bounded ring buffer of [`TraceEvent`]s.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    capacity: usize,
    head: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// A trace window holding up to `capacity` events. A capacity of 0 is
    /// a disabled buffer: it retains nothing and counts every recorded
    /// event as dropped (mirroring `nmt-obs`'s zero-capacity recorder).
    pub fn new(capacity: usize) -> Self {
        Self {
            events: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Record one event, evicting the oldest when full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
        } else if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events in arrival order (oldest first).
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the window was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total bytes recorded for `class` within the current window.
    pub fn bytes_for(&self, class: TrafficClass) -> u64 {
        self.events
            .iter()
            .filter(|e| e.class == class)
            .map(|e| e.bytes)
            .sum()
    }

    /// Addresses (start of each access) for `class`, in arrival order —
    /// the input for access-pattern assertions (stride detection etc.).
    pub fn addresses_for(&self, class: TrafficClass) -> Vec<u64> {
        self.events()
            .into_iter()
            .filter(|e| e.class == class)
            .map(|e| e.addr)
            .collect()
    }

    /// The window capacity (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Clear the window (dropped count is kept).
    pub fn clear(&mut self) {
        self.events.clear();
        self.head = 0;
    }
}

/// Serializes as `{capacity, dropped, events: [...]}` with events in
/// arrival order, so a buffer can stream through the JSONL exporter.
/// (Hand-written: the ring's internal `head` split must not leak into the
/// serialized form.)
impl Serialize for TraceBuffer {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            (
                "capacity".to_string(),
                serde::Value::U64(self.capacity as u64),
            ),
            ("dropped".to_string(), serde::Value::U64(self.dropped)),
            (
                "events".to_string(),
                serde::Value::Array(self.events().iter().map(Serialize::to_value).collect()),
            ),
        ])
    }
}

/// Detect whether an address sequence is a fixed-stride stream and return
/// the stride (0 for repeats, `None` for irregular sequences or fewer than
/// 3 addresses) — a convenience for coalescing assertions in tests.
pub fn detect_stride(addrs: &[u64]) -> Option<i64> {
    if addrs.len() < 3 {
        return None;
    }
    let stride = addrs[1] as i64 - addrs[0] as i64;
    for w in addrs.windows(2) {
        if w[1] as i64 - w[0] as i64 != stride {
            return None;
        }
    }
    Some(stride)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(addr: u64) -> TraceEvent {
        TraceEvent {
            addr,
            bytes: 128,
            class: TrafficClass::MatB,
            kind: AccessKind::Read,
        }
    }

    #[test]
    fn records_in_order_until_capacity() {
        let mut t = TraceBuffer::new(4);
        for i in 0..3 {
            t.record(ev(i * 128));
        }
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.dropped(), 0);
        let addrs: Vec<u64> = t.events().iter().map(|e| e.addr).collect();
        assert_eq!(addrs, vec![0, 128, 256]);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5 {
            t.record(ev(i * 10));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let addrs: Vec<u64> = t.events().iter().map(|e| e.addr).collect();
        assert_eq!(addrs, vec![20, 30, 40], "oldest two evicted");
    }

    #[test]
    fn class_filters() {
        let mut t = TraceBuffer::new(8);
        t.record(ev(0));
        t.record(TraceEvent {
            addr: 64,
            bytes: 4,
            class: TrafficClass::MatA,
            kind: AccessKind::Write,
        });
        t.record(ev(256));
        assert_eq!(t.bytes_for(TrafficClass::MatB), 256);
        assert_eq!(t.bytes_for(TrafficClass::MatA), 4);
        assert_eq!(t.addresses_for(TrafficClass::MatB), vec![0, 256]);
    }

    #[test]
    fn stride_detection() {
        assert_eq!(detect_stride(&[0, 128, 256, 384]), Some(128));
        assert_eq!(detect_stride(&[100, 90, 80]), Some(-10));
        assert_eq!(detect_stride(&[0, 0, 0]), Some(0));
        assert_eq!(detect_stride(&[0, 128, 300]), None);
        assert_eq!(detect_stride(&[0, 128]), None, "too short to call");
    }

    #[test]
    fn clear_keeps_drop_count() {
        let mut t = TraceBuffer::new(2);
        for i in 0..4 {
            t.record(ev(i));
        }
        assert_eq!(t.dropped(), 2);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn zero_capacity_is_a_disabled_buffer() {
        // Capacity 0 used to panic; it now behaves as "record nothing,
        // count everything as dropped" so tracing can be switched off
        // without branching at every call site.
        let mut t = TraceBuffer::new(0);
        for i in 0..3 {
            t.record(ev(i * 8));
        }
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.capacity(), 0);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.events(), vec![]);
        t.clear(); // must not panic, dropped count is kept
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn wraparound_counts_every_eviction() {
        // Several full revolutions of the ring: the drop count must equal
        // records minus capacity, and the window must hold the newest
        // `capacity` events in arrival order.
        let cap = 4;
        let total = 19; // 4 full wraps minus one
        let mut t = TraceBuffer::new(cap);
        for i in 0..total {
            t.record(ev(i as u64));
        }
        assert_eq!(t.len(), cap);
        assert_eq!(t.dropped(), (total - cap) as u64);
        let addrs: Vec<u64> = t.events().iter().map(|e| e.addr).collect();
        let expected: Vec<u64> = ((total - cap) as u64..total as u64).collect();
        assert_eq!(addrs, expected);
    }

    #[test]
    fn exactly_full_buffer_drops_nothing() {
        let mut t = TraceBuffer::new(3);
        for i in 0..3 {
            t.record(ev(i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 0);
        t.record(ev(3));
        assert_eq!(t.dropped(), 1, "first eviction only after capacity+1");
    }

    #[test]
    fn serializes_in_arrival_order_through_jsonl() {
        let mut t = TraceBuffer::new(2);
        for i in 0..3 {
            t.record(ev(i * 100));
        }
        let mut exporter = nmt_obs::JsonlExporter::new(Vec::new());
        exporter.write(&t).unwrap();
        let line = String::from_utf8(exporter.into_inner().unwrap()).unwrap();
        let v: serde::Value = serde_json::from_str(line.trim()).unwrap();
        assert_eq!(v["capacity"].as_u64(), Some(2));
        assert_eq!(v["dropped"].as_u64(), Some(1));
        let events = v["events"].as_array().unwrap();
        assert_eq!(events.len(), 2);
        // Arrival order, not ring order: oldest retained event first.
        assert_eq!(events[0]["addr"].as_u64(), Some(100));
        assert_eq!(events[1]["addr"].as_u64(), Some(200));
        assert_eq!(events[0]["kind"].as_str(), Some("Read"));
        assert_eq!(events[0]["class"].as_str(), Some("MatB"));
    }
}
