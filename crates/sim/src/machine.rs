//! The machine model: buffers, block execution contexts and kernel launch.
//!
//! Kernels are host functions that *functionally* compute their result while
//! recording hardware behaviour through a [`BlockCtx`]: global loads/stores
//! routed through the partitioned L2/DRAM model, warp instruction issue with
//! active-lane masks, and dependent-load chains. A [`Gpu::launch`] then
//! integrates those records into a bottleneck timing estimate:
//!
//! * `t_compute` — warp-instruction issue time of the busiest SM;
//! * `t_memory` — occupancy of the busiest FB partition (channel or L2
//!   slice bandwidth);
//! * `t_latency` — dependent-load chains divided by the machine's warp-level
//!   parallelism (indirection cost that occupancy cannot always hide — the
//!   CSR pathology of §2);
//!
//! `total = max(compute, memory, latency) + overhead`, the standard
//! roofline-with-latency approximation for throughput processors.

use crate::config::GpuConfig;
use crate::memory::MemorySubsystem;
use crate::stats::{InstrClass, KernelStats, TrafficClass, WarpExecStats};

/// Errors produced by the machine model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Configuration failed validation.
    BadConfig(String),
    /// A kernel requested more shared memory per block than the SM has.
    SharedMemExceeded {
        /// Requested bytes per block.
        requested: usize,
        /// Available bytes per SM.
        available: usize,
    },
    /// An access fell outside its buffer.
    OutOfBounds {
        /// Offending offset.
        offset: u64,
        /// Buffer length.
        len: u64,
    },
    /// Operand shapes (or tile dims) are inconsistent with the requested
    /// kernel. Replaces the old `assert!`s in kernel entry points so a
    /// single malformed matrix cannot abort a whole corpus sweep.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// An injected fault (see `nmt-fault`) escalated past its local retry
    /// policy. This is the planner's signal to engage degraded mode: the
    /// per-matrix B-stationary → C-stationary fallback.
    InjectedFault {
        /// Site where the fault fired.
        site: nmt_fault::FaultSite,
        /// Instance key within the site (strip id, partition id, ...).
        key: u64,
        /// Human-readable description of what was injected.
        detail: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::BadConfig(s) => write!(f, "bad gpu config: {s}"),
            SimError::SharedMemExceeded {
                requested,
                available,
            } => {
                write!(f, "shared memory exceeded: {requested} > {available} bytes")
            }
            SimError::OutOfBounds { offset, len } => {
                write!(f, "buffer access at offset {offset} beyond length {len}")
            }
            SimError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            SimError::InjectedFault { site, key, detail } => {
                write!(f, "injected fault at {site}#{key}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// A device allocation: a contiguous virtual address range tagged with the
/// traffic class its accesses will be accounted under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Buffer {
    /// Base virtual address.
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
    /// Traffic class for accounting.
    pub class: TrafficClass,
}

impl Buffer {
    /// Address of `offset` within the buffer, bounds-checked in debug.
    #[inline]
    pub fn at(&self, offset: u64) -> u64 {
        debug_assert!(
            offset <= self.len,
            "offset {offset} beyond buffer length {}",
            self.len
        );
        self.addr + offset
    }
}

/// The simulated GPU: configuration + memory subsystem + an address-space
/// bump allocator.
#[derive(Debug, Clone)]
pub struct Gpu {
    config: GpuConfig,
    mem: MemorySubsystem,
    next_addr: u64,
}

impl Gpu {
    /// Build a GPU from a validated configuration.
    pub fn new(config: GpuConfig) -> Result<Self, SimError> {
        config.validate().map_err(SimError::BadConfig)?;
        let mem = MemorySubsystem::new(&config);
        Ok(Self {
            config,
            mem,
            next_addr: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// The memory subsystem (inspection).
    pub fn memory(&self) -> &MemorySubsystem {
        &self.mem
    }

    /// Install (or clear) a fault plan on this GPU's memory subsystem.
    /// Kernels read it back via [`Gpu::fault_plan`] to seed engine-side
    /// fault sites from the same plan.
    pub fn set_fault_plan(&mut self, plan: Option<nmt_fault::FaultPlan>) {
        self.mem.set_fault_plan(plan);
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<nmt_fault::FaultPlan> {
        self.mem.fault_plan()
    }

    /// Allocate `bytes` of device memory accounted under `class`.
    /// Allocations are aligned to the interleave granularity so different
    /// buffers start on partition boundaries, like real large allocations.
    pub fn alloc(&mut self, bytes: u64, class: TrafficClass) -> Buffer {
        let align = self.config.interleave_bytes;
        let addr = self.next_addr.next_multiple_of(align);
        self.next_addr = addr + bytes.max(1);
        Buffer {
            addr,
            len: bytes,
            class,
        }
    }

    /// Drop all cached L2 state (cold-start the next kernel).
    pub fn flush_l2(&mut self) {
        self.mem.flush_l2();
    }

    /// Start recording memory accesses into a bounded trace window.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.mem.enable_trace(capacity);
    }

    /// Stop recording and return the trace, if one was active.
    pub fn take_trace(&mut self) -> Option<crate::trace::TraceBuffer> {
        self.mem.take_trace()
    }

    /// Run a kernel of `num_blocks` thread blocks, each requiring
    /// `shared_bytes` of shared memory, with body `f` called once per block.
    /// Blocks are assigned to SMs round-robin. Returns the integrated
    /// timing/traffic statistics for this launch only.
    pub fn launch<F>(
        &mut self,
        shared_bytes: usize,
        num_blocks: usize,
        mut f: F,
    ) -> Result<KernelStats, SimError>
    where
        F: FnMut(&mut BlockCtx<'_>),
    {
        if shared_bytes > self.config.shared_mem_bytes {
            return Err(SimError::SharedMemExceeded {
                requested: shared_bytes,
                available: self.config.shared_mem_bytes,
            });
        }
        let before = self.mem.snapshot();
        let mut sm_instrs = vec![0u64; self.config.num_sms];
        let mut warp_exec = WarpExecStats::default();
        let mut chain_loads = 0u64;
        let mut flops = 0u64;
        let mut xbar_bytes = 0u64;

        for block_id in 0..num_blocks {
            let mut ctx = BlockCtx {
                block_id,
                warp_size: self.config.warp_size,
                line_bytes: self.config.l2_line_bytes as u64,
                mem: &mut self.mem,
                warp_exec: WarpExecStats::default(),
                warp_instrs: 0,
                chain_loads: 0,
                flops: 0,
                xbar_bytes: 0,
            };
            f(&mut ctx);
            let sm = block_id % self.config.num_sms;
            sm_instrs[sm] += ctx.warp_instrs;
            warp_exec.merge(&ctx.warp_exec);
            chain_loads += ctx.chain_loads;
            flops += ctx.flops;
            xbar_bytes += ctx.xbar_bytes;
        }

        let max_sm_instrs = sm_instrs.iter().copied().max().unwrap_or(0);
        let t_compute_ns =
            max_sm_instrs as f64 / self.config.issue_per_cycle as f64 * self.config.cycle_ns();
        let t_memory_ns = before.max_busy_delta(&self.mem);
        let parallelism = (self.config.num_sms
            * self.config.max_warps_per_sm
            * self.config.mlp_per_warp.max(1)) as f64;
        let t_latency_ns = chain_loads as f64 * self.config.dram_latency_ns / parallelism;
        let t_xbar_ns = xbar_bytes as f64 / self.config.xbar_gbps;
        let t_overhead_ns = self.config.kernel_overhead_ns;
        let total_ns = t_compute_ns
            .max(t_memory_ns)
            .max(t_latency_ns)
            .max(t_xbar_ns)
            + t_overhead_ns;

        // Convert running totals into per-launch deltas.
        let dram_traffic = delta_traffic(&before.dram, &self.mem.dram_traffic());
        let requested_traffic = delta_traffic(&before.requested, &self.mem.requested_traffic());

        let agg = self.mem.aggregate();
        Ok(KernelStats {
            t_compute_ns,
            t_memory_ns,
            t_latency_ns,
            t_xbar_ns,
            xbar_bytes,
            t_overhead_ns,
            total_ns,
            dram_traffic,
            requested_traffic,
            l2_hits: agg.l2_hits - before.l2_hits,
            l2_misses: agg.l2_misses - before.l2_misses,
            atomics: self.mem.atomics() - before.atomics,
            warp_exec,
            flops,
        })
    }
}

fn delta_traffic(
    before: &crate::stats::TrafficBytes,
    after: &crate::stats::TrafficBytes,
) -> crate::stats::TrafficBytes {
    let mut out = crate::stats::TrafficBytes::default();
    for class in TrafficClass::ALL {
        out.add(class, after.get(class) - before.get(class));
    }
    out
}

/// Bridge a launch's [`KernelStats`] into an observability registry under
/// `prefix` (e.g. `kernels.chosen`): per-[`TrafficClass`] DRAM and
/// requested bytes become counters, derived rates become gauges, and the
/// stall taxonomy lands as `<prefix>.stall.*`.
pub fn publish_kernel_stats(obs: &nmt_obs::ObsContext, prefix: &str, stats: &KernelStats) {
    let m = &obs.metrics;
    for class in TrafficClass::ALL {
        m.counter_add(
            &format!("{prefix}.dram_bytes.{}", class.label()),
            stats.dram_traffic.get(class),
        );
        m.counter_add(
            &format!("{prefix}.requested_bytes.{}", class.label()),
            stats.requested_traffic.get(class),
        );
    }
    for class in InstrClass::ALL {
        m.counter_add(
            &format!("{prefix}.warp_slots.{}", class.label()),
            stats.warp_exec.active_for(class),
        );
    }
    m.counter_add(&format!("{prefix}.warp_slots.inactive"), stats.warp_exec.inactive);
    m.counter_add(&format!("{prefix}.l2_hits"), stats.l2_hits);
    m.counter_add(&format!("{prefix}.l2_misses"), stats.l2_misses);
    m.counter_add(&format!("{prefix}.atomics"), stats.atomics);
    m.counter_add(&format!("{prefix}.flops"), stats.flops);
    m.counter_add(&format!("{prefix}.xbar_bytes"), stats.xbar_bytes);
    m.gauge_set(&format!("{prefix}.total_ns"), stats.total_ns);
    m.gauge_set(&format!("{prefix}.t_compute_ns"), stats.t_compute_ns);
    m.gauge_set(&format!("{prefix}.t_memory_ns"), stats.t_memory_ns);
    m.gauge_set(&format!("{prefix}.t_latency_ns"), stats.t_latency_ns);
    m.gauge_set(&format!("{prefix}.t_xbar_ns"), stats.t_xbar_ns);
    m.gauge_set(&format!("{prefix}.l2_hit_rate"), stats.l2_hit_rate());
    if stats.flops > 0 {
        // bytes_per_flop is +inf on FLOP-free launches; JSON has no inf.
        m.gauge_set(&format!("{prefix}.bytes_per_flop"), stats.bytes_per_flop());
    }
    let s = stats.stall_breakdown();
    m.gauge_set(&format!("{prefix}.stall.memory"), s.memory);
    m.gauge_set(&format!("{prefix}.stall.sm"), s.sm);
    m.gauge_set(&format!("{prefix}.stall.other"), s.other);
}

/// Per-thread-block execution context handed to kernel bodies.
pub struct BlockCtx<'a> {
    /// This block's index within the grid.
    pub block_id: usize,
    warp_size: usize,
    line_bytes: u64,
    mem: &'a mut MemorySubsystem,
    warp_exec: WarpExecStats,
    warp_instrs: u64,
    chain_loads: u64,
    flops: u64,
    xbar_bytes: u64,
}

impl BlockCtx<'_> {
    /// Warp width of the machine.
    pub fn warp_size(&self) -> usize {
        self.warp_size
    }

    /// Load `nbytes` from global memory at `buf[offset..]`.
    ///
    /// `dependent` marks loads whose address was produced by a previous
    /// load (the CSR indirection: B rows fetched through `colidx`); these
    /// feed the latency-bound term.
    pub fn ld_global(&mut self, buf: &Buffer, offset: u64, nbytes: u64, dependent: bool) {
        self.global_access(buf, offset, nbytes, false, false, dependent);
    }

    /// Store `nbytes` to global memory at `buf[offset..]`.
    pub fn st_global(&mut self, buf: &Buffer, offset: u64, nbytes: u64) {
        self.global_access(buf, offset, nbytes, true, false, false);
    }

    /// Atomic read-modify-write of `nbytes` at `buf[offset..]` (2× channel
    /// occupancy, per Table 1's atomic-bandwidth assumption).
    pub fn atomic_add_global(&mut self, buf: &Buffer, offset: u64, nbytes: u64) {
        self.global_access(buf, offset, nbytes, true, true, false);
    }

    fn global_access(
        &mut self,
        buf: &Buffer,
        offset: u64,
        nbytes: u64,
        write: bool,
        atomic: bool,
        dependent: bool,
    ) {
        debug_assert!(
            offset + nbytes <= buf.len,
            "access [{offset}, {}) beyond buffer length {}",
            offset + nbytes,
            buf.len
        );
        self.mem
            .access(buf.at(offset), nbytes, buf.class, write, atomic);
        // A fully-coalesced warp moves one line per memory instruction.
        let instrs = nbytes.div_ceil(self.line_bytes).max(1);
        let lanes = ((nbytes / 4).max(1) as usize).min(self.warp_size);
        for _ in 0..instrs {
            self.warp_exec
                .record(InstrClass::Memory, lanes, self.warp_size);
        }
        self.warp_instrs += instrs;
        if dependent {
            self.chain_loads += instrs;
        }
    }

    /// An uncoalesced warp load: `count` elements of `elem_bytes` at
    /// addresses `base, base + stride, base + 2·stride, …` within `buf`.
    ///
    /// When `stride` exceeds the line size every lane touches its own
    /// cache line (the column-major-B pathology of cuSPARSE `csrmm`); the
    /// warp still issues only `ceil(count / warp_size)` memory
    /// instructions, but the memory system sees one transaction per line.
    pub fn ld_global_strided(
        &mut self,
        buf: &Buffer,
        base: u64,
        stride: u64,
        count: usize,
        elem_bytes: u64,
        dependent: bool,
    ) {
        self.strided_access(buf, base, stride, count, elem_bytes, dependent, false);
    }

    /// A warp gather: one element of `elem_bytes` per offset in `offsets`
    /// (at most one warp's worth per call is idiomatic, but any length
    /// works). Adjacent offsets landing in the same 128 B line coalesce
    /// into one transaction, so clustered index vectors behave like
    /// coalesced loads and scattered ones pay per-lane sectors — exactly
    /// the behaviour of real warp gathers through a sectored L2.
    pub fn ld_global_gather(
        &mut self,
        buf: &Buffer,
        offsets: &[u64],
        elem_bytes: u64,
        dependent: bool,
    ) {
        if offsets.is_empty() {
            return;
        }
        let mut last_line = u64::MAX;
        for &off in offsets {
            let addr = buf.at(off);
            let line = addr / self.line_bytes;
            if line != last_line {
                self.mem.access(addr, elem_bytes, buf.class, false, false);
                last_line = line;
            }
        }
        let instrs = (offsets.len() as u64).div_ceil(self.warp_size as u64);
        for _ in 0..instrs {
            self.warp_exec.record(
                InstrClass::Memory,
                self.warp_size.min(offsets.len()),
                self.warp_size,
            );
        }
        self.warp_instrs += instrs;
        if dependent {
            self.chain_loads += instrs;
        }
    }

    /// The store counterpart of [`BlockCtx::ld_global_strided`]
    /// (column-major C writes of the cuSPARSE layout).
    pub fn st_global_strided(
        &mut self,
        buf: &Buffer,
        base: u64,
        stride: u64,
        count: usize,
        elem_bytes: u64,
    ) {
        self.strided_access(buf, base, stride, count, elem_bytes, false, true);
    }

    #[allow(clippy::too_many_arguments)]
    fn strided_access(
        &mut self,
        buf: &Buffer,
        base: u64,
        stride: u64,
        count: usize,
        elem_bytes: u64,
        dependent: bool,
        write: bool,
    ) {
        if count == 0 {
            return;
        }
        debug_assert!(
            base + (count as u64 - 1) * stride + elem_bytes <= buf.len,
            "strided access beyond buffer"
        );
        let mut last_line = u64::MAX;
        for i in 0..count as u64 {
            let addr = buf.at(base + i * stride);
            let line = addr / self.line_bytes;
            // Coalesce only exact same-line repeats from adjacent lanes.
            if line != last_line {
                self.mem.access(addr, elem_bytes, buf.class, write, false);
                last_line = line;
            }
        }
        let instrs = (count as u64).div_ceil(self.warp_size as u64);
        for _ in 0..instrs {
            self.warp_exec.record(
                InstrClass::Memory,
                self.warp_size.min(count),
                self.warp_size,
            );
        }
        self.warp_instrs += instrs;
        if dependent {
            self.chain_loads += instrs;
        }
    }

    /// Receive `nbytes` streamed over the SM↔FB crossbar into shared
    /// memory (the engine's tiled-DCSR output path, Figure 10): consumes
    /// crossbar bandwidth and issue slots but no DRAM bandwidth.
    pub fn xbar_stream(&mut self, nbytes: u64) {
        if nbytes == 0 {
            return;
        }
        self.xbar_bytes += nbytes;
        let instrs = nbytes.div_ceil(self.line_bytes).max(1);
        for _ in 0..instrs {
            self.warp_exec
                .record(InstrClass::Memory, self.warp_size, self.warp_size);
        }
        self.warp_instrs += instrs;
    }

    /// A shared-memory load/store of `nbytes`: costs issue slots but no
    /// global traffic.
    pub fn shared_op(&mut self, nbytes: u64, active_lanes: usize) {
        let instrs = nbytes.div_ceil((self.warp_size * 4) as u64).max(1);
        for _ in 0..instrs {
            self.warp_exec.record(
                InstrClass::Memory,
                active_lanes.min(self.warp_size),
                self.warp_size,
            );
        }
        self.warp_instrs += instrs;
    }

    /// Record `count` warp instructions of `class` with `active_lanes`
    /// lanes doing useful work (the rest are predicated off / divergent).
    pub fn warp_instr(&mut self, class: InstrClass, active_lanes: usize, count: u64) {
        let lanes = active_lanes.min(self.warp_size);
        for _ in 0..count {
            self.warp_exec.record(class, lanes, self.warp_size);
        }
        self.warp_instrs += count;
    }

    /// `count` fused multiply-add warp instructions with `active_lanes`
    /// active lanes: records FP issue and 2 FLOPs per active lane.
    pub fn fma(&mut self, active_lanes: usize, count: u64) {
        let lanes = active_lanes.min(self.warp_size);
        for _ in 0..count {
            self.warp_exec.record(InstrClass::Fp, lanes, self.warp_size);
        }
        self.warp_instrs += count;
        self.flops += 2 * lanes as u64 * count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> Gpu {
        Gpu::new(GpuConfig::test_small()).unwrap()
    }

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut g = gpu();
        let a = g.alloc(100, TrafficClass::MatA);
        let b = g.alloc(300, TrafficClass::MatB);
        assert_eq!(a.addr % 256, 0);
        assert_eq!(b.addr % 256, 0);
        assert!(b.addr >= a.addr + a.len);
    }

    #[test]
    fn shared_mem_limit_enforced() {
        let mut g = gpu();
        let too_big = g.config().shared_mem_bytes + 1;
        let err = g.launch(too_big, 1, |_| {}).unwrap_err();
        assert!(matches!(err, SimError::SharedMemExceeded { .. }));
    }

    #[test]
    fn empty_kernel_costs_only_overhead() {
        let mut g = gpu();
        let stats = g.launch(0, 4, |_| {}).unwrap();
        assert_eq!(stats.t_compute_ns, 0.0);
        assert_eq!(stats.t_memory_ns, 0.0);
        assert_eq!(stats.total_ns, stats.t_overhead_ns);
    }

    #[test]
    fn streaming_kernel_is_memory_bound() {
        let mut g = gpu();
        let buf = g.alloc(1 << 20, TrafficClass::MatB);
        let stats = g
            .launch(0, 16, |ctx| {
                let chunk = (1 << 20) / 16;
                let base = (ctx.block_id * chunk) as u64;
                ctx.ld_global(&buf, base, chunk as u64, false);
            })
            .unwrap();
        assert!(stats.t_memory_ns > stats.t_compute_ns);
        assert_eq!(stats.dram_traffic.get(TrafficClass::MatB), 1 << 20);
        let s = stats.stall_breakdown();
        assert!(s.memory > 0.5, "stall {s:?}");
    }

    #[test]
    fn compute_kernel_is_sm_bound() {
        let mut g = gpu();
        let stats = g
            .launch(0, 8, |ctx| {
                ctx.fma(32, 100_000);
            })
            .unwrap();
        assert!(stats.t_compute_ns > stats.t_memory_ns);
        assert_eq!(stats.flops, 8 * 100_000 * 64);
        let s = stats.stall_breakdown();
        assert!(s.sm > 0.9, "stall {s:?}");
    }

    #[test]
    fn per_launch_stats_are_deltas() {
        let mut g = gpu();
        let buf = g.alloc(4096, TrafficClass::MatA);
        let first = g
            .launch(0, 1, |ctx| ctx.ld_global(&buf, 0, 4096, false))
            .unwrap();
        g.flush_l2();
        let second = g
            .launch(0, 1, |ctx| ctx.ld_global(&buf, 0, 4096, false))
            .unwrap();
        assert_eq!(first.dram_traffic.total(), 4096);
        assert_eq!(
            second.dram_traffic.total(),
            4096,
            "second launch must not double-count"
        );
    }

    #[test]
    fn warm_l2_reduces_dram_traffic() {
        let mut g = gpu();
        let buf = g.alloc(4096, TrafficClass::MatB);
        g.launch(0, 1, |ctx| ctx.ld_global(&buf, 0, 4096, false))
            .unwrap();
        let warm = g
            .launch(0, 1, |ctx| ctx.ld_global(&buf, 0, 4096, false))
            .unwrap();
        assert_eq!(warm.dram_traffic.total(), 0);
        assert_eq!(warm.l2_misses, 0);
        assert!(warm.l2_hits > 0);
    }

    #[test]
    fn dependent_loads_add_latency_term() {
        let mut g = gpu();
        let buf = g.alloc(1 << 16, TrafficClass::MatB);
        let dep = g
            .launch(0, 1, |ctx| {
                for i in 0..512u64 {
                    ctx.ld_global(&buf, i * 128, 4, true);
                }
            })
            .unwrap();
        assert!(dep.t_latency_ns > 0.0);
        g.flush_l2();
        let indep = g
            .launch(0, 1, |ctx| {
                for i in 0..512u64 {
                    ctx.ld_global(&buf, i * 128, 4, false);
                }
            })
            .unwrap();
        assert_eq!(indep.t_latency_ns, 0.0);
    }

    #[test]
    fn atomics_counted() {
        let mut g = gpu();
        let c = g.alloc(1024, TrafficClass::MatC);
        let stats = g
            .launch(0, 4, |ctx| {
                ctx.atomic_add_global(&c, 0, 128);
            })
            .unwrap();
        assert_eq!(stats.atomics, 4);
    }

    #[test]
    fn divergent_warp_records_inactive_slots() {
        let mut g = gpu();
        let stats = g
            .launch(0, 1, |ctx| {
                ctx.warp_instr(InstrClass::Integer, 1, 10); // 1 of 32 lanes
            })
            .unwrap();
        assert_eq!(stats.warp_exec.inactive, 10 * 31);
        assert!(stats.warp_exec.inactive_fraction() > 0.9);
    }

    #[test]
    fn publish_kernel_stats_bridges_traffic_classes() {
        let mut g = gpu();
        let buf = g.alloc(1 << 16, TrafficClass::MatB);
        let stats = g
            .launch(0, 1, |ctx| {
                ctx.ld_global(&buf, 0, 1 << 16, false);
                ctx.fma(32, 4);
            })
            .unwrap();
        // Metrics stay live even on a disabled (span-less) context.
        let obs = nmt_obs::ObsContext::disabled();
        publish_kernel_stats(&obs, "sim.test", &stats);
        assert_eq!(
            obs.metrics.counter("sim.test.dram_bytes.mat_b"),
            stats.dram_traffic.get(TrafficClass::MatB)
        );
        assert_eq!(obs.metrics.counter("sim.test.dram_bytes.mat_a"), 0);
        assert_eq!(obs.metrics.counter("sim.test.flops"), stats.flops);
        assert!(obs.metrics.gauge("sim.test.total_ns").unwrap() > 0.0);
        let s = stats.stall_breakdown();
        assert_eq!(obs.metrics.gauge("sim.test.stall.memory"), Some(s.memory));
        // Publishing twice accumulates counters (they are monotonic).
        publish_kernel_stats(&obs, "sim.test", &stats);
        assert_eq!(obs.metrics.counter("sim.test.flops"), 2 * stats.flops);
    }

    #[test]
    fn blocks_distribute_across_sms() {
        // One heavy block on SM0, rest idle: compute time equals the heavy
        // block's issue time; two heavy blocks on different SMs: unchanged;
        // two heavy blocks on the same SM: doubled.
        let mut g = gpu();
        let one = g.launch(0, 1, |ctx| ctx.fma(32, 1000)).unwrap();
        let spread = g
            .launch(0, 4, |ctx| {
                let _ = ctx.block_id;
                ctx.fma(32, 1000);
            })
            .unwrap();
        assert!((one.t_compute_ns - spread.t_compute_ns).abs() < 1e-9);
        let stacked = g
            .launch(0, 5, |ctx| ctx.fma(32, 1000)) // 5 blocks on 4 SMs
            .unwrap();
        assert!((stacked.t_compute_ns - 2.0 * one.t_compute_ns).abs() < 1e-9);
    }
}
