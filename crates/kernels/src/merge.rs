//! Merge-based load-balanced C-stationary SpMM (Merrill & Garland,
//! SC '16 — the paper's reference \[21\]).
//!
//! §5.2 observes that matrices with "imbalances of non-zero distribution
//! across rows" cause "longer critical latency for a group of threads in
//! a warp" under row-per-warp, and points to the merge-based approach as
//! the orthogonal fix: partition the *work* (row boundaries ∪ non-zeros)
//! evenly across execution units instead of partitioning rows.
//!
//! This implementation balances non-zero elements exactly: every warp
//! receives a contiguous `ceil(nnz / warps)` slice of the element array,
//! located in the row structure by binary search on `rowptr` (the
//! merge-path diagonal search collapses to this when row items are given
//! zero weight). Rows split across warp boundaries commit their partial
//! sums with atomics — the merge-path "carry-out" fixup.

use crate::device::{CsrDevice, DenseDevice, WORD};
use crate::KernelRun;
use nmt_formats::{Csr, DenseMatrix, SparseMatrix};
use nmt_sim::{Gpu, InstrClass, SimError, TrafficClass};

/// Warps per thread block (matches the row-per-warp kernels).
const WARPS_PER_BLOCK: usize = 8;

/// Merge-based C-stationary CSR SpMM: element-balanced warp assignment
/// with atomic carry-out for rows that straddle warp boundaries.
pub fn csrmm_merge_based(gpu: &mut Gpu, a: &Csr, b: &DenseMatrix) -> Result<KernelRun, SimError> {
    crate::check_inner_dims(a.shape().ncols, b.nrows())?;
    let n = a.shape().nrows;
    let k = b.ncols();
    let nnz = a.nnz();
    let a_dev = CsrDevice::upload(gpu, a);
    let b_dev = DenseDevice::upload(gpu, b, TrafficClass::MatB);
    let c_dev = DenseDevice::upload(gpu, &DenseMatrix::zeros(n, k), TrafficClass::MatC);

    // Size the grid like the row-per-warp kernels would for this matrix,
    // then hand each warp an equal element share.
    let total_warps = n.div_ceil(WARPS_PER_BLOCK).max(1) * WARPS_PER_BLOCK;
    let chunk = nnz.div_ceil(total_warps).max(1);
    let num_blocks = total_warps.div_ceil(WARPS_PER_BLOCK);

    let mut c = DenseMatrix::zeros(n, k);
    let rowptr = a.rowptr();
    let stats = gpu.launch(0, num_blocks, |ctx| {
        let warp = ctx.warp_size();
        for w in 0..WARPS_PER_BLOCK {
            let warp_id = ctx.block_id * WARPS_PER_BLOCK + w;
            let elem_lo = warp_id * chunk;
            if elem_lo >= nnz {
                break;
            }
            let elem_hi = (elem_lo + chunk).min(nnz);
            // Merge-path diagonal search: locate the first row whose span
            // contains elem_lo (two binary searches on device = O(log n)
            // integer work).
            let mut row = rowptr.partition_point(|&p| (p as usize) <= elem_lo) - 1;
            ctx.warp_instr(InstrClass::Integer, 1, (n.ilog2().max(1)) as u64);
            // Stream this warp's element slice (coalesced).
            ctx.ld_global(
                &a_dev.colidx,
                elem_lo as u64 * WORD,
                (elem_hi - elem_lo) as u64 * WORD,
                false,
            );
            ctx.ld_global(
                &a_dev.values,
                elem_lo as u64 * WORD,
                (elem_hi - elem_lo) as u64 * WORD,
                false,
            );

            let mut e = elem_lo;
            while e < elem_hi {
                let row_end = rowptr[row + 1] as usize;
                let seg_end = row_end.min(elem_hi);
                let seg_started_here = e == rowptr[row] as usize || e == elem_lo;
                debug_assert!(seg_started_here);
                let mut acc = vec![0.0f32; k];
                for j in e..seg_end {
                    let col = a.colidx()[j] as usize;
                    let v = a.values()[j];
                    ctx.warp_instr(InstrClass::Integer, k.min(warp), 1);
                    let mut kc = 0;
                    while kc < k {
                        let cw = (k - kc).min(warp);
                        let (off, bytes) = b_dev.row_segment(col as u64, kc as u64, cw as u64);
                        ctx.ld_global(&b_dev.buf, off, bytes, true);
                        ctx.fma(cw, 1);
                        let brow = b.row(col);
                        for x in kc..kc + cw {
                            acc[x] += v * brow[x];
                        }
                        kc += cw;
                    }
                }
                // Row complete within this warp: plain store. Row split
                // across warps: atomic carry-out.
                let whole_row =
                    e == rowptr[row] as usize && seg_end == row_end && row_end <= elem_hi;
                let (off, bytes) = c_dev.row_segment(row as u64, 0, k as u64);
                if whole_row {
                    ctx.st_global(&c_dev.buf, off, bytes);
                } else {
                    ctx.atomic_add_global(&c_dev.buf, off, bytes);
                }
                let out = c.row_mut(row);
                for (o, v) in out.iter_mut().zip(&acc) {
                    *o += v;
                }
                e = seg_end;
                if e == row_end {
                    // Advance over the next row (and any empty rows).
                    row += 1;
                    while row < n && rowptr[row + 1] as usize == rowptr[row] as usize {
                        row += 1;
                    }
                    ctx.warp_instr(InstrClass::ControlFlow, 1, 1);
                }
            }
        }
    })?;
    Ok(KernelRun { c, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cstationary::csrmm_row_per_warp;
    use crate::host;
    use nmt_matgen::{generators, random_dense, GenKind, MatrixDesc};
    use nmt_sim::GpuConfig;

    fn gpu() -> Gpu {
        Gpu::new(GpuConfig::test_small()).unwrap()
    }

    #[test]
    fn matches_reference_on_uniform() {
        let a = generators::generate(&MatrixDesc::new(
            "u",
            128,
            GenKind::Uniform { density: 0.03 },
            1,
        ));
        let b = random_dense(128, 16, 2);
        let run = csrmm_merge_based(&mut gpu(), &a, &b).unwrap();
        assert!(run.c.approx_eq(&host::spmm_csr(&a, &b), 1e-4));
    }

    #[test]
    fn matches_reference_on_skewed() {
        let a = generators::generate(&MatrixDesc::new(
            "z",
            192,
            GenKind::ZipfRows {
                density: 0.02,
                exponent: 1.6,
            },
            3,
        ));
        let b = random_dense(192, 8, 4);
        let run = csrmm_merge_based(&mut gpu(), &a, &b).unwrap();
        assert!(run.c.approx_eq(&host::spmm_csr(&a, &b), 1e-4));
    }

    #[test]
    fn matches_reference_with_empty_rows_and_tiny_nnz() {
        // 3 non-zeros over 64 rows: most warps get nothing.
        let coo =
            nmt_formats::Coo::from_triplets(64, 64, &[0, 31, 63], &[5, 20, 63], &[1.0, 2.0, 3.0])
                .unwrap();
        let a = Csr::from_coo(&coo);
        let b = random_dense(64, 4, 5);
        let run = csrmm_merge_based(&mut gpu(), &a, &b).unwrap();
        assert!(run.c.approx_eq(&host::spmm_csr(&a, &b), 1e-5));
    }

    #[test]
    fn balances_skewed_rows_better_than_row_per_warp() {
        // One monster row plus many light rows: row-per-warp serializes
        // the monster row on one warp (long critical path); merge-based
        // splits it.
        let n = 256;
        let mut rows = vec![];
        let mut cols = vec![];
        for c in 0..200u32 {
            rows.push(0u32);
            cols.push(c);
        }
        for r in 1..64u32 {
            rows.push(r);
            cols.push(r);
        }
        let vals = vec![1.0f32; rows.len()];
        let a = Csr::from_coo(&nmt_formats::Coo::from_triplets(n, n, &rows, &cols, &vals).unwrap());
        let b = random_dense(n, 16, 7);
        let rpw = csrmm_row_per_warp(&mut gpu(), &a, &b).unwrap();
        let merge = csrmm_merge_based(&mut gpu(), &a, &b).unwrap();
        assert!(merge.c.approx_eq(&rpw.c, 1e-4));
        assert!(
            merge.stats.t_compute_ns < rpw.stats.t_compute_ns,
            "merge {} should beat row-per-warp {} on the skewed critical path",
            merge.stats.t_compute_ns,
            rpw.stats.t_compute_ns
        );
        // The price: carry-out atomics.
        assert!(merge.stats.atomics > 0);
        assert_eq!(rpw.stats.atomics, 0);
    }

    #[test]
    fn empty_matrix_is_a_noop() {
        let a = Csr::new(32, 32, vec![0; 33], vec![], vec![]).unwrap();
        let b = random_dense(32, 4, 9);
        let run = csrmm_merge_based(&mut gpu(), &a, &b).unwrap();
        assert!(run.c.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(run.stats.flops, 0);
    }
}
