//! SpMM kernels for the GPU timing simulator, plus host reference
//! implementations.
//!
//! Every dataflow the paper analyzes is implemented against
//! [`nmt_sim::Gpu`]:
//!
//! | kernel | dataflow | A format | role in the paper |
//! |---|---|---|---|
//! | [`csrmm_cusparse`] | C-stationary | untiled CSR, col-major B/C | cuSPARSE-baseline stand-in |
//! | [`csrmm_row_per_warp`] | C-stationary | untiled CSR | best custom untiled CSR kernel |
//! | [`csrmm_row_per_thread`] | C-stationary | untiled CSR | rejected mapping (§3.1.1) |
//! | [`dcsrmm_row_per_warp`] | C-stationary | untiled DCSR | orange dots of Fig. 16 |
//! | [`bstat_tiled_csr`] | B-stationary | tiled CSR | Fig. 7's inactive-thread foil |
//! | [`bstat_tiled_dcsr_offline`] | B-stationary | tiled DCSR (DRAM) | 2.03× offline config (§5.2) |
//! | [`bstat_tiled_dcsr_online`] | B-stationary | CSC + engine | **the proposal** (blue dots) |
//! | [`astat_tiled`] | A-stationary | tiled DCSR | Table 1 completeness |
//! | [`csrmm_merge_based`] | C-stationary | untiled CSR | merge-based balance (ref. \[21\], §5.2) |
//!
//! All kernels functionally compute `C = A × B` (verified against
//! [`host`]) while recording traffic, warp occupancy and timing.

#![warn(missing_docs)]

pub mod astationary;
pub mod bstationary;
pub mod cstationary;
pub mod device;
pub mod host;
pub mod merge;

pub use astationary::astat_tiled;
pub use bstationary::{
    bstat_tiled_csr, bstat_tiled_dcsr_offline, bstat_tiled_dcsr_online,
    bstat_tiled_dcsr_online_obs, bstat_tiled_dcsr_traversal, OnlineRun, Traversal,
};
pub use cstationary::{
    csrmm_cusparse, csrmm_row_per_thread, csrmm_row_per_warp, dcsrmm_row_per_warp,
};
pub use merge::csrmm_merge_based;

use nmt_formats::DenseMatrix;
use nmt_sim::KernelStats;

/// Validate the inner dimensions of `C = A × B`, as a typed error instead
/// of the old `assert!` so one malformed matrix becomes a per-matrix error
/// row in a corpus sweep rather than aborting the whole process.
pub(crate) fn check_inner_dims(a_ncols: usize, b_nrows: usize) -> Result<(), nmt_sim::SimError> {
    if a_ncols != b_nrows {
        return Err(nmt_sim::SimError::ShapeMismatch {
            detail: format!(
                "inner dimensions must agree: A has {a_ncols} cols, B has {b_nrows} rows"
            ),
        });
    }
    Ok(())
}

/// Result of one simulated kernel: the functional output and the
/// integrated hardware statistics.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// The computed output matrix `C`.
    pub c: DenseMatrix,
    /// Timing/traffic/occupancy statistics for the launch.
    pub stats: KernelStats,
}
