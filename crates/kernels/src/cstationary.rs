//! C-stationary kernels (§3.1.1): each warp owns rows of the output, so no
//! atomics are needed; B enjoys only whatever reuse the L2 provides.
//!
//! * [`csrmm_row_per_warp`] — the cuSPARSE-baseline stand-in: untiled CSR,
//!   one row per warp, lanes spread across the K columns of B.
//! * [`csrmm_row_per_thread`] — the alternative mapping whose per-thread
//!   nnz imbalance §3.1.1 rejects.
//! * [`dcsrmm_row_per_warp`] — untiled DCSR: warps are devoted to non-empty
//!   rows only (the orange-dot configuration of Figure 16).

use crate::device::{CsrDevice, DcsrDevice, DenseDevice, WORD};
use crate::KernelRun;
use nmt_formats::{Csr, Dcsr, DenseMatrix, SparseMatrix};
use nmt_sim::{Gpu, InstrClass, SimError, TrafficClass};

/// Rows (= warps) per thread block for the row-per-warp kernels.
const WARPS_PER_BLOCK: usize = 8;

/// The cuSPARSE v9 `csrmm` stand-in — the paper's baseline (speedup = 1).
///
/// cuSPARSE's csrmm requires **column-major** B and C. A warp owning one A
/// row and spreading its lanes over K therefore loads `B[col][k..k+32]` at
/// a stride of `n` elements: one cache line *per lane* instead of per
/// warp. This uncoalesced B access is the documented inefficiency that
/// hand-written row-major SpMM kernels (the paper's, Hong et al.'s, Yang
/// et al.'s) beat, and it is why the paper's Figure 16 baseline loses to
/// even the untiled custom kernels on most matrices.
pub fn csrmm_cusparse(gpu: &mut Gpu, a: &Csr, b: &DenseMatrix) -> Result<KernelRun, SimError> {
    crate::check_inner_dims(a.shape().ncols, b.nrows())?;
    let n = a.shape().nrows;
    let k = b.ncols();
    let a_dev = CsrDevice::upload(gpu, a);
    // Column-major images of B and C: element (row, col) lives at
    // (col * nrows + row) * 4.
    let b_dev = DenseDevice::upload(gpu, b, TrafficClass::MatB);
    let c_dev = DenseDevice::upload(gpu, &DenseMatrix::zeros(n, k), TrafficClass::MatC);
    let b_rows = b.nrows() as u64;

    let mut c = DenseMatrix::zeros(n, k);
    let num_blocks = n.div_ceil(WARPS_PER_BLOCK).max(1);
    let stats = gpu.launch(0, num_blocks, |ctx| {
        let warp = ctx.warp_size();
        let row_lo = ctx.block_id * WARPS_PER_BLOCK;
        let row_hi = (row_lo + WARPS_PER_BLOCK).min(n);
        for r in row_lo..row_hi {
            ctx.ld_global(&a_dev.rowptr, r as u64 * WORD, 2 * WORD, false);
            ctx.warp_instr(InstrClass::ControlFlow, 1, 1);
            let (cols, vals) = a.row(r);
            if cols.is_empty() {
                ctx.warp_instr(InstrClass::Integer, 1, 1);
                continue;
            }
            let lo = (a.rowptr()[r] as u64) * WORD;
            let len = cols.len() as u64 * WORD;
            ctx.ld_global(&a_dev.colidx, lo, len, false);
            ctx.ld_global(&a_dev.values, lo, len, false);
            let out = c.row_mut(r);
            // Vector kernel: warp lanes own the row's non-zeros; an outer
            // loop walks the K columns of the column-major B. Lane `i`
            // gathers B[cols[i]][kc] at address (kc·n + cols[i])·4 —
            // coalesced only when the column indices are clustered.
            for chunk in cols.chunks(warp) {
                ctx.warp_instr(InstrClass::Integer, chunk.len(), 1);
                let base_offsets: Vec<u64> = chunk.iter().map(|&col| col as u64 * WORD).collect();
                let mut offsets = base_offsets.clone();
                for kc in 0..k {
                    if kc > 0 {
                        for (o, b) in offsets.iter_mut().zip(&base_offsets) {
                            *o = b + kc as u64 * b_rows * WORD;
                        }
                    }
                    ctx.ld_global_gather(&b_dev.buf, &offsets, WORD, true);
                    ctx.fma(chunk.len(), 1);
                }
            }
            for (&col, &v) in cols.iter().zip(vals) {
                let brow = b.row(col as usize);
                for (o, &bv) in out.iter_mut().zip(brow) {
                    *o += v * bv;
                }
            }
            // Column-major C store: one lane per k, stride-n addresses.
            ctx.st_global_strided(&c_dev.buf, r as u64 * WORD, n as u64 * WORD, k, WORD);
        }
    })?;
    Ok(KernelRun { c, stats })
}

/// The best untiled CSR kernel: C-stationary, row-per-warp, row-major B.
///
/// Per row: read `rowptr[r..=r+1]`, stream the row's `colidx`/`values`,
/// and for each non-zero fetch the corresponding row of B (a *dependent*
/// access — its address comes from `colidx`, the §2 indirection), FMA into
/// per-lane accumulators, then write the C row once.
pub fn csrmm_row_per_warp(gpu: &mut Gpu, a: &Csr, b: &DenseMatrix) -> Result<KernelRun, SimError> {
    crate::check_inner_dims(a.shape().ncols, b.nrows())?;
    let n = a.shape().nrows;
    let k = b.ncols();
    let a_dev = CsrDevice::upload(gpu, a);
    let b_dev = DenseDevice::upload(gpu, b, TrafficClass::MatB);
    let c_dev = DenseDevice::upload(gpu, &DenseMatrix::zeros(n, k), TrafficClass::MatC);

    let mut c = DenseMatrix::zeros(n, k);
    let num_blocks = n.div_ceil(WARPS_PER_BLOCK).max(1);
    let stats = gpu.launch(0, num_blocks, |ctx| {
        let warp = ctx.warp_size();
        let row_lo = ctx.block_id * WARPS_PER_BLOCK;
        let row_hi = (row_lo + WARPS_PER_BLOCK).min(n);
        for r in row_lo..row_hi {
            // Row bounds from rowptr (two adjacent words).
            ctx.ld_global(&a_dev.rowptr, r as u64 * WORD, 2 * WORD, false);
            ctx.warp_instr(InstrClass::ControlFlow, 1, 1);
            let (cols, vals) = a.row(r);
            if cols.is_empty() {
                // One lane discovers the row is empty; 31 lanes idle — the
                // CSR inefficiency of Figure 6 ②.
                ctx.warp_instr(InstrClass::Integer, 1, 1);
                continue;
            }
            // Stream the row's metadata and values (coalesced).
            let lo = (a.rowptr()[r] as u64) * WORD;
            let len = cols.len() as u64 * WORD;
            ctx.ld_global(&a_dev.colidx, lo, len, false);
            ctx.ld_global(&a_dev.values, lo, len, false);
            let out = c.row_mut(r);
            for (&col, &v) in cols.iter().zip(vals) {
                ctx.warp_instr(InstrClass::Integer, k.min(warp), 1);
                // Fetch the B row in warp-wide column chunks; the address
                // depends on colidx -> dependent load.
                let mut kc = 0;
                while kc < k {
                    let chunk = (k - kc).min(warp);
                    let (off, bytes) = b_dev.row_segment(col as u64, kc as u64, chunk as u64);
                    ctx.ld_global(&b_dev.buf, off, bytes, true);
                    ctx.fma(chunk, 1);
                    let brow = b.row(col as usize);
                    for i in kc..kc + chunk {
                        out[i] += v * brow[i];
                    }
                    kc += chunk;
                }
            }
            // Single write of the finished C row.
            let (off, bytes) = c_dev.row_segment(r as u64, 0, k as u64);
            ctx.st_global(&c_dev.buf, off, bytes);
        }
    })?;
    Ok(KernelRun { c, stats })
}

/// Row-per-thread C-stationary CSR: each thread owns one row for one B
/// column. §3.1.1: "variation in the number of non-zero elements across
/// rows imbalances the load for each thread", and per-lane B accesses do
/// not coalesce — this kernel exists to demonstrate why row-per-warp wins.
pub fn csrmm_row_per_thread(
    gpu: &mut Gpu,
    a: &Csr,
    b: &DenseMatrix,
) -> Result<KernelRun, SimError> {
    crate::check_inner_dims(a.shape().ncols, b.nrows())?;
    let n = a.shape().nrows;
    let k = b.ncols();
    let a_dev = CsrDevice::upload(gpu, a);
    let b_dev = DenseDevice::upload(gpu, b, TrafficClass::MatB);
    let c_dev = DenseDevice::upload(gpu, &DenseMatrix::zeros(n, k), TrafficClass::MatC);

    let mut c = DenseMatrix::zeros(n, k);
    // A warp covers 32 consecutive rows for one column of B; blocks cover
    // WARPS_PER_BLOCK warps.
    let rows_per_block = 32 * WARPS_PER_BLOCK;
    let num_blocks = n.div_ceil(rows_per_block).max(1) * k.max(1);
    let stats = gpu.launch(0, num_blocks, |ctx| {
        let warp = ctx.warp_size();
        let col_b = ctx.block_id % k.max(1);
        let row_base = (ctx.block_id / k.max(1)) * rows_per_block;
        for w in 0..WARPS_PER_BLOCK {
            let warp_lo = row_base + w * warp;
            if warp_lo >= n {
                break;
            }
            let rows: Vec<usize> = (warp_lo..(warp_lo + warp).min(n)).collect();
            // Each lane reads its own rowptr pair (coalesced across lanes).
            ctx.ld_global(
                &a_dev.rowptr,
                rows[0] as u64 * WORD,
                (rows.len() as u64 + 1) * WORD,
                false,
            );
            let max_nnz = rows.iter().map(|&r| a.row_nnz(r)).max().unwrap_or(0);
            // Lock-step iterations: lanes with shorter rows go inactive —
            // the nnz-imbalance penalty.
            for j in 0..max_nnz {
                let active: Vec<usize> =
                    rows.iter().copied().filter(|&r| a.row_nnz(r) > j).collect();
                // Per-lane element loads (uncoalesced: one narrow access
                // per active lane for colidx/value and for B).
                for &r in &active {
                    let off = (a.rowptr()[r] as u64 + j as u64) * WORD;
                    ctx.ld_global(&a_dev.colidx, off, WORD, false);
                    ctx.ld_global(&a_dev.values, off, WORD, false);
                    let (cols, vals) = a.row(r);
                    let col = cols[j] as u64;
                    ctx.ld_global(&b_dev.buf, b_dev.offset(col, col_b as u64), WORD, true);
                    c.add(r, col_b, vals[j] * b.get(cols[j] as usize, col_b));
                }
                ctx.fma(active.len(), 1);
            }
            // Each lane writes its C cell.
            if !rows.is_empty() {
                ctx.st_global(
                    &c_dev.buf,
                    c_dev.offset(rows[0] as u64, col_b as u64),
                    rows.len() as u64 * WORD,
                );
            }
        }
    })?;
    Ok(KernelRun { c, stats })
}

/// Untiled DCSR, C-stationary, row-per-warp: identical to the baseline but
/// warps enumerate only the non-empty rows through the `rowidx`
/// indirection — no cycles are spent discovering empty rows.
pub fn dcsrmm_row_per_warp(
    gpu: &mut Gpu,
    a: &Dcsr,
    b: &DenseMatrix,
) -> Result<KernelRun, SimError> {
    crate::check_inner_dims(a.shape().ncols, b.nrows())?;
    let n = a.shape().nrows;
    let k = b.ncols();
    let a_dev = DcsrDevice::upload(gpu, a);
    let b_dev = DenseDevice::upload(gpu, b, TrafficClass::MatB);
    let c_dev = DenseDevice::upload(gpu, &DenseMatrix::zeros(n, k), TrafficClass::MatC);

    let mut c = DenseMatrix::zeros(n, k);
    let dense_rows = a.num_dense_rows();
    let num_blocks = dense_rows.div_ceil(WARPS_PER_BLOCK).max(1);
    let stats = gpu.launch(0, num_blocks, |ctx| {
        let warp = ctx.warp_size();
        let i_lo = ctx.block_id * WARPS_PER_BLOCK;
        let i_hi = (i_lo + WARPS_PER_BLOCK).min(dense_rows);
        for i in i_lo..i_hi {
            // rowidx + rowptr pair for this densified row.
            ctx.ld_global(&a_dev.rowidx, i as u64 * WORD, WORD, false);
            ctx.ld_global(&a_dev.rowptr, i as u64 * WORD, 2 * WORD, false);
            ctx.warp_instr(InstrClass::ControlFlow, 1, 1);
            let (r, cols, vals) = a.dense_row(i);
            let lo = (a.rowptr()[i] as u64) * WORD;
            let len = cols.len() as u64 * WORD;
            ctx.ld_global(&a_dev.colidx, lo, len, false);
            ctx.ld_global(&a_dev.values, lo, len, false);
            let out = c.row_mut(r as usize);
            for (&col, &v) in cols.iter().zip(vals) {
                ctx.warp_instr(InstrClass::Integer, k.min(warp), 1);
                let mut kc = 0;
                while kc < k {
                    let chunk = (k - kc).min(warp);
                    let (off, bytes) = b_dev.row_segment(col as u64, kc as u64, chunk as u64);
                    ctx.ld_global(&b_dev.buf, off, bytes, true);
                    ctx.fma(chunk, 1);
                    let brow = b.row(col as usize);
                    for x in kc..kc + chunk {
                        out[x] += v * brow[x];
                    }
                    kc += chunk;
                }
            }
            let (off, bytes) = c_dev.row_segment(r as u64, 0, k as u64);
            ctx.st_global(&c_dev.buf, off, bytes);
        }
    })?;
    Ok(KernelRun { c, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host;
    use nmt_matgen::{generators, random_dense, GenKind, MatrixDesc};
    use nmt_sim::GpuConfig;

    fn gpu() -> Gpu {
        Gpu::new(GpuConfig::test_small()).unwrap()
    }

    fn matrix(n: usize, density: f64, seed: u64) -> Csr {
        generators::generate(&MatrixDesc::new("t", n, GenKind::Uniform { density }, seed))
    }

    #[test]
    fn row_per_warp_matches_host_reference() {
        let a = matrix(128, 0.03, 1);
        let b = random_dense(128, 32, 2);
        let run = csrmm_row_per_warp(&mut gpu(), &a, &b).unwrap();
        assert!(run.c.approx_eq(&host::spmm_csr(&a, &b), 1e-4));
        assert!(run.stats.flops > 0);
        assert!(run.stats.dram_traffic.get(TrafficClass::MatB) > 0);
    }

    #[test]
    fn row_per_thread_matches_host_reference() {
        let a = matrix(96, 0.03, 3);
        let b = random_dense(96, 4, 4);
        let run = csrmm_row_per_thread(&mut gpu(), &a, &b).unwrap();
        assert!(run.c.approx_eq(&host::spmm_csr(&a, &b), 1e-4));
    }

    #[test]
    fn dcsr_matches_host_reference() {
        let a = matrix(128, 0.01, 5);
        let d = Dcsr::from_csr(&a);
        let b = random_dense(128, 32, 6);
        let run = dcsrmm_row_per_warp(&mut gpu(), &d, &b).unwrap();
        assert!(run.c.approx_eq(&host::spmm_csr(&a, &b), 1e-4));
    }

    #[test]
    fn baseline_is_memory_bound_like_figure2() {
        // Figure 2: ~75% of SpMM stall time is memory.
        let a = matrix(256, 0.02, 7);
        let b = random_dense(256, 64, 8);
        let run = csrmm_row_per_warp(&mut gpu(), &a, &b).unwrap();
        let s = run.stats.stall_breakdown();
        assert!(s.memory > 0.5, "expected memory-bound: {s:?}");
    }

    #[test]
    fn dcsr_skips_empty_row_overhead() {
        // A matrix where 7/8 of rows are empty: CSR burns scalar checks,
        // DCSR does not.
        let a = generators::generate(&MatrixDesc::new(
            "skew",
            256,
            GenKind::ZipfRows {
                density: 0.004,
                exponent: 1.6,
            },
            11,
        ));
        let d = Dcsr::from_csr(&a);
        let b = random_dense(256, 32, 12);
        let csr_run = csrmm_row_per_warp(&mut gpu(), &a, &b).unwrap();
        let dcsr_run = dcsrmm_row_per_warp(&mut gpu(), &d, &b).unwrap();
        assert!(dcsr_run.c.approx_eq(&csr_run.c, 1e-4));
        assert!(
            dcsr_run.stats.warp_exec.inactive < csr_run.stats.warp_exec.inactive,
            "DCSR must reduce inactive slots: {} vs {}",
            dcsr_run.stats.warp_exec.inactive,
            csr_run.stats.warp_exec.inactive
        );
        // DCSR also reads less rowptr metadata.
        assert!(
            dcsr_run.stats.requested_traffic.get(TrafficClass::MatA)
                <= csr_run.stats.requested_traffic.get(TrafficClass::MatA)
        );
    }

    #[test]
    fn row_per_thread_suffers_from_imbalance() {
        // Skewed rows: row-per-thread lock-steps to the heaviest lane.
        let a = generators::generate(&MatrixDesc::new(
            "skew",
            128,
            GenKind::ZipfRows {
                density: 0.02,
                exponent: 1.4,
            },
            13,
        ));
        let b = random_dense(128, 4, 14);
        let per_warp = csrmm_row_per_warp(&mut gpu(), &a, &b).unwrap();
        let per_thread = csrmm_row_per_thread(&mut gpu(), &a, &b).unwrap();
        assert!(per_thread.c.approx_eq(&per_warp.c, 1e-4));
        assert!(
            per_thread.stats.warp_exec.inactive_fraction()
                > per_warp.stats.warp_exec.inactive_fraction(),
            "row-per-thread should show more divergence"
        );
    }

    #[test]
    fn empty_matrix_runs() {
        let a = Csr::new(64, 64, vec![0; 65], vec![], vec![]).unwrap();
        let b = random_dense(64, 8, 1);
        let run = csrmm_row_per_warp(&mut gpu(), &a, &b).unwrap();
        assert!(run.c.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(run.stats.flops, 0);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use nmt_matgen::{generators, random_dense, GenKind, MatrixDesc};
    use nmt_sim::{detect_stride, AccessKind, GpuConfig, TrafficClass};

    /// The access-pattern contract of the two baselines, asserted on the
    /// actual address streams: the custom kernel reads B in coalesced
    /// row segments; the cuSPARSE model walks B at a row-length stride
    /// (column-major layout).
    #[test]
    fn traces_show_coalesced_vs_strided_b_access() {
        let n = 64;
        // One row with a burst of nnz so the per-nnz B pattern is clean.
        let a = generators::generate(&MatrixDesc::new(
            "t",
            n,
            GenKind::RowBursts {
                density: 0.004,
                burst_len: 8,
            },
            5,
        ));
        let b = random_dense(n, 8, 6);

        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        gpu.enable_trace(100_000);
        csrmm_row_per_warp(&mut gpu, &a, &b).unwrap();
        let trace = gpu.take_trace().unwrap();
        // Every B access in the custom kernel is one whole K-row: 32 bytes.
        let b_events: Vec<_> = trace
            .events()
            .into_iter()
            .filter(|e| e.class == TrafficClass::MatB)
            .collect();
        assert!(!b_events.is_empty());
        assert!(
            b_events.iter().all(|e| e.bytes == 8 * 4),
            "coalesced row reads"
        );

        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        gpu.enable_trace(100_000);
        csrmm_cusparse(&mut gpu, &a, &b).unwrap();
        let trace = gpu.take_trace().unwrap();
        // The column-major model issues 4-byte element gathers; for one
        // non-zero the per-k addresses stride by n rows.
        let b4: Vec<u64> = trace
            .events()
            .into_iter()
            .filter(|e| e.class == TrafficClass::MatB && e.bytes == 4)
            .map(|e| e.addr)
            .collect();
        assert!(b4.len() >= 8, "per-element gathers recorded");
        // Consecutive k-gathers of one non-zero: stride = n * 4 bytes.
        let k_stride = detect_stride(&b4[..8]);
        assert_eq!(k_stride, Some(n as i64 * 4), "column-major stride");
        // Atomics never appear in either C-stationary baseline.
        assert!(trace.events().iter().all(|e| e.kind != AccessKind::Atomic));
    }
}
